//! Trace-pipeline overhead benchmark: interned span ingestion vs the
//! legacy string path, and end-to-end sampling cost.
//!
//! Two measurements, mirroring the trace pipeline's two claims:
//!
//! 1. **Ingestion overhead reduction** — a recorded span workload (a real
//!    simulation run at 100% sampling, drained) is replayed through two
//!    ingestion paths: the current interned one (`Copy` spans carrying
//!    dense ids, folded into `BTreeMap<EdgeKey, EdgeTotals>` aggregates)
//!    and a faithful reconstruction of the pre-interning path (three
//!    heap `String`s per span resolved through the [`SpanBook`], edges
//!    keyed by owned string pairs). Both sides are timed interleaved,
//!    best of 7 passes. Acceptance: the interned path ingests spans at
//!    least 3x faster.
//! 2. **Sampling overhead** — the same fault-free app timed end to end
//!    at 1% trace sampling vs sampling off (interleaved, best of 7).
//!    The per-request sampling decision plus the occasional trace
//!    record must cost <5% throughput.
//!
//! Writes `results/BENCH_traces.json`. With `--smoke [--out PATH]` it
//! runs a reduced, timing-free variant whose JSON contains only
//! deterministic fields — CI runs it twice and diffs the outputs.

use cex_bench::write_bench_json;
use cex_core::simtime::{SimDuration, SimTime};
use microsim::app::{Application, CallDef, EndpointDef, VersionSpec};
use microsim::latency::LatencyModel;
use microsim::sim::Simulation;
use microsim::trace::{SpanBook, Trace, TraceCollector};
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Frontend → backend → db: every request produces a three-span trace.
/// Capacities far above any load used here so queueing never confounds
/// the comparison.
fn three_tier_app() -> Application {
    let mut b = Application::builder();
    b.version(
        VersionSpec::new("frontend", "1.0.0").capacity(1_000_000.0).endpoint(
            EndpointDef::new("home", LatencyModel::Constant { ms: 5.0 })
                .call(CallDef::always("backend", "api")),
        ),
    );
    b.version(
        VersionSpec::new("backend", "1.0.0").capacity(1_000_000.0).endpoint(
            EndpointDef::new("api", LatencyModel::Constant { ms: 10.0 })
                .call(CallDef::always("db", "get")),
        ),
    );
    b.version(
        VersionSpec::new("db", "1.0.0")
            .capacity(1_000_000.0)
            .endpoint(EndpointDef::new("get", LatencyModel::Constant { ms: 2.0 })),
    );
    b.build().expect("three-tier app")
}

/// Records a real span workload: run the app at 100% sampling and drain
/// every collected trace.
fn capture_workload(secs: u64, rate_rps: f64) -> (SpanBook, Vec<Trace>) {
    let mut sim = Simulation::new(three_tier_app(), 17);
    sim.set_trace_sampling(1.0);
    sim.run(SimDuration::from_secs(secs), rate_rps);
    let book = sim.span_book();
    let traces = sim.drain_traces();
    assert!(!traces.is_empty(), "workload capture produced no traces");
    (book, traces)
}

/// A span as the pre-interning pipeline carried it: identity as three
/// heap strings, resolved (and allocated) at ingestion time. Some
/// fields are never read back — they exist to reproduce the legacy
/// span's allocation profile, which is what the benchmark measures.
#[allow(dead_code)]
struct LegacySpan {
    service: String,
    version: String,
    endpoint: String,
    start: SimTime,
    duration: SimDuration,
    ok: bool,
}

/// Legacy streaming aggregate: edges keyed by owned string pairs, the
/// way the pre-interning collector kept them.
#[derive(Default)]
struct LegacyTotals {
    calls: u64,
    errors: u64,
    latency_ms_sum: f64,
}

/// The pre-interning collector shape: a ring of string-identified traces
/// plus a string-keyed edge map. Reconstructed here because the real
/// pipeline no longer has a string path to measure.
#[derive(Default)]
struct LegacyCollector {
    traces: VecDeque<Vec<LegacySpan>>,
    edges: HashMap<(String, String), LegacyTotals>,
}

impl LegacyCollector {
    fn record(&mut self, book: &SpanBook, trace: &Trace) {
        let spans: Vec<LegacySpan> = trace
            .spans
            .iter()
            .map(|s| LegacySpan {
                service: book.service_name(s.service).to_string(),
                version: book.version_label(s.version).to_string(),
                endpoint: book.endpoint_name(s.endpoint).to_string(),
                start: s.start,
                duration: s.duration,
                ok: s.status.is_ok(),
            })
            .collect();
        for span in &spans {
            let key = (span.version.clone(), span.endpoint.clone());
            let totals = self.edges.entry(key).or_default();
            totals.calls += 1;
            if !span.ok {
                totals.errors += 1;
            }
            totals.latency_ms_sum += span.duration.as_millis() as f64;
        }
        if self.traces.len() == microsim::trace::DEFAULT_TRACE_RETENTION {
            self.traces.pop_front();
        }
        self.traces.push_back(spans);
        black_box(span_field(&self.traces));
    }
}

/// Opaque read keeping the retained ring alive under optimization.
fn span_field(ring: &VecDeque<Vec<LegacySpan>>) -> usize {
    ring.back().map_or(0, |t| t.len())
}

/// Replays the captured workload through both ingestion paths,
/// interleaved, best of `reps` passes per side. Returns spans ingested
/// per wall second for (interned, legacy).
fn bench_ingestion(book: &SpanBook, traces: &[Trace], reps: usize) -> (f64, f64) {
    let spans: usize = traces.iter().map(|t| t.spans.len()).sum();
    let interned_pass = || -> f64 {
        let mut collector = TraceCollector::all();
        let start = Instant::now();
        for trace in traces {
            collector.record(trace.clone());
        }
        let elapsed = start.elapsed().as_secs_f64();
        black_box(collector.edge_totals().len());
        spans as f64 / elapsed
    };
    let legacy_pass = || -> f64 {
        let mut collector = LegacyCollector::default();
        let start = Instant::now();
        for trace in traces {
            collector.record(book, trace);
        }
        let elapsed = start.elapsed().as_secs_f64();
        black_box(collector.edges.len());
        spans as f64 / elapsed
    };
    let mut interned = 0.0f64;
    let mut legacy = 0.0f64;
    for _ in 0..reps {
        interned = interned.max(interned_pass());
        legacy = legacy.max(legacy_pass());
    }
    (interned, legacy)
}

/// Fault-free throughput (requests per wall second) with sampling off
/// and at the given fraction, interleaved best of `reps`.
fn bench_sampling(secs: u64, rate_rps: f64, fraction: f64, reps: usize) -> (f64, f64) {
    let one_pass = |sampling: f64| -> f64 {
        let mut sim = Simulation::new(three_tier_app(), 7);
        sim.set_trace_sampling(sampling);
        let start = Instant::now();
        let report = sim.run(SimDuration::from_secs(secs), rate_rps);
        let rate = report.requests as f64 / start.elapsed().as_secs_f64();
        assert_eq!(report.failures, 0, "sampling bench must be failure-free");
        rate
    };
    let mut off = 0.0f64;
    let mut on = 0.0f64;
    for _ in 0..reps {
        off = off.max(one_pass(0.0));
        on = on.max(one_pass(fraction));
    }
    (off, on)
}

/// Deterministic collection facts for one sampling fraction: what a
/// fixed-seed run collects and aggregates.
fn collection_facts(json: &mut String, fraction: f64, last: bool) {
    let mut sim = Simulation::new(three_tier_app(), 17);
    sim.set_trace_sampling(fraction);
    sim.run(SimDuration::from_secs(30), 100.0);
    let collector = sim.trace_collector();
    let spans: usize = collector.traces().map(|t| t.spans.len()).sum();
    let (calls, errors) = collector
        .edge_totals()
        .values()
        .fold((0u64, 0u64), |(c, e), t| (c + t.calls, e + t.errors));
    let _ = writeln!(json, "    {{");
    let _ = writeln!(json, "      \"sampling\": {fraction},");
    let _ = writeln!(json, "      \"recorded\": {},", collector.recorded());
    let _ = writeln!(json, "      \"retained\": {},", collector.len());
    let _ = writeln!(json, "      \"dropped\": {},", collector.dropped());
    let _ = writeln!(json, "      \"spans\": {spans},");
    let _ = writeln!(json, "      \"edges\": {},", collector.edge_totals().len());
    let _ = writeln!(json, "      \"edge_calls\": {calls},");
    let _ = writeln!(json, "      \"edge_errors\": {errors}");
    let _ = writeln!(json, "    }}{}", if last { "" } else { "," });
}

/// Reduced deterministic run for CI: no timings in the JSON, so two
/// invocations must produce byte-identical files.
fn run_smoke(out: &str) {
    let mut json = String::from("  \"collections\": [\n");
    collection_facts(&mut json, 1.0, false);
    collection_facts(&mut json, 0.01, false);
    collection_facts(&mut json, 0.0, true);
    json.push_str("  ]\n");
    write_bench_json(out, "traces_smoke", &json);
}

fn run_full() {
    println!("=== Traces: interned ingestion vs string path + sampling overhead ===");

    // 1. Ingestion: a 60-second capture at 500 rps (~90k spans),
    //    replayed interleaved best of 7.
    let (book, traces) = capture_workload(60, 500.0);
    let spans: usize = traces.iter().map(|t| t.spans.len()).sum();
    let (interned_sps, legacy_sps) = bench_ingestion(&book, &traces, 7);
    let speedup = interned_sps / legacy_sps;
    println!(
        "ingestion over {spans} spans: interned {interned_sps:.0} spans/s, \
         legacy strings {legacy_sps:.0} spans/s ({speedup:.1}x, acceptance >= 3x)"
    );

    // 2. Sampling: 120 simulated seconds at 2,000 rps (~240k requests
    //    per pass), 1% sampling vs off, interleaved best of 7.
    let (off_rps, on_rps) = bench_sampling(120, 2_000.0, 0.01, 7);
    let overhead = (off_rps - on_rps) / off_rps;
    println!(
        "end to end: sampling off {off_rps:.0} req/s, 1% sampling {on_rps:.0} req/s \
         (overhead {:.1}%, acceptance < 5%)",
        overhead * 100.0
    );

    let mut json = String::from("  \"ingestion\": {\n");
    let _ = writeln!(json, "    \"capture\": \"60s at 500 rps, sampling 1.0, seed 17\",");
    let _ = writeln!(json, "    \"traces\": {},", traces.len());
    let _ = writeln!(json, "    \"spans\": {spans},");
    let _ = writeln!(json, "    \"best_of\": 7,");
    let _ = writeln!(json, "    \"interned_spans_per_sec\": {interned_sps:.0},");
    let _ = writeln!(json, "    \"legacy_spans_per_sec\": {legacy_sps:.0},");
    let _ = writeln!(json, "    \"speedup\": {speedup:.2},");
    let _ = writeln!(json, "    \"acceptance_min_speedup\": 3.0");
    json.push_str("  },\n  \"sampling\": {\n");
    let _ = writeln!(json, "    \"sim_secs\": 120,");
    let _ = writeln!(json, "    \"rate_rps\": 2000.0,");
    let _ = writeln!(json, "    \"fraction\": 0.01,");
    let _ = writeln!(json, "    \"best_of\": 7,");
    let _ = writeln!(json, "    \"off_req_per_sec\": {off_rps:.0},");
    let _ = writeln!(json, "    \"on_req_per_sec\": {on_rps:.0},");
    let _ = writeln!(json, "    \"overhead\": {overhead:.4},");
    let _ = writeln!(json, "    \"acceptance_max_overhead\": 0.05");
    json.push_str("  }\n");
    write_bench_json("results/BENCH_traces.json", "traces", &json);

    assert!(speedup >= 3.0, "ingestion speedup {speedup:.2}x below the 3x acceptance bar");
    assert!(
        overhead < 0.05,
        "1% sampling overhead {:.1}% exceeds the 5% acceptance bar",
        overhead * 100.0
    );
    println!("PASS: all acceptance criteria met");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/BENCH_traces_smoke.json".to_string());
    if smoke {
        run_smoke(&out);
    } else {
        run_full();
    }
}
