//! Telemetry hot-path benchmark: million-request ingestion through the
//! case-study application, plus head-to-head comparisons against the
//! pre-PR metric store.
//!
//! Three measurements, mirroring the store's three claims:
//!
//! 1. **End-to-end ingestion** — drives ≥1M requests through the
//!    case-study app (Figure 4.5) and reports sample throughput and the
//!    peak raw samples held under a 5-minute retention horizon.
//! 2. **Ingest micro-comparison** — replays an identical per-hop sample
//!    stream into an inline replica of the pre-PR store (one global
//!    `RwLock<HashMap<(String, MetricKind), Vec<Sample>>>`, a `String`
//!    allocation per record) and into the interned/sharded/batched
//!    store. Acceptance: ≥5× throughput.
//! 3. **Window-query flatness** — series of 10^4..10^6 samples spread
//!    over a fixed 10-minute span; a 1-minute `window_summary` must stay
//!    flat (within 2×) as the series grows, since its cost is
//!    proportional to buckets-in-window, not samples-in-window. The
//!    pre-PR store is measured alongside for contrast.
//!
//! Writes `results/BENCH_metrics.json`. With `--smoke [--out PATH]` it
//! runs a reduced, timing-free variant whose JSON contains only
//! deterministic fields — CI runs it twice and diffs the outputs.

use cex_bench::write_bench_json;
use cex_core::metrics::{MetricKind, OnlineStats, Sample, Summary};
use cex_core::simtime::{SimDuration, SimTime};
use cex_core::users::Population;
use microsim::monitor::MetricStore;
use microsim::sim::{Simulation, APP_SCOPE};
use microsim::topologies::case_study_app;
use microsim::workload::{EntryPoint, Workload};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::RwLock;
use std::time::Instant;

/// Inline replica of the pre-PR metric store (commit 35ef0b0): one
/// global lock, string-keyed series, flat sample vectors, O(window)
/// queries. Kept here so the comparison survives the old code's removal.
#[derive(Default)]
struct BaselineStore {
    inner: RwLock<HashMap<(String, MetricKind), Vec<Sample>>>,
}

impl BaselineStore {
    fn record(&self, scope: &str, metric: MetricKind, sample: Sample) {
        let mut map = self.inner.write().expect("baseline lock poisoned");
        map.entry((scope.to_string(), metric)).or_default().push(sample);
    }

    fn record_value(&self, scope: &str, metric: MetricKind, time: SimTime, value: f64) {
        self.record(scope, metric, Sample::new(time, value));
    }

    fn window_summary(
        &self,
        scope: &str,
        metric: MetricKind,
        now: SimTime,
        window: SimDuration,
    ) -> Summary {
        let from = SimTime::from_millis(now.as_millis().saturating_sub(window.as_millis()));
        let to = now + SimDuration::from_millis(1);
        let map = self.inner.read().expect("baseline lock poisoned");
        let mut acc = OnlineStats::new();
        if let Some(series) = map.get(&(scope.to_string(), metric)) {
            let start = series.partition_point(|s| s.time < from);
            for sample in &series[start..] {
                if sample.time >= to {
                    break;
                }
                acc.push(sample.value);
            }
        }
        acc.summary()
    }
}

/// The workload of the case-study evaluation: all four frontend entry
/// points, weighted like the topology tests.
fn case_study_workload(sim_app: &microsim::app::Application, rate_rps: f64) -> Workload {
    let fe = sim_app.service_id("frontend").expect("frontend exists");
    Workload {
        population: Population::single("all", 100_000),
        rate_rps,
        entries: vec![
            EntryPoint { service: fe, endpoint: "home".into(), weight: 4.0 },
            EntryPoint { service: fe, endpoint: "product".into(), weight: 3.0 },
            EntryPoint { service: fe, endpoint: "checkout".into(), weight: 1.0 },
            EntryPoint { service: fe, endpoint: "search_page".into(), weight: 2.0 },
        ],
        profile: microsim::workload::RateProfile::Constant,
    }
}

struct SimOutcome {
    requests: u64,
    failures: u64,
    samples_recorded: u64,
    peak_stored: usize,
    wall_secs: f64,
    response_count: u64,
    response_mean: f64,
}

/// Drives the case-study app for `secs` simulated seconds at `rate_rps`
/// with a 5-minute retention horizon (the Bifrost engine's Auto floor).
fn run_sim(secs: u64, rate_rps: f64) -> SimOutcome {
    let app = case_study_app();
    let mut sim = Simulation::new(app, 42);
    sim.set_trace_sampling(0.0);
    sim.store().set_retention(Some(SimDuration::from_mins(5)));
    let workload = case_study_workload(sim.app(), rate_rps);

    let start = Instant::now();
    let mut requests = 0u64;
    let mut failures = 0u64;
    let mut resp_count = 0u64;
    let mut resp_sum = 0.0f64;
    let mut peak_stored = 0usize;
    // One-minute windows, like the engine tick loop: retention compacts
    // at window boundaries, so peak memory is sampled where it crests.
    let mut remaining = secs;
    while remaining > 0 {
        let chunk = remaining.min(60);
        remaining -= chunk;
        let report = sim.run_with(SimDuration::from_secs(chunk), &workload);
        requests += report.requests;
        failures += report.failures;
        resp_count += report.response_time.count;
        resp_sum += report.response_time.mean * report.response_time.count as f64;
        peak_stored = peak_stored.max(sim.store().total_samples());
    }
    SimOutcome {
        requests,
        failures,
        samples_recorded: sim.store().total_recorded(),
        peak_stored,
        wall_secs: start.elapsed().as_secs_f64(),
        response_count: resp_count,
        response_mean: if resp_count > 0 { resp_sum / resp_count as f64 } else { 0.0 },
    }
}

/// Deterministic per-hop sample stream shaped like the simulator's
/// output: version-label scopes, response-time + error-rate kinds,
/// non-decreasing times at ~10 samples per simulated millisecond.
fn synthetic_stream(n: u64) -> (Vec<String>, Vec<(u32, MetricKind, Sample)>) {
    let app = case_study_app();
    let mut labels: Vec<String> = app.versions().map(|(id, _)| app.version_label(id)).collect();
    labels.push(APP_SCOPE.to_string());
    let mut stream = Vec::with_capacity(n as usize);
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    for i in 0..n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let scope = (x % labels.len() as u64) as u32;
        let kind = if x & 1 == 0 { MetricKind::ResponseTime } else { MetricKind::ErrorRate };
        let sample = Sample::new(SimTime::from_millis(i / 10), (x % 97) as f64);
        stream.push((scope, kind, sample));
    }
    (labels, stream)
}

/// Ingest throughput of the pre-PR hot path vs the interned+batched one
/// on an identical per-hop event sequence. Each hop records a response
/// time and an error indicator, exactly as `execute_request` does:
///
/// - pre-PR: `app.version_label(v)` (a `format!` per hop) followed by two
///   `record_value(&label, ..)` calls, each allocating the `String` key
///   and hashing it under the one global lock (commit 35ef0b0);
/// - now: two `SampleBatch::record_value_id` calls against pre-interned
///   `ScopeId`s, flushed shard-by-shard.
///
/// Events are generated inline from a shared xorshift so neither side
/// pays for replaying a large stream buffer; each side takes the best of
/// `reps` passes to damp scheduler noise. Returns (baseline/s, new/s)
/// in samples per second.
fn bench_ingest(hops: u64, reps: usize) -> (f64, f64) {
    let app = case_study_app();
    let n_versions = app.version_count() as u64;
    let hop = |x: &mut u64, i: u64| {
        *x ^= *x << 13;
        *x ^= *x >> 7;
        *x ^= *x << 17;
        // Multiply-shift range reduction: cheaper than `%` by a runtime
        // divisor, and the generator cost is shared by both timed loops.
        let v = ((*x as u128 * n_versions as u128) >> 64) as usize;
        let version = microsim::app::VersionId(v);
        let time = SimTime::from_millis(i / 10);
        let response_ms = (*x % 97) as f64;
        let err = if *x & 0xF8 == 0 { 1.0 } else { 0.0 };
        (version, time, response_ms, err)
    };

    let mut base_rate = 0.0f64;
    for _ in 0..reps {
        let baseline = BaselineStore::default();
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        let start = Instant::now();
        for i in 0..hops {
            let (version, time, response_ms, err) = hop(&mut x, i);
            let scope = app.version_label(version);
            baseline.record_value(&scope, MetricKind::ResponseTime, time, response_ms);
            baseline.record_value(&scope, MetricKind::ErrorRate, time, err);
        }
        base_rate = base_rate.max(2.0 * hops as f64 / start.elapsed().as_secs_f64());
    }

    let mut new_rate = 0.0f64;
    for _ in 0..reps {
        let store = MetricStore::new();
        let version_scopes = store.intern_version_scopes(&app);
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        let start = Instant::now();
        let mut batch = store.batch();
        for i in 0..hops {
            let (version, time, response_ms, err) = hop(&mut x, i);
            let id = version_scopes[version.0];
            batch.record_value_id(id, MetricKind::ResponseTime, time, response_ms);
            batch.record_value_id(id, MetricKind::ErrorRate, time, err);
        }
        drop(batch);
        new_rate = new_rate.max(2.0 * hops as f64 / start.elapsed().as_secs_f64());
        assert_eq!(store.total_recorded(), 2 * hops, "hot path must ingest every sample");
    }
    (base_rate, new_rate)
}

/// Window-query latency at a given series length: `n` samples spread
/// uniformly over `SPAN`, 1-minute summaries queried at the tail.
/// Returns ns/query for (new store, baseline store).
fn bench_window_query(n: u64) -> (f64, f64) {
    const SPAN_MS: u64 = 600_000;
    let store = MetricStore::with_bucket_width(SimDuration::from_millis(100));
    let scope = store.intern("svc@1");
    let baseline = BaselineStore::default();
    for i in 0..n {
        let t = SimTime::from_millis(i * SPAN_MS / n);
        let v = (i % 97) as f64;
        store.record_id(scope, MetricKind::ResponseTime, Sample::new(t, v));
        baseline.record("svc@1", MetricKind::ResponseTime, Sample::new(t, v));
    }
    let now = SimTime::from_millis(SPAN_MS);
    let window = SimDuration::from_secs(60);

    let time_queries = |iters: u64, f: &dyn Fn() -> Summary| -> f64 {
        let mut sink = 0u64;
        let start = Instant::now();
        for _ in 0..iters {
            sink += f().count;
        }
        std::hint::black_box(sink);
        start.elapsed().as_nanos() as f64 / iters as f64
    };
    let new_ns = time_queries(2_000, &|| {
        store.window_summary_id(scope, MetricKind::ResponseTime, now, window)
    });
    let base_ns = time_queries(200, &|| {
        baseline.window_summary("svc@1", MetricKind::ResponseTime, now, window)
    });
    (new_ns, base_ns)
}

/// Reduced deterministic run for CI: no timings in the JSON, so two
/// invocations must produce byte-identical files.
fn run_smoke(out: &str) {
    let sim = run_sim(120, 300.0);
    let (labels, stream) = synthetic_stream(100_000);
    let store = MetricStore::new();
    let ids: Vec<_> = labels.iter().map(|l| store.intern(l)).collect();
    let mut batch = store.batch();
    for (scope, kind, sample) in &stream {
        batch.record_id(ids[*scope as usize], *kind, *sample);
    }
    drop(batch);
    let summary = store.window_summary(
        &labels[0],
        MetricKind::ResponseTime,
        SimTime::from_secs(10),
        SimDuration::from_secs(60),
    );

    let mut json = String::new();
    let _ = writeln!(json, "  \"requests\": {},", sim.requests);
    let _ = writeln!(json, "  \"failures\": {},", sim.failures);
    let _ = writeln!(json, "  \"samples_recorded\": {},", sim.samples_recorded);
    let _ = writeln!(json, "  \"peak_stored_samples\": {},", sim.peak_stored);
    let _ = writeln!(json, "  \"app_response_count\": {},", sim.response_count);
    let _ = writeln!(json, "  \"app_response_mean\": {:.9},", sim.response_mean);
    let _ = writeln!(json, "  \"synthetic_recorded\": {},", store.total_recorded());
    let _ = writeln!(json, "  \"synthetic_window_count\": {},", summary.count);
    let _ = writeln!(json, "  \"synthetic_window_mean\": {:.9}", summary.mean);
    write_bench_json(out, "metric_hotpath_smoke", &json);
}

fn run_full() {
    println!("=== Telemetry hot path: million-request benchmark ===");

    // 1. End-to-end: 1,700 simulated seconds at 600 rps ≈ 1.02M requests.
    let sim = run_sim(1_700, 600.0);
    assert!(sim.requests >= 1_000_000, "must drive at least one million requests");
    let ingest_rate = sim.samples_recorded as f64 / sim.wall_secs;
    println!(
        "sim: {} requests, {} samples in {:.1}s wall ({:.0} samples/s), peak stored {}",
        sim.requests, sim.samples_recorded, sim.wall_secs, ingest_rate, sim.peak_stored
    );

    // 2. Ingest comparison: 1M hops = 2M samples per pass, best of 3.
    let (base_rate, new_rate) = bench_ingest(1_000_000, 3);
    let speedup = new_rate / base_rate;
    println!(
        "ingest: baseline {base_rate:.0}/s, interned+batched {new_rate:.0}/s ({speedup:.1}x, acceptance >= 5x)"
    );

    // 3. Window-query latency vs series length.
    let lengths = [10_000u64, 100_000, 1_000_000];
    let mut rows = Vec::new();
    for &n in &lengths {
        let (new_ns, base_ns) = bench_window_query(n);
        println!(
            "window_summary @ {n:>9} samples: new {new_ns:>9.0} ns, baseline {base_ns:>11.0} ns"
        );
        rows.push((n, new_ns, base_ns));
    }
    let new_min = rows.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    let new_max = rows.iter().map(|r| r.1).fold(0.0f64, f64::max);
    let flatness = new_max / new_min;
    println!("window-query flatness 10^4 -> 10^6: {flatness:.2}x (acceptance: within 2x)");

    let mut json = String::from("  \"sim\": {\n");
    let _ = writeln!(json, "    \"requests\": {},", sim.requests);
    let _ = writeln!(json, "    \"samples_recorded\": {},", sim.samples_recorded);
    let _ = writeln!(json, "    \"peak_stored_samples\": {},", sim.peak_stored);
    let _ = writeln!(json, "    \"retention\": \"5m\",");
    let _ = writeln!(json, "    \"wall_secs\": {:.2},", sim.wall_secs);
    let _ = writeln!(json, "    \"ingest_samples_per_sec\": {ingest_rate:.0}");
    json.push_str("  },\n  \"ingest_vs_baseline\": {\n");
    let _ = writeln!(json, "    \"samples_per_pass\": 2000000,");
    let _ = writeln!(json, "    \"best_of\": 3,");
    let _ = writeln!(json, "    \"baseline_samples_per_sec\": {base_rate:.0},");
    let _ = writeln!(json, "    \"new_samples_per_sec\": {new_rate:.0},");
    let _ = writeln!(json, "    \"speedup\": {speedup:.2},");
    let _ = writeln!(json, "    \"acceptance_min_speedup\": 5.0");
    json.push_str("  },\n  \"window_query_ns\": [\n");
    for (i, (n, new_ns, base_ns)) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"series_len\": {n}, \"new_ns\": {new_ns:.0}, \"baseline_ns\": {base_ns:.0}}}{}",
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"window_query_flatness\": {flatness:.2},");
    let _ = writeln!(json, "  \"acceptance_max_flatness\": 2.0");
    write_bench_json("results/BENCH_metrics.json", "metric_hotpath", &json);

    assert!(speedup >= 5.0, "ingestion speedup {speedup:.2}x below the 5x acceptance bar");
    assert!(flatness <= 2.0, "window-query flatness {flatness:.2}x exceeds the 2x acceptance bar");
    println!("PASS: all acceptance criteria met");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/BENCH_metrics_smoke.json".to_string());
    if smoke {
        run_smoke(&out);
    } else {
        run_full();
    }
}
