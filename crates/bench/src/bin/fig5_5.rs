//! Figure 5.5 / Figure 1.3 — the research prototype's visualization:
//! the colour-coded topological difference plus the ranked change panel.
//!
//! Emits the Graphviz DOT source of scenario 1's diff (pipe through
//! `dot -Tsvg` to get the paper's picture) and the terminal-friendly text
//! tree with the ranking side panel.

use cex_bench::header;
use topology::heuristics;
use topology::rank::rank;
use topology::render::{render_ranking, to_dot, to_text};
use topology::scenarios::scenario_1;

fn main() {
    header("Figure 5.5 / 1.3 — topological difference visualization");
    let scenario = scenario_1(true, 42);
    println!("scenario: {}\n", scenario.name);

    println!("--- text tree (+ added, - removed, = unchanged) ---");
    print!("{}", to_text(&scenario.diff));

    let heuristic = heuristics::hybrid_default();
    let ranking = rank(heuristic.as_ref(), &scenario.analysis(), &scenario.changes);
    println!("\n--- ranking panel ({}) ---", heuristic.name());
    print!("{}", render_ranking(&ranking, &scenario.changes, 5));

    println!("\n--- Graphviz DOT (render with `dot -Tsvg`) ---");
    print!("{}", to_dot(&scenario.diff));
}
