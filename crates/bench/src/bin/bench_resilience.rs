//! Resilience benchmark: a chapter-5-style canary outage re-run with and
//! without call policies on the request path.
//!
//! Two measurements, mirroring the resilience layer's two claims:
//!
//! 1. **Outage containment** — a two-tier app runs a 20% canary of
//!    `backend@2.0.0` and a scheduled `Outage` fault knocks the canary
//!    out for a full minute. Without policies every request routed to
//!    the canary fails (app-level error rate ≈ the canary share). With
//!    retries + circuit breaker + fallback the same seed's outage window
//!    stays clean: the breaker sheds the dead version and the fallback
//!    serves degraded-but-successful responses. Acceptance: app-scope
//!    error rate during the outage is ≥5× lower with policies.
//! 2. **Steady-state overhead** — the same app with no faults, timed
//!    with and without the policy layer (interleaved, best of 7 passes
//!    per side). The policy
//!    bookkeeping (breaker ring windows, deadline checks) must cost
//!    <5% throughput when nothing is failing.
//!
//! Writes `results/BENCH_resilience.json`. With `--smoke [--out PATH]`
//! it runs a reduced, timing-free variant whose JSON contains only
//! deterministic fields — CI runs it twice and diffs the outputs.

use cex_bench::write_bench_json;
use cex_core::metrics::MetricKind;
use cex_core::simtime::{SimDuration, SimTime};
use microsim::app::{Application, CallDef, EndpointDef, VersionSpec};
use microsim::faults::{Fault, FaultKind};
use microsim::latency::LatencyModel;
use microsim::resilience::{BreakerPolicy, BreakerState, CallPolicy};
use microsim::sim::{RunReport, Simulation};
use std::fmt::Write as _;
use std::time::Instant;

/// Frontend → backend, constant latencies, capacity far above any load
/// used here so queueing never confounds the comparison.
fn two_tier_app() -> Application {
    let mut b = Application::builder();
    b.version(
        VersionSpec::new("frontend", "1.0.0").capacity(1_000_000.0).endpoint(
            EndpointDef::new("home", LatencyModel::Constant { ms: 5.0 })
                .call(CallDef::always("backend", "api")),
        ),
    );
    b.version(
        VersionSpec::new("backend", "1.0.0")
            .capacity(1_000_000.0)
            .endpoint(EndpointDef::new("api", LatencyModel::Constant { ms: 10.0 })),
    );
    b.build().expect("two-tier app")
}

/// The policy under test — same shape as the engine's chaos-recovery
/// tests: one retry with jittered backoff, a count-window breaker, and a
/// cheap fallback response.
fn resilience_policy() -> CallPolicy {
    CallPolicy {
        max_retries: 1,
        backoff_base: SimDuration::from_millis(20),
        backoff_multiplier: 2.0,
        jitter: 0.5,
        breaker: Some(BreakerPolicy {
            error_threshold: 0.5,
            min_calls: 10,
            window: 40,
            cooldown: SimDuration::from_secs(5),
            half_open_probes: 3,
        }),
        fallback: true,
        fallback_latency: SimDuration::from_millis(1),
        ..CallPolicy::default()
    }
}

/// One containment run: three one-minute windows (steady, outage,
/// recovery) against a 20% canary whose candidate dies for the middle
/// window.
struct ContainmentOutcome {
    steady: RunReport,
    outage: RunReport,
    recovery: RunReport,
    breaker_opened: bool,
    breaker_reclosed: bool,
    sheds: u64,
    fallbacks: u64,
    retries: u64,
}

fn run_containment(seed: u64, rate_rps: f64, protected: bool) -> ContainmentOutcome {
    let mut sim = Simulation::new(two_tier_app(), seed);
    sim.set_trace_sampling(0.0);
    let candidate = sim
        .deploy(
            VersionSpec::new("backend", "2.0.0")
                .capacity(1_000_000.0)
                .endpoint(EndpointDef::new("api", LatencyModel::Constant { ms: 9.0 })),
        )
        .expect("deploy candidate");
    let backend = sim.app().service_id("backend").expect("backend exists");
    let baseline = sim.app().version_id("backend", "1.0.0").expect("baseline exists");
    let frontend = sim.app().version_id("frontend", "1.0.0").expect("frontend exists");
    let snapshot = sim.app().clone();
    sim.router_mut()
        .set_split(&snapshot, backend, vec![(baseline, 0.8), (candidate, 0.2)])
        .expect("canary split");
    if protected {
        sim.set_call_policy(resilience_policy());
    }
    sim.inject_fault(Fault {
        version: candidate,
        kind: FaultKind::Outage,
        from: SimTime::from_secs(60),
        until: SimTime::from_secs(120),
    });

    let steady = sim.run(SimDuration::from_secs(60), rate_rps);
    let outage = sim.run(SimDuration::from_secs(60), rate_rps);
    let recovery = sim.run(SimDuration::from_secs(60), rate_rps);

    let transitions = sim.drain_breaker_transitions();
    let opened = transitions
        .iter()
        .any(|t| t.caller == frontend && t.callee == candidate && t.to == BreakerState::Open);
    let reclosed = sim.breaker_state(frontend, candidate) == Some(BreakerState::Closed)
        || sim.breaker_state(frontend, candidate).is_none();
    let candidate_scope = sim.app().version_label(candidate);
    ContainmentOutcome {
        steady,
        outage,
        recovery,
        breaker_opened: opened,
        breaker_reclosed: opened && reclosed,
        sheds: sim.store().count(&candidate_scope, MetricKind::Shed) as u64,
        fallbacks: sim.store().count(&candidate_scope, MetricKind::FallbackServed) as u64,
        retries: sim.store().count(&candidate_scope, MetricKind::Retry) as u64,
    }
}

/// Outage-window containment factor: unprotected error rate over the
/// protected one, floored at one failure so a perfectly clean protected
/// run still yields a finite ratio.
fn containment_factor(unprotected: &ContainmentOutcome, protected: &ContainmentOutcome) -> f64 {
    let floor = 1.0 / protected.outage.requests.max(1) as f64;
    unprotected.outage.error_rate() / protected.outage.error_rate().max(floor)
}

/// Fault-free throughput (requests per wall second) with and without the
/// policy layer. The bare/policy passes are interleaved so scheduler and
/// frequency drift hit both sides equally, and each side keeps its best
/// pass — the minimum-time estimator, since noise only ever adds time.
fn bench_steady_state(secs: u64, rate_rps: f64, reps: usize) -> (f64, f64) {
    let one_pass = |protected: bool| -> f64 {
        let mut sim = Simulation::new(two_tier_app(), 7);
        sim.set_trace_sampling(0.0);
        if protected {
            sim.set_call_policy(resilience_policy());
        }
        let start = Instant::now();
        let report = sim.run(SimDuration::from_secs(secs), rate_rps);
        let rate = report.requests as f64 / start.elapsed().as_secs_f64();
        assert_eq!(report.failures, 0, "steady state must be failure-free");
        rate
    };
    let mut bare = 0.0f64;
    let mut policy = 0.0f64;
    for _ in 0..reps {
        bare = bare.max(one_pass(false));
        policy = policy.max(one_pass(true));
    }
    (bare, policy)
}

fn push_windows(json: &mut String, indent: &str, outcome: &ContainmentOutcome) {
    for (name, report) in
        [("steady", &outcome.steady), ("outage", &outcome.outage), ("recovery", &outcome.recovery)]
    {
        let _ = writeln!(
            json,
            "{indent}\"{name}\": {{\"requests\": {}, \"failures\": {}, \"error_rate\": {:.9}}},",
            report.requests,
            report.failures,
            report.error_rate()
        );
    }
}

/// Reduced deterministic run for CI: no timings in the JSON, so two
/// invocations must produce byte-identical files.
fn run_smoke(out: &str) {
    let unprotected = run_containment(11, 50.0, false);
    let protected = run_containment(11, 50.0, true);
    let factor = containment_factor(&unprotected, &protected);

    let mut json = String::from("  \"unprotected\": {\n");
    push_windows(&mut json, "    ", &unprotected);
    let _ = writeln!(json, "    \"sheds\": {},", unprotected.sheds);
    let _ = writeln!(json, "    \"fallbacks\": {}", unprotected.fallbacks);
    json.push_str("  },\n  \"protected\": {\n");
    push_windows(&mut json, "    ", &protected);
    let _ = writeln!(json, "    \"breaker_opened\": {},", protected.breaker_opened);
    let _ = writeln!(json, "    \"breaker_reclosed\": {},", protected.breaker_reclosed);
    let _ = writeln!(json, "    \"sheds\": {},", protected.sheds);
    let _ = writeln!(json, "    \"fallbacks\": {},", protected.fallbacks);
    let _ = writeln!(json, "    \"retries\": {}", protected.retries);
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"containment_factor\": {factor:.9}");
    write_bench_json(out, "resilience_smoke", &json);
}

fn run_full() {
    println!("=== Resilience: canary outage containment + steady-state overhead ===");

    // 1. Containment: 200 rps, one-minute canary outage, paired seeds.
    let unprotected = run_containment(11, 200.0, false);
    let protected = run_containment(11, 200.0, true);
    let factor = containment_factor(&unprotected, &protected);
    println!(
        "outage window: unprotected {:.4} error rate ({} of {}), protected {:.4} ({} of {})",
        unprotected.outage.error_rate(),
        unprotected.outage.failures,
        unprotected.outage.requests,
        protected.outage.error_rate(),
        protected.outage.failures,
        protected.outage.requests,
    );
    println!(
        "containment {factor:.1}x (acceptance >= 5x); breaker opened={} reclosed={}, \
         sheds={}, fallbacks={}, retries={}",
        protected.breaker_opened,
        protected.breaker_reclosed,
        protected.sheds,
        protected.fallbacks,
        protected.retries
    );

    // 2. Steady-state overhead: no faults, 120 simulated seconds at
    //    2,000 rps (≈240k requests per pass), interleaved best of 7.
    let (bare_rps, policy_rps) = bench_steady_state(120, 2_000.0, 7);
    let overhead = (bare_rps - policy_rps) / bare_rps;
    println!(
        "steady state: bare {bare_rps:.0} req/s, with policies {policy_rps:.0} req/s \
         (overhead {:.1}%, acceptance < 5%)",
        overhead * 100.0
    );

    let mut json = String::from("  \"scenario\": {\n");
    let _ = writeln!(json, "    \"canary_percent\": 20.0,");
    let _ = writeln!(json, "    \"rate_rps\": 200.0,");
    let _ = writeln!(json, "    \"outage\": \"60s..120s on backend@2.0.0\",");
    let _ = writeln!(json, "    \"seed\": 11");
    json.push_str("  },\n  \"unprotected\": {\n");
    push_windows(&mut json, "    ", &unprotected);
    let _ = writeln!(json, "    \"sheds\": {},", unprotected.sheds);
    let _ = writeln!(json, "    \"fallbacks\": {}", unprotected.fallbacks);
    json.push_str("  },\n  \"protected\": {\n");
    push_windows(&mut json, "    ", &protected);
    let _ = writeln!(json, "    \"breaker_opened\": {},", protected.breaker_opened);
    let _ = writeln!(json, "    \"breaker_reclosed\": {},", protected.breaker_reclosed);
    let _ = writeln!(json, "    \"sheds\": {},", protected.sheds);
    let _ = writeln!(json, "    \"fallbacks\": {},", protected.fallbacks);
    let _ = writeln!(json, "    \"retries\": {}", protected.retries);
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"containment_factor\": {factor:.2},");
    let _ = writeln!(json, "  \"acceptance_min_containment\": 5.0,");
    json.push_str("  \"steady_state\": {\n");
    let _ = writeln!(json, "    \"sim_secs\": 120,");
    let _ = writeln!(json, "    \"rate_rps\": 2000.0,");
    let _ = writeln!(json, "    \"best_of\": 7,");
    let _ = writeln!(json, "    \"bare_req_per_sec\": {bare_rps:.0},");
    let _ = writeln!(json, "    \"policy_req_per_sec\": {policy_rps:.0},");
    let _ = writeln!(json, "    \"overhead\": {overhead:.4},");
    let _ = writeln!(json, "    \"acceptance_max_overhead\": 0.05");
    json.push_str("  }\n");
    write_bench_json("results/BENCH_resilience.json", "resilience", &json);

    assert!(
        unprotected.outage.error_rate() > 0.1,
        "unprotected outage must actually hurt ({:.4})",
        unprotected.outage.error_rate()
    );
    assert!(protected.breaker_opened, "the breaker must open during the outage");
    assert!(protected.breaker_reclosed, "the breaker must re-close after the outage");
    assert!(factor >= 5.0, "containment {factor:.2}x below the 5x acceptance bar");
    assert!(
        overhead < 0.05,
        "steady-state overhead {:.1}% exceeds the 5% acceptance bar",
        overhead * 100.0
    );
    println!("PASS: all acceptance criteria met");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/BENCH_resilience_smoke.json".to_string());
    if smoke {
        run_smoke(&out);
    } else {
        run_full();
    }
}
