//! Figure 3.4 / Table 3.2 — fitness scores for scheduling 15 experiments.
//!
//! All four algorithms at an equal evaluation budget, across the low /
//! medium / high sample-size tiers, over several repetitions. The paper's
//! shape: the GA scores highest, simulated annealing and local search are
//! close behind on easy tiers and fall away as instances tighten, random
//! sampling trails.

use cex_bench::header;
use cex_core::metrics::Summary;
use fenrir::annealing::SimulatedAnnealing;
use fenrir::ga::GeneticAlgorithm;
use fenrir::generator::{ProblemGenerator, SampleSizeTier};
use fenrir::greedy::Greedy;
use fenrir::local_search::LocalSearch;
use fenrir::random_sampling::RandomSampling;
use fenrir::runner::{Budget, Scheduler};

const REPETITIONS: u64 = 5;
const BUDGET: u64 = 5_000;

fn algorithms() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(GeneticAlgorithm::default()),
        Box::new(SimulatedAnnealing::default()),
        Box::new(LocalSearch::default()),
        Box::new(RandomSampling::default()),
        Box::new(Greedy),
    ]
}

fn main() {
    header("Figure 3.4 / Table 3.2 — fitness for 15 experiments (budget = 5k evaluations)");
    println!(
        "{:>6} {:>5} | {:>7} {:>7} {:>7} {:>7} {:>6}",
        "tier", "alg", "mean", "sd", "min", "max", "valid"
    );
    for tier in [SampleSizeTier::Low, SampleSizeTier::Medium, SampleSizeTier::High] {
        for alg in algorithms() {
            let mut fitness = Vec::new();
            let mut valid = 0;
            for rep in 0..REPETITIONS {
                let problem = ProblemGenerator::new(15, tier).generate(100 + rep);
                let result = alg.schedule(&problem, Budget::evaluations(BUDGET), rep);
                fitness.push(result.best_report.raw);
                if result.best_report.is_valid() {
                    valid += 1;
                }
            }
            let s = Summary::of(&fitness);
            println!(
                "{:>6} {:>5} | {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>4}/{}",
                tier.label(),
                alg.name(),
                s.mean,
                s.std_dev,
                s.min,
                s.max,
                valid,
                REPETITIONS
            );
        }
        println!();
    }
    println!("fitness is the raw objective in 0..=1 (1.0 = maximal fitness).");
}
