//! Event-driven simulation core benchmark
//! (`results/BENCH_simcore.json`).
//!
//! Three questions about [`microsim::event`]:
//!
//! 1. **Single-core cost** — what does the event scheduler (heap, frames,
//!    barrier rounds) cost against the recursive walk on a closed-loop
//!    workload both cores can run? (The recursive core cannot run the
//!    open-loop scenarios at all, so this is the only honest same-work
//!    comparison.)
//! 2. **Parallel scaling** — wall-clock per window at 1 worker shard vs
//!    one shard per detected core, same seed, byte-identical output. The
//!    recorded speedup is only meaningful against the stamped `cores`
//!    value: on a single-core machine it is honestly ~1.0×.
//! 3. **Open-loop overload** — the scenario class the event core exists
//!    for: a service offered 2× its service capacity must show growing
//!    queueing delay with an unbounded admission queue, and sheds (each
//!    surfacing as a failed request) with a bounded one.
//!
//! With `--smoke [--out PATH]`: reduced deterministic run for CI — no
//! timings in the JSON, so two invocations produce byte-identical files.
//! The smoke run still checks worker-count invariance and the overload
//! facts, and fails loudly if either breaks.

use cex_bench::{detected_cores, header, write_bench_json};
use cex_core::metrics::MetricKind;
use cex_core::simtime::{SimDuration, SimTime};
use cex_core::users::Population;
use microsim::app::{Application, EndpointDef, VersionSpec};
use microsim::latency::LatencyModel;
use microsim::sim::{ExecMode, RunReport, Simulation};
use microsim::topologies::{random_app, RandomAppParams};
use microsim::workload::{EntryPoint, Workload};
use std::fmt::Write as _;
use std::time::Instant;

const SEED: u64 = 42;
const TOPOLOGY_SEED: u64 = 5;

fn scaling_params() -> RandomAppParams {
    RandomAppParams { services: 16, layers: 4, ..RandomAppParams::default() }
}

/// Traffic spread uniformly over the random topology's entry tier, so the
/// event heaps have work on every shard.
fn scaling_workload(app: &Application, params: &RandomAppParams, rate_rps: f64) -> Workload {
    let entries = (0..params.services)
        .filter(|svc| svc % params.layers == 0)
        .map(|svc| EntryPoint {
            service: app.service_id(&format!("svc-{svc:04}")).expect("entry-tier service"),
            endpoint: "ep0".into(),
            weight: 1.0,
        })
        .collect();
    Workload {
        population: Population::single("all", 50_000),
        rate_rps,
        entries,
        profile: microsim::workload::RateProfile::Constant,
    }
}

/// One full window on a fresh sim; returns the report and the wall time.
fn run_once(mode: ExecMode, workers: usize, secs: u64, rate_rps: f64) -> (RunReport, f64) {
    let params = scaling_params();
    let app = random_app(&params, TOPOLOGY_SEED);
    let workload = scaling_workload(&app, &params, rate_rps);
    let mut sim = Simulation::new(app, SEED);
    sim.set_exec_mode(mode);
    sim.set_workers(workers);
    let start = Instant::now();
    let report = sim.run_with(SimDuration::from_secs(secs), &workload);
    (report, start.elapsed().as_secs_f64() * 1_000.0)
}

/// Best-of-`reps` wall time for one configuration (the report is identical
/// across reps by determinism, so only the timing varies).
fn best_of(
    mode: ExecMode,
    workers: usize,
    secs: u64,
    rate_rps: f64,
    reps: u32,
) -> (RunReport, f64) {
    let mut best = f64::MAX;
    let mut report = None;
    for _ in 0..reps {
        let (r, wall_ms) = run_once(mode, workers, secs, rate_rps);
        if let Some(prev) = &report {
            assert_eq!(prev, &r, "same seed must reproduce the same report");
        }
        best = best.min(wall_ms);
        report = Some(r);
    }
    (report.expect("reps >= 1"), best)
}

/// One service, one slot, 40 ms constant service time → 25 rps capacity.
fn limited_app(queue: Option<u32>) -> Application {
    let mut b = Application::builder();
    let mut spec = VersionSpec::new("worker", "1.0.0")
        .capacity(1_000.0)
        .load_sensitivity(0.0)
        .concurrency_limit(1)
        .endpoint(EndpointDef::new("job", LatencyModel::Constant { ms: 40.0 }));
    if let Some(depth) = queue {
        spec = spec.queue_capacity(depth);
    }
    b.version(spec);
    b.build().expect("single-service app is statically valid")
}

struct Overload {
    queued_requests: u64,
    early_delay_ms: f64,
    late_delay_ms: f64,
    bounded_requests: u64,
    sheds: u64,
    shed_failures_match: bool,
}

/// Runs the overload scenario pair: 2× capacity against an unbounded
/// queue (delay growth) and against a depth-2 queue (shed-on-full).
fn run_overload() -> Overload {
    let mut unbounded = Simulation::new(limited_app(None), 11);
    let queued = unbounded.run(SimDuration::from_secs(10), 50.0);
    let early = unbounded.store().summary_between(
        "worker@1.0.0",
        MetricKind::QueueDelay,
        SimTime::ZERO,
        SimTime::from_secs(5),
    );
    let late = unbounded.store().summary_between(
        "worker@1.0.0",
        MetricKind::QueueDelay,
        SimTime::from_secs(5),
        SimTime::from_secs(10),
    );
    assert_eq!(queued.failures, 0, "unbounded queue sheds nothing");
    assert!(
        late.mean > 2.0 * early.mean,
        "queue delay must keep growing under 2x overload (early {} late {})",
        early.mean,
        late.mean
    );

    let mut bounded = Simulation::new(limited_app(Some(2)), 11);
    let shed_report = bounded.run(SimDuration::from_secs(10), 50.0);
    let sheds = bounded.store().count("worker@1.0.0", MetricKind::Shed) as u64;
    assert!(sheds > 0, "depth-2 queue under 2x overload must shed");

    Overload {
        queued_requests: queued.requests,
        early_delay_ms: early.mean,
        late_delay_ms: late.mean,
        bounded_requests: shed_report.requests,
        sheds,
        shed_failures_match: shed_report.failures == sheds,
    }
}

fn push_overload(json: &mut String, o: &Overload) {
    json.push_str("  \"overload\": {\n");
    let _ = writeln!(json, "    \"offered_rps\": 50.0,");
    let _ = writeln!(json, "    \"capacity_rps\": 25.0,");
    let _ = writeln!(json, "    \"queued_requests\": {},", o.queued_requests);
    let _ = writeln!(json, "    \"queue_delay_early_mean_ms\": {:.9},", o.early_delay_ms);
    let _ = writeln!(json, "    \"queue_delay_late_mean_ms\": {:.9},", o.late_delay_ms);
    let _ = writeln!(json, "    \"bounded_requests\": {},", o.bounded_requests);
    let _ = writeln!(json, "    \"sheds\": {},", o.sheds);
    let _ = writeln!(json, "    \"shed_failures_match\": {}", o.shed_failures_match);
    json.push_str("  }\n");
}

/// Reduced deterministic run for CI: worker-count invariance on the
/// random topology plus the overload facts; no timings.
fn run_smoke(out: &str) {
    let (w1, _) = run_once(ExecMode::Event, 1, 10, 120.0);
    let (w2, _) = run_once(ExecMode::Event, 2, 10, 120.0);
    let (w8, _) = run_once(ExecMode::Event, 8, 10, 120.0);
    assert_eq!(w1, w2, "1 vs 2 workers must be identical");
    assert_eq!(w1, w8, "1 vs 8 workers must be identical");
    let overload = run_overload();

    let mut json = String::from("  \"scenario\": {\n");
    let _ = writeln!(json, "    \"services\": {},", scaling_params().services);
    let _ = writeln!(json, "    \"layers\": {},", scaling_params().layers);
    let _ = writeln!(json, "    \"sim_secs\": 10,");
    let _ = writeln!(json, "    \"rate_rps\": 120.0");
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"requests\": {},", w1.requests);
    let _ = writeln!(json, "  \"failures\": {},", w1.failures);
    let _ = writeln!(json, "  \"response_mean_ms\": {:.9},", w1.response_time.mean);
    let _ = writeln!(json, "  \"workers_identical\": true,");
    push_overload(&mut json, &overload);
    write_bench_json(out, "simcore_smoke", &json);
}

fn run_full() {
    header("Event-driven simulation core: cost, scaling, overload");
    let cores = detected_cores();
    const SECS: u64 = 60;
    const RATE: f64 = 400.0;
    const REPS: u32 = 5;

    let (rec_report, rec_ms) = best_of(ExecMode::Recursive, 1, SECS, RATE, REPS);
    let (ev1_report, ev1_ms) = best_of(ExecMode::Event, 1, SECS, RATE, REPS);
    let (evn_report, evn_ms) = best_of(ExecMode::Event, cores, SECS, RATE, REPS);
    assert_eq!(ev1_report, evn_report, "worker count must not change the report");
    assert_eq!(rec_report.requests, ev1_report.requests, "both cores see the same arrivals");
    let event_vs_recursive = rec_ms / ev1_ms;
    let speedup = ev1_ms / evn_ms;
    println!(
        "closed loop, {} requests over {SECS}s simulated: recursive {rec_ms:.1} ms, \
         event w1 {ev1_ms:.1} ms ({event_vs_recursive:.2}x vs recursive), \
         event w{cores} {evn_ms:.1} ms ({speedup:.2}x vs w1 on {cores} core(s))",
        ev1_report.requests
    );

    let overload = run_overload();
    println!(
        "overload 2x capacity: unbounded queue delay {:.0} -> {:.0} ms (first vs second half), \
         bounded queue sheds {} of {}",
        overload.early_delay_ms, overload.late_delay_ms, overload.sheds, overload.bounded_requests
    );

    let mut json = String::from("  \"scenario\": {\n");
    let _ = writeln!(json, "    \"services\": {},", scaling_params().services);
    let _ = writeln!(json, "    \"layers\": {},", scaling_params().layers);
    let _ = writeln!(json, "    \"sim_secs\": {SECS},");
    let _ = writeln!(json, "    \"rate_rps\": {RATE:.1},");
    let _ = writeln!(json, "    \"best_of\": {REPS},");
    let _ = writeln!(json, "    \"seed\": {SEED}");
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"requests\": {},", ev1_report.requests);
    json.push_str("  \"single_core\": {\n");
    let _ = writeln!(json, "    \"recursive_wall_ms\": {rec_ms:.1},");
    let _ = writeln!(json, "    \"event_wall_ms\": {ev1_ms:.1},");
    let _ = writeln!(json, "    \"event_vs_recursive\": {event_vs_recursive:.2}");
    json.push_str("  },\n  \"scaling\": {\n");
    let _ = writeln!(json, "    \"workers\": {cores},");
    let _ = writeln!(json, "    \"workers_1_wall_ms\": {ev1_ms:.1},");
    let _ = writeln!(json, "    \"workers_n_wall_ms\": {evn_ms:.1},");
    let _ = writeln!(json, "    \"speedup\": {speedup:.2},");
    let _ = writeln!(json, "    \"output_identical\": true");
    json.push_str("  },\n");
    push_overload(&mut json, &overload);
    write_bench_json("results/BENCH_simcore.json", "simcore", &json);
    println!("PASS: worker-count invariance and overload scenario checks met");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/BENCH_simcore_smoke.json".into());
    if smoke {
        run_smoke(&out);
    } else {
        run_full();
    }
}
