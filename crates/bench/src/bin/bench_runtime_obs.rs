//! Runtime self-observability overhead (`results/BENCH_runtime_obs.json`).
//!
//! The obs layer ([`cex_core::obs`]) must be cheap enough to leave on:
//! hierarchical phase spans, wall probes on the metric store, and the
//! counter registry together must not move the simulation's wall clock
//! by more than the acceptance threshold. This bin runs the
//! `bench_simcore` scaling workload (16 services, 4 layers, entry tier
//! spread over every shard) twice on identically seeded simulations —
//! profiling enabled vs disabled — and reports the wall-clock delta.
//! Acceptance: enabled-profiling overhead within 2% of the disabled
//! run — or within the host's own A/A noise floor (off-vs-off spread),
//! whichever is larger, since an estimate under the floor is
//! indistinguishable from zero. Reps run as order-alternated triplets
//! (off→on→off, then on→off→on); medians over `PAIRS` adjacent-rep
//! pairs damp scheduler noise — see `measure_interleaved`.
//!
//! The obs-on run also prints the rendered phase tree, and the JSON
//! records per-node totals so a regression in any single phase is
//! visible, not just the aggregate.
//!
//! With `--smoke [--out PATH]`: reduced deterministic run for CI — no
//! timings in the JSON, so two invocations produce byte-identical
//! files. The smoke run checks the determinism split end to end:
//! counter-registry equality across sim worker counts, and journal
//! byte-identity (runtime events included) across engine runs at
//! `sim_workers` 1 vs 4.

use bifrost::engine::{Engine, EngineConfig};
use bifrost::journal::JournalEvent;
use cex_bench::{header, n_service_app, n_service_workload, n_strategies, write_bench_json};
use cex_core::obs::ObsConfig;
use cex_core::simtime::SimDuration;
use cex_core::users::Population;
use microsim::app::Application;
use microsim::sim::{ExecMode, RunReport, Simulation};
use microsim::topologies::{random_app, RandomAppParams};
use microsim::workload::{EntryPoint, Workload};
use std::fmt::Write as _;
use std::time::Instant;

const SEED: u64 = 42;
const TOPOLOGY_SEED: u64 = 5;

fn scaling_params() -> RandomAppParams {
    RandomAppParams { services: 16, layers: 4, ..RandomAppParams::default() }
}

/// Traffic spread uniformly over the random topology's entry tier — the
/// same workload `bench_simcore` measures, so the overhead numbers are
/// directly comparable.
fn scaling_workload(app: &Application, params: &RandomAppParams, rate_rps: f64) -> Workload {
    let entries = (0..params.services)
        .filter(|svc| svc % params.layers == 0)
        .map(|svc| EntryPoint {
            service: app.service_id(&format!("svc-{svc:04}")).expect("entry-tier service"),
            endpoint: "ep0".into(),
            weight: 1.0,
        })
        .collect();
    Workload {
        population: Population::single("all", 50_000),
        rate_rps,
        entries,
        profile: microsim::workload::RateProfile::Constant,
    }
}

/// One full window on a fresh sim with the given obs configuration;
/// returns the report, the sim (for counters/profile), and wall ms.
fn run_once(
    obs: ObsConfig,
    workers: usize,
    secs: u64,
    rate_rps: f64,
) -> (RunReport, Simulation, f64) {
    let params = scaling_params();
    let app = random_app(&params, TOPOLOGY_SEED);
    let workload = scaling_workload(&app, &params, rate_rps);
    let mut sim = Simulation::new(app, SEED);
    sim.set_exec_mode(ExecMode::Event);
    sim.set_workers(workers);
    sim.set_obs(obs);
    let start = Instant::now();
    let report = sim.run_with(SimDuration::from_secs(secs), &workload);
    let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
    (report, sim, wall_ms)
}

/// One measurement: the overhead estimate, the observed host noise
/// floor, and the obs-on sim for registry/profile reads.
struct Measurement {
    report: RunReport,
    sim: Simulation,
    off_ms: f64,
    /// Median over reps of the obs-on vs surrounding obs-off delta (%).
    overhead_pct: f64,
    /// Median over reps of |off-vs-off| deltas (%): what this host shows
    /// when comparing a configuration against itself.
    noise_floor_pct: f64,
}

/// Measures the odd mode of each triplet against the mean of the two
/// surrounding even runs, so slow machine drift — frequency ramp,
/// allocator state, a noisy neighbour — averages out of the comparison.
/// Triplet order alternates between reps (off→on→off, then on→off→on):
/// back-to-back reps phase-lock against periodic host noise, so a spike
/// that keeps landing on the middle run would otherwise read as a
/// systematic mode difference — averaging each adjacent rep pair cancels
/// it, because the middle run is obs-on in one rep and obs-off in the
/// next. The medians over pairs then discard pairs contaminated by a
/// scheduler hiccup. The same-mode outer runs of every triplet also give
/// an A/A comparison (a configuration against itself): on a quiet host
/// ~0, on a busy one it documents the measurement floor — an overhead
/// estimate under the floor is indistinguishable from zero. (A
/// best-of-each-mode ratio, by contrast, is skewed by a single lucky low
/// in either mode.) Reports must be identical across reps and across
/// modes — determinism — which is asserted every rep.
fn measure_interleaved(secs: u64, rate_rps: f64, pairs: u32) -> Measurement {
    let mut off_times = Vec::new();
    let mut deltas = Vec::new();
    let mut aa_deltas = Vec::new();
    let mut kept = None;
    // One triplet: outer runs in `outer` mode, middle run in the other;
    // returns the middle-vs-outer-mean delta (sign-corrected so positive
    // always means obs-on is slower) and the outer A/A spread.
    let mut triplet = |outer: ObsConfig| -> (f64, f64, f64) {
        let middle = if outer == ObsConfig::disabled() {
            ObsConfig::enabled()
        } else {
            ObsConfig::disabled()
        };
        let (ra, sim_a, a_ms) = run_once(outer, 1, secs, rate_rps);
        let (rb, sim_b, b_ms) = run_once(middle, 1, secs, rate_rps);
        let (rc, _, c_ms) = run_once(outer, 1, secs, rate_rps);
        assert_eq!(ra, rb, "obs on vs off must not change simulation output");
        assert_eq!(ra, rc, "same seed must reproduce the same report");
        if let Some((prev, _)) = &kept {
            assert_eq!(prev, &ra, "same seed must reproduce the same report");
        }
        let on_sim = if middle == ObsConfig::enabled() { sim_b } else { sim_a };
        kept = Some((ra, on_sim));
        let outer_ms = (a_ms + c_ms) / 2.0;
        let delta = (b_ms - outer_ms) / outer_ms * 100.0;
        let signed = if middle == ObsConfig::enabled() { delta } else { -delta };
        let off_ms = if middle == ObsConfig::enabled() { outer_ms } else { b_ms };
        (signed, ((c_ms - a_ms) / a_ms * 100.0).abs(), off_ms)
    };
    for _ in 0..pairs {
        let (d_on_mid, aa_a, off_a) = triplet(ObsConfig::disabled());
        let (d_off_mid, aa_b, off_b) = triplet(ObsConfig::enabled());
        deltas.push((d_on_mid + d_off_mid) / 2.0);
        aa_deltas.push(aa_a);
        aa_deltas.push(aa_b);
        off_times.push((off_a + off_b) / 2.0);
    }
    let (report, sim) = kept.expect("pairs >= 1");
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    Measurement {
        report,
        sim,
        off_ms: median(&mut off_times),
        overhead_pct: median(&mut deltas),
        noise_floor_pct: median(&mut aa_deltas),
    }
}

/// Reduced deterministic run for CI: the determinism split end to end,
/// no timings.
fn run_smoke(out: &str) {
    // Counter registry is a pure function of the seed: identical across
    // sim worker counts and across obs on/off (profiling gates only
    // wall-clock spans, never counters).
    let (r1, s1, _) = run_once(ObsConfig::enabled(), 1, 10, 120.0);
    let (r4, s4, _) = run_once(ObsConfig::enabled(), 4, 10, 120.0);
    let (roff, soff, _) = run_once(ObsConfig::disabled(), 1, 10, 120.0);
    assert_eq!(r1, r4, "1 vs 4 sim workers must be identical");
    assert_eq!(r1, roff, "obs on vs off must not change simulation output");
    let counters = s1.counters();
    assert_eq!(counters, s4.counters(), "registry: 1 vs 4 sim workers");
    assert_eq!(counters, soff.counters(), "registry: obs on vs off");
    assert!(counters.count("sim.events.popped") > 0, "event core saw work");

    // Journal byte-identity with runtime events across engine runs at
    // sim_workers 1 vs 4.
    let run_engine = |sim_workers: usize| {
        let n = 8;
        let app = n_service_app(n);
        let wl = n_service_workload(&app, n, (20 * n) as f64);
        let strategies = n_strategies(n, 2);
        let mut sim = Simulation::new(app, SEED);
        let engine = Engine::new(EngineConfig {
            sim_workers,
            runtime_report_every: 3,
            obs: ObsConfig::enabled(),
            ..Default::default()
        });
        let (report, journal) = engine
            .execute_journaled(&mut sim, &strategies, &wl, SimDuration::from_mins(10))
            .expect("execution succeeds");
        let runtime_events =
            journal.events().iter().filter(|e| matches!(e, JournalEvent::Runtime { .. })).count()
                as u64;
        assert!(runtime_events > 0, "the cadence emitted runtime events");
        (journal.to_jsonl(), report.runtime, runtime_events)
    };
    let (j1, rt1, runtime_events) = run_engine(1);
    let (j4, rt4, _) = run_engine(4);
    assert_eq!(j1, j4, "journal bytes: 1 vs 4 sim workers");
    assert_eq!(rt1, rt4, "runtime report counters: 1 vs 4 sim workers");

    let mut json = String::from("  \"scenario\": {\n");
    let _ = writeln!(json, "    \"services\": {},", scaling_params().services);
    let _ = writeln!(json, "    \"layers\": {},", scaling_params().layers);
    let _ = writeln!(json, "    \"sim_secs\": 10,");
    let _ = writeln!(json, "    \"rate_rps\": 120.0");
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"requests\": {},", r1.requests);
    let _ = writeln!(json, "  \"events_popped\": {},", counters.count("sim.events.popped"));
    let _ = writeln!(json, "  \"events_sent\": {},", counters.count("sim.events.sent"));
    let _ = writeln!(json, "  \"sub_rounds\": {},", counters.count("sim.events.subrounds"));
    let _ = writeln!(json, "  \"window_reads\": {},", counters.count("store.window_reads"));
    let _ = writeln!(json, "  \"counters_worker_invariant\": true,");
    let _ = writeln!(json, "  \"counters_obs_invariant\": true,");
    let _ = writeln!(json, "  \"journal_bytes\": {},", j1.len());
    let _ = writeln!(json, "  \"runtime_events\": {runtime_events},");
    let _ = writeln!(json, "  \"journal_worker_invariant\": true");
    write_bench_json(out, "runtime_obs_smoke", &json);
}

fn run_full() {
    header("Runtime self-observability: profiling overhead on the simcore workload");
    const SECS: u64 = 60;
    const RATE: f64 = 400.0;
    const PAIRS: u32 = 7;

    let m = measure_interleaved(SECS, RATE, PAIRS);
    assert!(m.sim.counters().count("sim.events.popped") > 0, "event core saw work");
    println!(
        "{} requests over {SECS}s simulated: obs off {:.1} ms (median), \
         median paired overhead {:+.2}% against a host A/A noise floor of {:.2}% \
         (acceptance: within 2% or within the floor)",
        m.report.requests, m.off_ms, m.overhead_pct, m.noise_floor_pct
    );

    let profile = m.sim.profile();
    println!("\nphase tree (obs on):\n{}", profile.render());

    let mut json = String::from("  \"scenario\": {\n");
    let _ = writeln!(json, "    \"services\": {},", scaling_params().services);
    let _ = writeln!(json, "    \"layers\": {},", scaling_params().layers);
    let _ = writeln!(json, "    \"sim_secs\": {SECS},");
    let _ = writeln!(json, "    \"rate_rps\": {RATE:.1},");
    let _ = writeln!(json, "    \"alternating_triplet_pairs\": {PAIRS},");
    let _ = writeln!(json, "    \"seed\": {SEED}");
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"requests\": {},", m.report.requests);
    let _ = writeln!(json, "  \"obs_off_wall_ms_median\": {:.1},", m.off_ms);
    let _ = writeln!(json, "  \"overhead_pct_median_paired\": {:.2},", m.overhead_pct);
    let _ = writeln!(json, "  \"aa_noise_floor_pct\": {:.2},", m.noise_floor_pct);
    let _ = writeln!(json, "  \"output_identical\": true,");
    json.push_str("  \"profile\": {\n");
    let nodes = profile.nodes();
    for (i, (path, stats)) in nodes.iter().enumerate() {
        let comma = if i + 1 == nodes.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    \"{path}\": {{ \"total_ms\": {:.3}, \"count\": {} }}{comma}",
            stats.total().as_secs_f64() * 1_000.0,
            stats.count()
        );
    }
    json.push_str("  }\n");
    write_bench_json("results/BENCH_runtime_obs.json", "runtime_obs", &json);
    if m.overhead_pct <= 2.0_f64.max(m.noise_floor_pct) {
        println!("PASS: within acceptance");
    } else {
        println!("FAIL: exceeds acceptance");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/BENCH_runtime_obs_smoke.json".into());
    if smoke {
        run_smoke(&out);
    } else {
        run_full();
    }
}
