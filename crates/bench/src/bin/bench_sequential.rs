//! Sequential-testing benchmark: time-to-detection of an injected
//! error-rate regression, always-valid mSPRT checks versus a
//! fixed-window Welch baseline at a *matched* family-wise error budget.
//!
//! The comparison answers the question the sequential layer exists for:
//! once both methods are held to the same false-positive guarantee, how
//! much faster does the always-valid test catch a real regression? The
//! baseline is the repo's idiomatic fixed-window check (`over 1m every
//! 30s`, the shape the engine tests and templates use) with its per-look
//! α Bonferroni-deflated (α/looks), which caps its family-wise error at
//! the same 0.05 the sequential test's Ville bound provides. An A/A
//! control row verifies both sides actually stay at or under the nominal
//! level. The structural difference the grid exposes: the fixed check's
//! per-look evidence is capped at whatever its trailing window holds,
//! while the sequential test accumulates every sample since phase start
//! — so at matched error budgets the sequential test detects small and
//! moderate regressions several times sooner, and finds ones the
//! fixed window never reaches significance on at all.
//!
//! For each regression magnitude the grid runs paired seeds through two
//! otherwise identical canary strategies and records the virtual time of
//! the rollback transition. Undetected runs are censored at the phase
//! horizon, so mean detection times stay finite and comparable.
//!
//! Writes `results/BENCH_sequential.json`. With `--smoke [--out PATH]`
//! it runs a reduced grid; every field in the JSON (detection counts and
//! virtual-time means) is deterministic, so CI runs it twice and diffs
//! the outputs byte for byte.

use bifrost::dsl;
use bifrost::engine::{Engine, EngineConfig, StrategyStatus};
use cex_bench::write_bench_json;
use cex_core::simtime::SimDuration;
use microsim::app::{Application, EndpointDef, VersionSpec};
use microsim::latency::LatencyModel;
use microsim::sim::Simulation;
use microsim::workload::Workload;
use std::fmt::Write as _;

/// Baseline error rate; regressions add their delta on the candidate.
const BASE_ERR: f64 = 0.10;
/// Family-wise false-positive budget for both methods.
const ALPHA: f64 = 0.05;
/// Check cadence (both methods peek equally often).
const EVERY_SECS: u64 = 30;
/// Modest traffic, the regime the comparison is about: the fixed
/// baseline's per-look evidence is capped at whatever its trailing
/// window holds, while the sequential test accumulates every sample
/// since phase start.
const RATE_RPS: f64 = 10.0;

fn app(candidate_err: f64) -> Application {
    let mut b = Application::builder();
    b.version(VersionSpec::new("svc", "1.0.0").capacity(10_000.0).endpoint(
        EndpointDef::new("api", LatencyModel::Constant { ms: 20.0 }).error_rate(BASE_ERR),
    ));
    b.version(VersionSpec::new("svc", "2.0.0").capacity(10_000.0).endpoint(
        EndpointDef::new("api", LatencyModel::Constant { ms: 20.0 }).error_rate(candidate_err),
    ));
    b.build().expect("benchmark app")
}

/// Number of scheduled looks over one phase — the Bonferroni divisor.
fn looks(phase_mins: u64) -> u64 {
    phase_mins * 60 / EVERY_SECS
}

fn sequential_src(phase_mins: u64) -> String {
    format!(
        r#"strategy "seq" {{
            service "svc" baseline "1.0.0" candidate "2.0.0"
            phase "canary" canary 50% for {phase_mins}m {{
              check error_rate sequential vs baseline < confidence {} every {EVERY_SECS}s min_samples 20
              on success complete
              on failure rollback
              on inconclusive complete
            }}
        }}"#,
        1.0 - ALPHA
    )
}

fn fixed_src(phase_mins: u64) -> String {
    format!(
        r#"strategy "fixed" {{
            service "svc" baseline "1.0.0" candidate "2.0.0"
            phase "canary" canary 50% for {phase_mins}m {{
              check error_rate significant_vs_baseline < {} over 1m every {EVERY_SECS}s min_samples 20
              on success complete
              on failure rollback
              on inconclusive complete
            }}
        }}"#,
        ALPHA / looks(phase_mins) as f64
    )
}

/// One run; `Some(ms)` is the virtual time of the rollback transition.
fn detect_at(src: &str, candidate_err: f64, seed: u64, phase_mins: u64) -> Option<u64> {
    let app = app(candidate_err);
    let svc = app.service_id("svc").expect("svc exists");
    let wl = Workload::simple(svc, "api", RATE_RPS);
    let mut sim = Simulation::new(app, seed);
    sim.set_trace_sampling(0.0);
    let strategy = dsl::parse(src).expect("benchmark strategy parses");
    let report = Engine::new(EngineConfig { max_retries: 1, ..Default::default() })
        .execute(&mut sim, &[strategy], &wl, SimDuration::from_mins(phase_mins + 5))
        .expect("benchmark run");
    if report.statuses[0].1 == StrategyStatus::RolledBack {
        Some(report.transitions.last().expect("rollback transitioned").time.as_millis())
    } else {
        None
    }
}

struct Cell {
    detected: usize,
    runs: usize,
    /// Mean time-to-detection with undetected runs censored at the
    /// phase horizon (virtual milliseconds).
    censored_mean_ms: f64,
}

fn cell(src: &str, candidate_err: f64, seeds: &[u64], phase_mins: u64) -> Cell {
    let horizon_ms = phase_mins * 60_000;
    let times: Vec<u64> = seeds
        .iter()
        .map(|s| detect_at(src, candidate_err, *s, phase_mins).unwrap_or(horizon_ms))
        .collect();
    let detected = times.iter().filter(|t| **t < horizon_ms).count();
    Cell {
        detected,
        runs: seeds.len(),
        censored_mean_ms: times.iter().sum::<u64>() as f64 / seeds.len() as f64,
    }
}

fn run_grid(out: &str, bench: &str, seeds: &[u64], phase_mins: u64, verbose: bool) {
    let magnitudes = [0.02, 0.03, 0.05];
    let seq = sequential_src(phase_mins);
    let fixed = fixed_src(phase_mins);

    let mut json = String::new();
    let _ = writeln!(json, "  \"alpha\": {ALPHA},");
    let _ = writeln!(json, "  \"fixed_alpha_per_look\": {:.9},", ALPHA / looks(phase_mins) as f64);
    let _ = writeln!(json, "  \"looks\": {},", looks(phase_mins));
    let _ = writeln!(json, "  \"phase_mins\": {phase_mins},");
    let _ = writeln!(json, "  \"runs_per_cell\": {},", seeds.len());
    json.push_str("  \"magnitudes\": [\n");
    for (k, delta) in magnitudes.iter().enumerate() {
        let candidate_err = BASE_ERR + delta;
        let s = cell(&seq, candidate_err, seeds, phase_mins);
        let f = cell(&fixed, candidate_err, seeds, phase_mins);
        let speedup = f.censored_mean_ms / s.censored_mean_ms;
        if verbose {
            println!(
                "delta +{delta:.2}: sequential {} of {} in {:.0}s mean, \
                 fixed {} of {} in {:.0}s mean — {speedup:.1}x faster",
                s.detected,
                s.runs,
                s.censored_mean_ms / 1_000.0,
                f.detected,
                f.runs,
                f.censored_mean_ms / 1_000.0,
            );
        }
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"delta\": {delta},");
        let _ = writeln!(
            json,
            "      \"sequential\": {{\"detected\": {}, \"runs\": {}, \"censored_mean_ms\": {:.3}}},",
            s.detected, s.runs, s.censored_mean_ms
        );
        let _ = writeln!(
            json,
            "      \"fixed\": {{\"detected\": {}, \"runs\": {}, \"censored_mean_ms\": {:.3}}},",
            f.detected, f.runs, f.censored_mean_ms
        );
        let _ = writeln!(json, "      \"speedup\": {speedup:.6}");
        let _ = writeln!(json, "    }}{}", if k + 1 < magnitudes.len() { "," } else { "" });
    }
    json.push_str("  ],\n");

    // A/A control: both methods at their stated budget, no regression.
    let s = cell(&seq, BASE_ERR, seeds, phase_mins);
    let f = cell(&fixed, BASE_ERR, seeds, phase_mins);
    if verbose {
        println!(
            "A/A control: sequential {} of {} false aborts, fixed {} of {} (budget {ALPHA})",
            s.detected, s.runs, f.detected, f.runs
        );
    }
    let _ = writeln!(
        json,
        "  \"aa\": {{\"sequential_aborts\": {}, \"fixed_aborts\": {}, \"runs\": {}}}",
        s.detected, f.detected, s.runs
    );
    write_bench_json(out, bench, &json);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("results/BENCH_sequential.json")
        .to_string();
    if smoke {
        let seeds: Vec<u64> = (300..304).collect();
        run_grid(&out, "sequential_smoke", &seeds, 10, false);
    } else {
        println!("=== Sequential vs fixed-window: time-to-detection at matched error budget ===");
        let seeds: Vec<u64> = (300..316).collect();
        run_grid(&out, "sequential", &seeds, 45, true);
        println!("wrote {out}");
    }
}
