//! # microsim
//!
//! A deterministic, discrete-event **microservice application simulator** —
//! the substrate the paper's evaluations run on.
//!
//! The dissertation evaluates Bifrost (Chapter 4) against a microservice
//! case-study application deployed on public-cloud VMs, and the
//! topology-aware health assessment (Chapter 5) against distributed traces
//! collected from such applications. Neither a cloud testbed nor production
//! traces are available here, so this crate implements the closest synthetic
//! equivalent that exercises the same code paths (see `DESIGN.md`):
//!
//! - [`app`] — services, deployable versions, endpoints, and the call graph
//!   between them (the static application model).
//! - [`latency`] — per-endpoint latency models (constant, uniform,
//!   log-normal) with load-dependent inflation.
//! - [`routing`] — the proxy/traffic-routing layer Bifrost enacts
//!   experiments through: weighted version splits, sticky user assignment,
//!   and dark-launch traffic mirroring.
//! - [`load`] — per-version arrival-rate tracking driving latency inflation
//!   (this is what makes dark-launch traffic duplication visibly costly,
//!   as observed in Section 1.2.3 of the dissertation).
//! - [`exec`] — per-request execution: walks the call tree, samples
//!   latencies, produces an end-to-end response time and a distributed
//!   trace.
//! - [`event`] — the discrete-event scheduler the simulation runs on by
//!   default: requests as event chains, per-version concurrency limits and
//!   bounded admission queues, deterministic sharded parallel execution.
//! - [`faults`] — scheduled fault windows (latency spikes, error bursts,
//!   outages) for failure-injection experiments.
//! - [`trace`] — Zipkin/Jaeger-style spans with interned identity, bounded
//!   trace retention and streaming per-edge aggregates (the input of
//!   Chapter 5 and the health pipeline).
//! - [`health`] — folds drained traces into per-`service@version`
//!   interaction graphs and canary-vs-baseline health reports.
//! - [`monitor`] — a windowed metric store (the input of Bifrost checks).
//! - [`workload`] — open-loop Poisson request generation over user
//!   populations.
//! - [`sim`] — the simulation facade tying everything to a virtual clock.
//! - [`topologies`] — the canned case-study application (Figure 4.5) and
//!   random application generators for scalability studies.
//!
//! # Example
//!
//! ```
//! use microsim::sim::Simulation;
//! use microsim::topologies;
//! use cex_core::simtime::SimDuration;
//!
//! let app = topologies::case_study_app();
//! let mut sim = Simulation::new(app, 42);
//! let report = sim.run(SimDuration::from_secs(10), 50.0);
//! assert!(report.requests > 0);
//! assert!(report.response_time.mean > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod corpus;
pub mod error;
pub mod event;
pub mod exec;
pub mod faults;
pub mod health;
pub mod latency;
pub mod load;
pub mod monitor;
pub mod resilience;
pub mod routing;
pub mod sim;
pub mod topologies;
pub mod trace;
pub mod workload;

pub use app::{Application, EndpointId, ServiceId, VersionId};
pub use error::SimError;
pub use monitor::MetricStore;
pub use routing::Router;
pub use sim::Simulation;
pub use trace::{Span, SpanBook, SpanStatus, Trace, TraceCollector};
