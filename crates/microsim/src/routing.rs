//! The runtime traffic-routing layer.
//!
//! The paper's execution model enacts experiments at the *network level*:
//! lightweight proxies in front of service instances decide, per request,
//! which deployed version serves it (Section 1.2.1; the same approach Istio
//! later adopted, Section 1.4.2). This module implements that layer:
//!
//! - **Weighted splits** route a fraction of users to a candidate version
//!   (canary releases, gradual rollouts, A/B tests).
//! - **Sticky assignment** hashes the user id so one user consistently sees
//!   one variant — a prerequisite for valid A/B statistics.
//! - **Mirrors** duplicate traffic to a dark-launched version whose
//!   responses are discarded (dark launches).
//! - A configurable **per-hop proxy overhead** models the cost of having
//!   the middleware deployed at all — the quantity Figure 4.6/Table 4.1
//!   measure.

use crate::app::{Application, ServiceId, VersionId};
use crate::error::SimError;
use cex_core::simtime::SimDuration;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a (simulated) end user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserId(pub u64);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// Routing rule for one service.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteRule {
    splits: Vec<(VersionId, f64)>,
    mirrors: Vec<VersionId>,
}

impl RouteRule {
    /// The weighted splits (weights sum to 1).
    pub fn splits(&self) -> &[(VersionId, f64)] {
        &self.splits
    }

    /// Versions receiving mirrored (dark) traffic.
    pub fn mirrors(&self) -> &[VersionId] {
        &self.mirrors
    }
}

/// The router: per-service rules plus the proxy-overhead configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Router {
    proxy_overhead: SimDuration,
    rules: HashMap<usize, RouteRule>,
}

impl Router {
    /// A router with no rules: every request goes to each service's
    /// baseline version, with no proxy overhead (the paper's "baseline
    /// application without Bifrost deployed").
    pub fn new() -> Self {
        Router::default()
    }

    /// A router modelling a deployed middleware adding `overhead` per
    /// proxied hop (the paper measured ≈2 ms per proxy hop, ≈8 ms
    /// end-to-end on the four-phase strategy).
    pub fn with_proxy_overhead(overhead: SimDuration) -> Self {
        Router { proxy_overhead: overhead, rules: HashMap::new() }
    }

    /// Per-hop proxy overhead.
    pub fn proxy_overhead(&self) -> SimDuration {
        self.proxy_overhead
    }

    /// Installs (or replaces) a weighted split for `service`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadRoute`] when `splits` is empty, weights are
    /// negative or do not sum to 1 (±1e-6), or a version does not belong to
    /// `service`.
    pub fn set_split(
        &mut self,
        app: &Application,
        service: ServiceId,
        splits: Vec<(VersionId, f64)>,
    ) -> Result<(), SimError> {
        if splits.is_empty() {
            return Err(SimError::BadRoute("empty split list".into()));
        }
        let sum: f64 = splits.iter().map(|(_, w)| w).sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(SimError::BadRoute(format!("weights sum to {sum}, expected 1.0")));
        }
        for (v, w) in &splits {
            if *w < 0.0 {
                return Err(SimError::BadRoute(format!("negative weight {w}")));
            }
            if app.version(*v).service != service {
                return Err(SimError::BadRoute(format!(
                    "version {} does not belong to service {}",
                    app.version_label(*v),
                    app.service_name(service)
                )));
            }
        }
        let entry = self
            .rules
            .entry(service.0)
            .or_insert(RouteRule { splits: Vec::new(), mirrors: Vec::new() });
        entry.splits = splits;
        Ok(())
    }

    /// Adds a dark-launch mirror for `service`: every request to the
    /// service is *also* executed on `version` (responses discarded).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadRoute`] when `version` does not belong to
    /// `service` or is already mirrored.
    pub fn add_mirror(
        &mut self,
        app: &Application,
        service: ServiceId,
        version: VersionId,
    ) -> Result<(), SimError> {
        if app.version(version).service != service {
            return Err(SimError::BadRoute(format!(
                "mirror version {} does not belong to service {}",
                app.version_label(version),
                app.service_name(service)
            )));
        }
        let entry = self
            .rules
            .entry(service.0)
            .or_insert(RouteRule { splits: Vec::new(), mirrors: Vec::new() });
        if entry.mirrors.contains(&version) {
            return Err(SimError::BadRoute("version already mirrored".into()));
        }
        entry.mirrors.push(version);
        Ok(())
    }

    /// Removes a mirror; no-op if not present.
    pub fn remove_mirror(&mut self, service: ServiceId, version: VersionId) {
        if let Some(rule) = self.rules.get_mut(&service.0) {
            rule.mirrors.retain(|v| *v != version);
        }
    }

    /// Removes all rules for `service`, restoring baseline routing.
    pub fn clear(&mut self, service: ServiceId) {
        self.rules.remove(&service.0);
    }

    /// The rule for `service`, if any.
    pub fn rule(&self, service: ServiceId) -> Option<&RouteRule> {
        self.rules.get(&service.0)
    }

    /// `true` when any routing rule is installed.
    pub fn has_rules(&self) -> bool {
        !self.rules.is_empty()
    }

    /// Resolves which version serves `user`'s request to `service`.
    ///
    /// Resolution is *sticky*: it depends only on `(user, service)`, so a
    /// user consistently lands on the same variant for the lifetime of a
    /// split — required for unbiased A/B samples.
    pub fn resolve(&self, app: &Application, service: ServiceId, user: UserId) -> VersionId {
        match self.rules.get(&service.0) {
            Some(rule) if !rule.splits.is_empty() => {
                let x = sticky_unit(user, service);
                let mut acc = 0.0;
                for (version, weight) in &rule.splits {
                    acc += weight;
                    if x < acc {
                        return *version;
                    }
                }
                // Guard against cumulative rounding: last split wins.
                rule.splits.last().expect("non-empty splits").0
            }
            _ => app.baseline_of(service),
        }
    }

    /// Versions that should receive a mirrored copy of a request to
    /// `service` (dark launches). Empty for unconfigured services.
    pub fn mirrors(&self, service: ServiceId) -> &[VersionId] {
        self.rules.get(&service.0).map(|r| r.mirrors.as_slice()).unwrap_or(&[])
    }
}

/// Deterministic hash of `(user, service)` into `[0, 1)`.
fn sticky_unit(user: UserId, service: ServiceId) -> f64 {
    // SplitMix64-style finalizer over the combined key.
    let mut z = user.0 ^ (service.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{EndpointDef, VersionSpec};
    use crate::latency::LatencyModel;

    fn app_with_two_versions() -> Application {
        let mut b = Application::builder();
        b.version(
            VersionSpec::new("svc", "1.0.0")
                .endpoint(EndpointDef::new("api", LatencyModel::default())),
        );
        b.version(
            VersionSpec::new("svc", "1.1.0")
                .endpoint(EndpointDef::new("api", LatencyModel::default())),
        );
        b.version(
            VersionSpec::new("other", "1.0.0")
                .endpoint(EndpointDef::new("api", LatencyModel::default())),
        );
        b.build().unwrap()
    }

    #[test]
    fn default_routes_to_baseline() {
        let app = app_with_two_versions();
        let router = Router::new();
        let svc = app.service_id("svc").unwrap();
        let baseline = app.baseline_of(svc);
        for u in 0..100 {
            assert_eq!(router.resolve(&app, svc, UserId(u)), baseline);
        }
        assert!(!router.has_rules());
    }

    #[test]
    fn split_respects_weights_approximately() {
        let app = app_with_two_versions();
        let svc = app.service_id("svc").unwrap();
        let v0 = app.version_id("svc", "1.0.0").unwrap();
        let v1 = app.version_id("svc", "1.1.0").unwrap();
        let mut router = Router::new();
        router.set_split(&app, svc, vec![(v0, 0.9), (v1, 0.1)]).unwrap();
        let n = 100_000u64;
        let hits = (0..n).filter(|u| router.resolve(&app, svc, UserId(*u)) == v1).count();
        let share = hits as f64 / n as f64;
        assert!((share - 0.1).abs() < 0.01, "canary share {share}");
    }

    #[test]
    fn resolution_is_sticky() {
        let app = app_with_two_versions();
        let svc = app.service_id("svc").unwrap();
        let v0 = app.version_id("svc", "1.0.0").unwrap();
        let v1 = app.version_id("svc", "1.1.0").unwrap();
        let mut router = Router::new();
        router.set_split(&app, svc, vec![(v0, 0.5), (v1, 0.5)]).unwrap();
        for u in 0..100 {
            let first = router.resolve(&app, svc, UserId(u));
            for _ in 0..5 {
                assert_eq!(router.resolve(&app, svc, UserId(u)), first);
            }
        }
    }

    #[test]
    fn growing_split_keeps_existing_users() {
        // A gradual rollout from 10% to 30% must not reassign users who
        // were already on the candidate (monotone cut-point property).
        let app = app_with_two_versions();
        let svc = app.service_id("svc").unwrap();
        let v0 = app.version_id("svc", "1.0.0").unwrap();
        let v1 = app.version_id("svc", "1.1.0").unwrap();
        let mut r10 = Router::new();
        // Candidate first so its cumulative interval [0, share) only grows.
        r10.set_split(&app, svc, vec![(v1, 0.1), (v0, 0.9)]).unwrap();
        let mut r30 = Router::new();
        r30.set_split(&app, svc, vec![(v1, 0.3), (v0, 0.7)]).unwrap();
        for u in 0..20_000 {
            if r10.resolve(&app, svc, UserId(u)) == v1 {
                assert_eq!(r30.resolve(&app, svc, UserId(u)), v1);
            }
        }
    }

    #[test]
    fn split_validation() {
        let app = app_with_two_versions();
        let svc = app.service_id("svc").unwrap();
        let other = app.service_id("other").unwrap();
        let v0 = app.version_id("svc", "1.0.0").unwrap();
        let vo = app.version_id("other", "1.0.0").unwrap();
        let mut router = Router::new();
        assert!(router.set_split(&app, svc, vec![]).is_err());
        assert!(router.set_split(&app, svc, vec![(v0, 0.5)]).is_err());
        assert!(router.set_split(&app, svc, vec![(v0, 1.5), (vo, -0.5)]).is_err());
        assert!(router.set_split(&app, svc, vec![(vo, 1.0)]).is_err());
        assert!(router.set_split(&app, other, vec![(vo, 1.0)]).is_ok());
    }

    #[test]
    fn mirrors_are_managed() {
        let app = app_with_two_versions();
        let svc = app.service_id("svc").unwrap();
        let v1 = app.version_id("svc", "1.1.0").unwrap();
        let mut router = Router::new();
        router.add_mirror(&app, svc, v1).unwrap();
        assert_eq!(router.mirrors(svc), &[v1]);
        assert!(router.add_mirror(&app, svc, v1).is_err(), "double mirror");
        router.remove_mirror(svc, v1);
        assert!(router.mirrors(svc).is_empty());
        let other = app.service_id("other").unwrap();
        assert!(router.add_mirror(&app, other, v1).is_err(), "wrong service");
    }

    #[test]
    fn clear_restores_baseline() {
        let app = app_with_two_versions();
        let svc = app.service_id("svc").unwrap();
        let v1 = app.version_id("svc", "1.1.0").unwrap();
        let mut router = Router::new();
        router.set_split(&app, svc, vec![(v1, 1.0)]).unwrap();
        assert_eq!(router.resolve(&app, svc, UserId(1)), v1);
        router.clear(svc);
        assert_eq!(router.resolve(&app, svc, UserId(1)), app.baseline_of(svc));
    }

    #[test]
    fn proxy_overhead_is_stored() {
        let router = Router::with_proxy_overhead(SimDuration::from_millis(2));
        assert_eq!(router.proxy_overhead().as_millis(), 2);
        assert_eq!(Router::new().proxy_overhead(), SimDuration::ZERO);
    }
}
