//! Scenario corpus: seeded generators for topology families, workload
//! shapes and correlated faults, plus a trace-level fault localizer.
//!
//! The paper's evaluation "introduced sub-scenarios involving simulated
//! performance issues" against a single case-study application; its
//! scalability chapter asks for "as many scenarios as you can imagine".
//! This module is the imagination: every combination of a
//! [`TopologyFamily`], a [`WorkloadKind`] and a [`FaultScenario`] is one
//! cell of a robustness matrix, and each cell is a deterministic function
//! of its seed — the property suite in `tests/corpus_matrix.rs` sweeps
//! hundreds of cells and asserts that fault localization, chaos
//! containment and journal determinism hold in *every* one.
//!
//! # Fault localization
//!
//! Canary-vs-baseline health reports ([`crate::health::HealthReport`])
//! compare two versions of the *same* service, which is blind to
//! correlated faults that hit baseline and candidate alike (a zone
//! outage). The corpus localizer instead compares a healthy time window
//! against a faulted one, edge by edge, on two signals the canary report
//! cannot use:
//!
//! - **blame rate** — a span is *blamed* for a failure only when it
//!   failed and none of its children did (the failure originated there,
//!   not upstream of it), so cascading parent failures do not drown out
//!   the root cause;
//! - **self time** — a span's duration minus its children's, so a deep
//!   latency spike does not inflate every ancestor edge equally.
//!
//! Scores reuse the documented [`crate::health`] weight constants.

use crate::app::{Application, CallDef, EndpointDef, ServiceId, VersionId, VersionSpec};
use crate::error::SimError;
use crate::faults::{self, Fault, FaultKind};
use crate::health::{SCORE_ERROR_RATE_WEIGHT, SCORE_P95_DELTA_WEIGHT};
use crate::latency::LatencyModel;
use crate::sim::Simulation;
use crate::trace::{EdgeKey, SpanStatus, Trace};
use crate::workload::{EntryPoint, RateProfile, Workload};
use cex_core::rng::SplitMix64;
use cex_core::simtime::{SimDuration, SimTime};
use cex_core::sketch::QuantileSketch;
use cex_core::users::Population;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Topology families
// ---------------------------------------------------------------------------

/// The microservice topology families the corpus generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyFamily {
    /// A single call chain `svc-0 → svc-1 → … → svc-5`: failures deep in
    /// the chain cascade through every ancestor.
    DeepChain,
    /// One frontend fanning out to six leaves: wide blast surface, shallow
    /// depth.
    WideFanout,
    /// A gateway routing through one central hub to four backends: the hub
    /// is a single point of failure.
    HubAndSpoke,
    /// An ingress tier over three isolated cells (front → mid → db), each
    /// its own availability zone, with low-probability cross-cell calls
    /// that leak failures across the partition.
    CellPartition,
}

/// All families, in matrix-sweep order.
pub const FAMILIES: [TopologyFamily; 4] = [
    TopologyFamily::DeepChain,
    TopologyFamily::WideFanout,
    TopologyFamily::HubAndSpoke,
    TopologyFamily::CellPartition,
];

impl TopologyFamily {
    /// Stable lowercase identifier (test labels, bench JSON).
    pub fn name(&self) -> &'static str {
        match self {
            TopologyFamily::DeepChain => "deep_chain",
            TopologyFamily::WideFanout => "wide_fanout",
            TopologyFamily::HubAndSpoke => "hub_and_spoke",
            TopologyFamily::CellPartition => "cell_partition",
        }
    }
}

/// One generated scenario: an application with zone labels, a deployed
/// candidate of the experiment service, and the coordinates the matrix
/// needs (entry point, fault zone).
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The generated application, candidate already deployed.
    pub app: Application,
    /// Which family produced it.
    pub family: TopologyFamily,
    /// Entry service for the workload.
    pub entry_service: ServiceId,
    /// Entry endpoint name.
    pub entry_endpoint: String,
    /// The service under experiment (the one strategies canary).
    pub experiment_service: ServiceId,
    /// Baseline version of the experiment service.
    pub baseline: VersionId,
    /// Candidate version (`2.0.0`) of the experiment service.
    pub candidate: VersionId,
    /// The zone correlated faults strike. Always contains the experiment
    /// service and never the entry service, so zone faults are observable
    /// at interior edges while the app entry stays reachable.
    pub fault_zone: String,
}

impl Scenario {
    /// Baseline + candidate split for the experiment service: `share` of
    /// traffic to the candidate.
    pub fn canary_split(&self, sim: &mut Simulation, share: f64) -> Result<(), SimError> {
        let app = sim.app().clone();
        sim.router_mut().set_split(
            &app,
            self.experiment_service,
            vec![(self.baseline, 1.0 - share), (self.candidate, share)],
        )
    }
}

/// Generates one scenario of `family`, deterministically from `seed`
/// (latency medians and the experiment candidate's behaviour jitter with
/// the seed; the shape, zones and service names are fixed per family).
///
/// # Panics
///
/// Never panics on generator output: every family builds a statically
/// valid topology (covered by tests).
pub fn generate(family: TopologyFamily, seed: u64) -> Scenario {
    let mut rng = SplitMix64::new(seed ^ 0xC0_5EED);
    match family {
        TopologyFamily::DeepChain => deep_chain(&mut rng),
        TopologyFamily::WideFanout => wide_fanout(&mut rng),
        TopologyFamily::HubAndSpoke => hub_and_spoke(&mut rng),
        TopologyFamily::CellPartition => cell_partition(&mut rng),
    }
}

/// Jittered web latency: `base + [0, spread)` milliseconds.
fn lat(rng: &mut SplitMix64, base: f64, spread: f64) -> LatencyModel {
    LatencyModel::web(base + rng.next_f64() * spread)
}

/// Finishes a scenario: deploys the candidate (`2.0.0`, same behaviour
/// and zone as the baseline spec) and resolves ids.
fn finish(
    family: TopologyFamily,
    app: Application,
    entry: (&str, &str),
    experiment: &VersionSpec,
    fault_zone: &str,
) -> Scenario {
    let mut app = app;
    let mut candidate_spec = experiment.clone();
    candidate_spec.version = "2.0.0".into();
    let candidate = app.deploy(candidate_spec).expect("candidate deploys cleanly");
    app.validate().expect("generated topology is valid");
    let entry_service = app.service_id(entry.0).expect("entry service exists");
    let experiment_service = app.service_id(&experiment.service).expect("experiment service");
    let baseline =
        app.version_id(&experiment.service, &experiment.version).expect("baseline version exists");
    Scenario {
        app,
        family,
        entry_service,
        entry_endpoint: entry.1.into(),
        experiment_service,
        baseline,
        candidate,
        fault_zone: fault_zone.into(),
    }
}

fn deep_chain(rng: &mut SplitMix64) -> Scenario {
    const DEPTH: usize = 6;
    let mut b = Application::builder();
    let mut experiment = None;
    for i in 0..DEPTH {
        let zone = match i {
            0 => "edge",
            1 | 2 => "seg-mid",
            _ => "seg-deep",
        };
        let mut ep = EndpointDef::new("op", lat(rng, 5.0, 4.0));
        if i + 1 < DEPTH {
            ep = ep.call(CallDef::always(format!("svc-{}", i + 1), "op"));
        }
        let spec = VersionSpec::new(format!("svc-{i}"), "1.0.0")
            .capacity(600.0)
            .load_sensitivity(0.0)
            .zone(zone)
            .endpoint(ep);
        if i == 1 {
            experiment = Some(spec.clone());
        }
        b.version(spec);
    }
    let app = b.build().expect("deep chain builds");
    finish(TopologyFamily::DeepChain, app, ("svc-0", "op"), &experiment.unwrap(), "seg-mid")
}

fn wide_fanout(rng: &mut SplitMix64) -> Scenario {
    const LEAVES: usize = 6;
    let mut b = Application::builder();
    let mut fan = EndpointDef::new("fan", lat(rng, 4.0, 2.0));
    for i in 0..LEAVES {
        let callee = format!("leaf-{i}");
        fan = if i < 3 {
            fan.call(CallDef::always(callee, "op"))
        } else {
            fan.call(CallDef::with_probability(callee, "op", 0.7))
        };
    }
    b.version(
        VersionSpec::new("front", "1.0.0")
            .capacity(800.0)
            .load_sensitivity(0.0)
            .zone("front")
            .endpoint(fan),
    );
    let mut experiment = None;
    for i in 0..LEAVES {
        let zone = if i % 2 == 0 { "leaf-east" } else { "leaf-west" };
        let spec = VersionSpec::new(format!("leaf-{i}"), "1.0.0")
            .capacity(600.0)
            .load_sensitivity(0.0)
            .zone(zone)
            .endpoint(EndpointDef::new("op", lat(rng, 6.0, 6.0)));
        if i == 0 {
            experiment = Some(spec.clone());
        }
        b.version(spec);
    }
    let app = b.build().expect("fanout builds");
    finish(TopologyFamily::WideFanout, app, ("front", "fan"), &experiment.unwrap(), "leaf-east")
}

fn hub_and_spoke(rng: &mut SplitMix64) -> Scenario {
    const BACKENDS: usize = 4;
    let mut b = Application::builder();
    b.version(
        VersionSpec::new("gw", "1.0.0")
            .capacity(800.0)
            .load_sensitivity(0.0)
            .zone("edge")
            .endpoint(
                EndpointDef::new("gw", lat(rng, 3.0, 2.0)).call(CallDef::always("hub", "route")),
            ),
    );
    let mut route = EndpointDef::new("route", lat(rng, 6.0, 4.0));
    for i in 0..BACKENDS {
        let callee = format!("data-{i}");
        route = if i == 0 {
            route.call(CallDef::always(callee, "op"))
        } else {
            route.call(CallDef::with_probability(callee, "op", 0.8))
        };
    }
    let hub = VersionSpec::new("hub", "1.0.0")
        .capacity(700.0)
        .load_sensitivity(0.0)
        .zone("core")
        .endpoint(route);
    b.version(hub.clone());
    for i in 0..BACKENDS {
        b.version(
            VersionSpec::new(format!("data-{i}"), "1.0.0")
                .capacity(900.0)
                .load_sensitivity(0.0)
                .zone("data")
                .endpoint(EndpointDef::new("op", lat(rng, 4.0, 5.0))),
        );
    }
    let app = b.build().expect("hub-and-spoke builds");
    finish(TopologyFamily::HubAndSpoke, app, ("gw", "gw"), &hub, "core")
}

fn cell_partition(rng: &mut SplitMix64) -> Scenario {
    const CELLS: usize = 3;
    let mut b = Application::builder();
    let mut route = EndpointDef::new("route", lat(rng, 2.0, 2.0));
    for c in 0..CELLS {
        route = route.call(CallDef::with_probability(format!("cell{c}-front"), "op", 0.45));
    }
    b.version(
        VersionSpec::new("ingress", "1.0.0")
            .capacity(900.0)
            .load_sensitivity(0.0)
            .zone("ingress")
            .endpoint(route),
    );
    let mut experiment = None;
    for c in 0..CELLS {
        let zone = format!("cell-{c}");
        // Cross-cell call: this cell's front leaks into the next cell's
        // mid tier with low probability — the partition is imperfect.
        let front = VersionSpec::new(format!("cell{c}-front"), "1.0.0")
            .capacity(700.0)
            .load_sensitivity(0.0)
            .zone(&zone)
            .endpoint(
                EndpointDef::new("op", lat(rng, 4.0, 3.0))
                    .call(CallDef::always(format!("cell{c}-mid"), "op"))
                    .call(CallDef::with_probability(
                        format!("cell{}-mid", (c + 1) % CELLS),
                        "op",
                        0.2,
                    )),
            );
        let mid = VersionSpec::new(format!("cell{c}-mid"), "1.0.0")
            .capacity(700.0)
            .load_sensitivity(0.0)
            .zone(&zone)
            .endpoint(
                EndpointDef::new("op", lat(rng, 5.0, 4.0))
                    .call(CallDef::always(format!("cell{c}-db"), "get")),
            );
        let db = VersionSpec::new(format!("cell{c}-db"), "1.0.0")
            .capacity(900.0)
            .load_sensitivity(0.0)
            .zone(&zone)
            .endpoint(EndpointDef::new("get", lat(rng, 3.0, 2.0)));
        if c == 0 {
            experiment = Some(mid.clone());
        }
        b.version(front);
        b.version(mid);
        b.version(db);
    }
    let app = b.build().expect("cell partition builds");
    finish(TopologyFamily::CellPartition, app, ("ingress", "route"), &experiment.unwrap(), "cell-0")
}

// ---------------------------------------------------------------------------
// Workload library
// ---------------------------------------------------------------------------

/// The workload shapes the corpus sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Constant-rate Poisson (the historical model).
    Steady,
    /// Piecewise diurnal cycle (120 s period, ±50 %).
    Diurnal,
    /// Flash crowd: 2.5× the base rate for 40 s starting at t = 40 s.
    FlashCrowd,
    /// Two-state MMPP: calm at 0.5×, bursting at 2.2×.
    Bursty,
}

/// All workload kinds, in matrix-sweep order.
pub const WORKLOADS: [WorkloadKind; 4] =
    [WorkloadKind::Steady, WorkloadKind::Diurnal, WorkloadKind::FlashCrowd, WorkloadKind::Bursty];

impl WorkloadKind {
    /// Stable lowercase identifier.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Steady => "steady",
            WorkloadKind::Diurnal => "diurnal",
            WorkloadKind::FlashCrowd => "flash_crowd",
            WorkloadKind::Bursty => "bursty",
        }
    }

    /// The rate profile realising this shape.
    pub fn profile(&self) -> RateProfile {
        match self {
            WorkloadKind::Steady => RateProfile::Constant,
            WorkloadKind::Diurnal => RateProfile::diurnal(SimDuration::from_secs(120), 0.5),
            WorkloadKind::FlashCrowd => RateProfile::flash_crowd(
                SimDuration::from_secs(40),
                2.5,
                SimDuration::from_secs(40),
            ),
            WorkloadKind::Bursty => RateProfile::Mmpp {
                calm_multiplier: 0.5,
                burst_multiplier: 2.2,
                mean_calm: SimDuration::from_secs(20),
                mean_burst: SimDuration::from_secs(8),
            },
        }
    }
}

/// Builds the scenario's workload: single entry, one anonymous user pool,
/// the kind's rate profile over `rate_rps`.
pub fn workload_for(scenario: &Scenario, kind: WorkloadKind, rate_rps: f64) -> Workload {
    Workload {
        population: Population::single("all", 20_000),
        rate_rps,
        entries: vec![EntryPoint {
            service: scenario.entry_service,
            endpoint: scenario.entry_endpoint.clone(),
            weight: 1.0,
        }],
        profile: kind.profile(),
    }
}

// ---------------------------------------------------------------------------
// Fault scenarios
// ---------------------------------------------------------------------------

/// The fault dimension of the matrix: three single-version faults on the
/// experiment candidate and two correlated zone faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScenario {
    /// Full outage of the candidate version.
    CandidateOutage,
    /// Extra 0.85 error probability on the candidate.
    CandidateErrorBurst,
    /// 6× latency on the candidate.
    CandidateLatencySpike,
    /// Simultaneous outage of every version in the fault zone.
    ZoneOutage,
    /// Cascading 6× latency storm across the fault zone.
    LatencyStorm,
}

/// All fault scenarios, in matrix-sweep order.
pub const FAULTS: [FaultScenario; 5] = [
    FaultScenario::CandidateOutage,
    FaultScenario::CandidateErrorBurst,
    FaultScenario::CandidateLatencySpike,
    FaultScenario::ZoneOutage,
    FaultScenario::LatencyStorm,
];

impl FaultScenario {
    /// Stable lowercase identifier.
    pub fn name(&self) -> &'static str {
        match self {
            FaultScenario::CandidateOutage => "candidate_outage",
            FaultScenario::CandidateErrorBurst => "candidate_error_burst",
            FaultScenario::CandidateLatencySpike => "candidate_latency_spike",
            FaultScenario::ZoneOutage => "zone_outage",
            FaultScenario::LatencyStorm => "latency_storm",
        }
    }

    /// `true` when the fault strikes a whole zone rather than only the
    /// candidate (canary-vs-baseline reports are blind to these).
    pub fn is_correlated(&self) -> bool {
        matches!(self, FaultScenario::ZoneOutage | FaultScenario::LatencyStorm)
    }
}

/// Concrete fault windows for one cell.
pub fn faults_for(
    scenario: &Scenario,
    fault: FaultScenario,
    from: SimTime,
    until: SimTime,
) -> Vec<Fault> {
    match fault {
        FaultScenario::CandidateOutage => {
            vec![Fault { version: scenario.candidate, kind: FaultKind::Outage, from, until }]
        }
        FaultScenario::CandidateErrorBurst => vec![Fault {
            version: scenario.candidate,
            kind: FaultKind::ErrorBurst { extra_error_rate: 0.85 },
            from,
            until,
        }],
        FaultScenario::CandidateLatencySpike => vec![Fault {
            version: scenario.candidate,
            kind: FaultKind::LatencySpike { multiplier: 6.0 },
            from,
            until,
        }],
        FaultScenario::ZoneOutage => {
            faults::zone_outage(&scenario.app.versions_in_zone(&scenario.fault_zone), from, until)
        }
        FaultScenario::LatencyStorm => faults::latency_storm(
            &scenario.app.versions_in_zone(&scenario.fault_zone),
            6.0,
            from,
            until,
        ),
    }
}

/// The versions a correct localizer may point at for this fault.
pub fn fault_victims(scenario: &Scenario, fault: FaultScenario) -> Vec<VersionId> {
    if fault.is_correlated() {
        scenario.app.versions_in_zone(&scenario.fault_zone)
    } else {
        vec![scenario.candidate]
    }
}

// ---------------------------------------------------------------------------
// Fault localizer
// ---------------------------------------------------------------------------

/// Per-edge statistics for localization: call volume, *blamed* failures
/// (failed with no failed child — the failure originated at this hop) and
/// a self-time sketch (duration minus children, so ancestors do not
/// inherit a deep spike).
#[derive(Debug, Clone)]
pub struct BlameStats {
    /// Executed calls folded into this edge.
    pub calls: u64,
    /// Calls blamed as the *origin* of a failure.
    pub blamed: u64,
    /// Self-time (ms) distribution.
    pub self_latency: QuantileSketch,
}

impl Default for BlameStats {
    fn default() -> Self {
        BlameStats { calls: 0, blamed: 0, self_latency: QuantileSketch::for_latency() }
    }
}

impl BlameStats {
    /// Fraction of calls blamed for a failure.
    pub fn blame_rate(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.blamed as f64 / self.calls as f64
        }
    }

    /// Self-time p95 in milliseconds (0 when empty).
    pub fn self_p95(&self) -> f64 {
        self.self_latency.quantile(0.95).unwrap_or(0.0)
    }
}

/// Folds traces into per-edge [`BlameStats`] — the corpus counterpart of
/// [`crate::health::HealthAccumulator`], specialised for time-window
/// comparison instead of canary-vs-baseline comparison.
#[derive(Debug, Clone, Default)]
pub struct BlameAccumulator {
    edges: BTreeMap<EdgeKey, BlameStats>,
}

impl BlameAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds every primary (non-dark, executed) span of `trace`.
    pub fn observe_trace(&mut self, trace: &Trace) {
        let n = trace.spans.len();
        let mut child_ms = vec![0.0f64; n];
        let mut child_failed = vec![false; n];
        for span in &trace.spans {
            if span.dark {
                continue;
            }
            if let Some(parent) = span.parent {
                let p = parent.0 as usize;
                if p < n {
                    child_ms[p] += span.duration.as_millis_f64();
                    if matches!(span.status, SpanStatus::Failed | SpanStatus::TimedOut) {
                        child_failed[p] = true;
                    }
                }
            }
        }
        for (i, span) in trace.spans.iter().enumerate() {
            // Shed/fallback event spans never executed the endpoint;
            // localization judges executed work only.
            if span.dark || matches!(span.status, SpanStatus::Shed | SpanStatus::Fallback) {
                continue;
            }
            let caller = span.parent.and_then(|p| trace.get(p)).map(|p| p.version);
            let key = EdgeKey { caller, callee: span.version, endpoint: span.endpoint };
            let weight = u64::from(trace.weight);
            let stats = self.edges.entry(key).or_default();
            stats.calls += weight;
            let failed = matches!(span.status, SpanStatus::Failed | SpanStatus::TimedOut);
            if failed && !child_failed[i] {
                stats.blamed += weight;
            }
            let self_ms = (span.duration.as_millis_f64() - child_ms[i]).max(0.0);
            stats.self_latency.push_weighted(self_ms, weight);
        }
    }

    /// The accumulated edges.
    pub fn edges(&self) -> &BTreeMap<EdgeKey, BlameStats> {
        &self.edges
    }
}

/// Ranks edges by degradation between a healthy and a faulted window:
/// blame-rate delta weighted like error rates, self-p95 delta weighted
/// like latency (the [`crate::health`] score constants). Ties break on
/// the edge key, so the ranking is deterministic.
pub fn localize(healthy: &BlameAccumulator, faulted: &BlameAccumulator) -> Vec<(EdgeKey, f64)> {
    let mut ranked: Vec<(EdgeKey, f64)> = faulted
        .edges
        .iter()
        .map(|(key, f)| {
            let (blame_h, p95_h) = match healthy.edges.get(key) {
                Some(h) => (h.blame_rate(), h.self_p95()),
                None => (0.0, 0.0),
            };
            let score = (f.blame_rate() - blame_h).max(0.0) * SCORE_ERROR_RATE_WEIGHT
                + (f.self_p95() - p95_h).max(0.0) * SCORE_P95_DELTA_WEIGHT;
            (*key, score)
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    });
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seed_deterministic() {
        for family in FAMILIES {
            let a = generate(family, 7);
            let b = generate(family, 7);
            assert_eq!(a.app, b.app, "{}", family.name());
            let c = generate(family, 8);
            assert_ne!(a.app, c.app, "{} must jitter with the seed", family.name());
        }
    }

    #[test]
    fn every_family_is_valid_and_zoned() {
        for family in FAMILIES {
            let s = generate(family, 1);
            s.app.validate().unwrap();
            assert!(!s.app.zones().is_empty(), "{} has zones", family.name());
            // The fault zone exists, contains the experiment service and
            // excludes the entry service.
            let members = s.app.versions_in_zone(&s.fault_zone);
            assert!(!members.is_empty());
            assert!(members.contains(&s.baseline));
            assert!(members.contains(&s.candidate));
            assert!(members.iter().all(|v| s.app.version(*v).service != s.entry_service));
        }
    }

    #[test]
    fn candidate_mirrors_baseline_shape() {
        for family in FAMILIES {
            let s = generate(family, 3);
            let b = s.app.version(s.baseline);
            let c = s.app.version(s.candidate);
            assert_eq!(b.service, c.service);
            assert_eq!(b.endpoints.len(), c.endpoints.len());
            assert_eq!(b.zone, c.zone);
        }
    }

    #[test]
    fn scenarios_run_under_every_workload() {
        for family in FAMILIES {
            let s = generate(family, 5);
            for kind in WORKLOADS {
                let wl = workload_for(&s, kind, 20.0);
                wl.validate().unwrap();
                let mut sim = Simulation::new(s.app.clone(), 42);
                let report = sim.run_with(SimDuration::from_secs(20), &wl);
                assert!(
                    report.requests > 100,
                    "{}/{}: {} requests",
                    family.name(),
                    kind.name(),
                    report.requests
                );
            }
        }
    }

    #[test]
    fn zone_faults_strike_every_zone_member() {
        let s = generate(TopologyFamily::CellPartition, 2);
        let members = s.app.versions_in_zone(&s.fault_zone);
        assert_eq!(members.len(), 4, "cell-0 front/mid(+candidate)/db");
        let faults = faults_for(
            &s,
            FaultScenario::ZoneOutage,
            SimTime::from_secs(10),
            SimTime::from_secs(20),
        );
        assert_eq!(faults.len(), members.len());
    }

    #[test]
    fn localizer_blames_the_faulted_service_not_its_ancestors() {
        // Deep chain, outage at svc-1's candidate: every ancestor fails
        // too, but blame must land on the faulted version.
        let s = generate(TopologyFamily::DeepChain, 11);
        let mut sim = Simulation::new(s.app.clone(), 99);
        sim.set_trace_sampling(1.0);
        s.canary_split(&mut sim, 0.3).unwrap();
        let wl = workload_for(&s, WorkloadKind::Steady, 30.0);
        sim.run_with(SimDuration::from_secs(30), &wl);
        let mut healthy = BlameAccumulator::new();
        for t in sim.drain_traces() {
            healthy.observe_trace(&t);
        }
        for f in faults_for(
            &s,
            FaultScenario::CandidateOutage,
            sim.now(),
            sim.now() + SimDuration::from_secs(30),
        ) {
            sim.inject_fault(f);
        }
        sim.run_with(SimDuration::from_secs(30), &wl);
        let mut faulted = BlameAccumulator::new();
        for t in sim.drain_traces() {
            faulted.observe_trace(&t);
        }
        let ranked = localize(&healthy, &faulted);
        let top = &ranked[0];
        assert!(top.1 > 0.0, "top edge must be degraded");
        assert_eq!(top.0.callee, s.candidate, "blame lands on the faulted candidate");
    }
}
