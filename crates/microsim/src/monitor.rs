//! The windowed metric store — the telemetry backbone.
//!
//! "Monitoring is a prerequisite for keeping developers aware of events in
//! production environments. With continuous experimentation, the importance
//! of monitoring applications even increases" (Section 2.5.1). Bifrost
//! checks query this store; Figure 4.6 plots its moving averages.
//!
//! Series are keyed by a free-form *scope* string (conventionally
//! `service@version` for infrastructure metrics and `exp:<name>/<variant>`
//! for experiment-level metrics) plus a [`MetricKind`]. Samples arrive in
//! virtual-time order, so window queries use binary search.

use cex_core::metrics::{MetricKind, OnlineStats, Sample, Summary};
use cex_core::simtime::{SimDuration, SimTime};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

type Key = (String, MetricKind);

/// Thread-safe, append-mostly metric store.
///
/// Interior mutability (a [`RwLock`]) lets the Bifrost engine's worker
/// threads share one store by reference.
#[derive(Debug, Default)]
pub struct MetricStore {
    inner: RwLock<HashMap<Key, Vec<Sample>>>,
    /// Windowed reads served so far (monitoring-cost accounting for the
    /// Bifrost execution journal). The total per tick is deterministic
    /// even though worker threads increment it in arbitrary order.
    window_reads: AtomicU64,
}

impl MetricStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MetricStore::default()
    }

    /// Records one observation.
    ///
    /// Samples for one series should arrive in non-decreasing time order
    /// (the virtual clock guarantees this); out-of-order samples are
    /// accepted but degrade window queries for their series.
    pub fn record(&self, scope: &str, metric: MetricKind, sample: Sample) {
        let mut map = self.inner.write().expect("metric store lock poisoned");
        map.entry((scope.to_string(), metric)).or_default().push(sample);
    }

    /// Convenience: records `value` at `time`.
    pub fn record_value(&self, scope: &str, metric: MetricKind, time: SimTime, value: f64) {
        self.record(scope, metric, Sample::new(time, value));
    }

    /// Number of samples in a series.
    pub fn count(&self, scope: &str, metric: MetricKind) -> usize {
        self.inner
            .read()
            .expect("metric store lock poisoned")
            .get(&(scope.to_string(), metric))
            .map(|v| v.len())
            .unwrap_or(0)
    }

    /// All scopes currently holding at least one series.
    pub fn scopes(&self) -> Vec<String> {
        let map = self.inner.read().expect("metric store lock poisoned");
        let mut scopes: Vec<String> = map.keys().map(|(s, _)| s.clone()).collect();
        scopes.sort();
        scopes.dedup();
        scopes
    }

    /// Summary of the samples with `from <= time < to`.
    pub fn summary_between(
        &self,
        scope: &str,
        metric: MetricKind,
        from: SimTime,
        to: SimTime,
    ) -> Summary {
        let map = self.inner.read().expect("metric store lock poisoned");
        let mut acc = OnlineStats::new();
        if let Some(series) = map.get(&(scope.to_string(), metric)) {
            let start = series.partition_point(|s| s.time < from);
            for sample in &series[start..] {
                if sample.time >= to {
                    break;
                }
                acc.push(sample.value);
            }
        }
        acc.summary()
    }

    /// Summary of the trailing window — the **closed** interval
    /// `[now - window, now]`: samples at exactly `now - window` and at
    /// exactly `now` are both included.
    pub fn window_summary(
        &self,
        scope: &str,
        metric: MetricKind,
        now: SimTime,
        window: SimDuration,
    ) -> Summary {
        self.window_reads.fetch_add(1, Ordering::Relaxed);
        let from = SimTime::from_millis(now.as_millis().saturating_sub(window.as_millis()));
        self.summary_between(scope, metric, from, now + SimDuration::from_millis(1))
    }

    /// Number of windowed reads ([`MetricStore::window_summary`]) served
    /// since creation — the monitoring-cost counter the Bifrost journal
    /// samples per tick.
    pub fn window_reads(&self) -> u64 {
        self.window_reads.load(Ordering::Relaxed)
    }

    /// Moving average: for each step boundary in `[start, end)` emits the
    /// mean of the trailing `window`. This regenerates the "3-second moving
    /// average of monitored response times" of Figure 4.6.
    pub fn moving_average(
        &self,
        scope: &str,
        metric: MetricKind,
        start: SimTime,
        end: SimTime,
        window: SimDuration,
        step: SimDuration,
    ) -> Vec<(SimTime, f64)> {
        assert!(!step.is_zero(), "step must be positive");
        let mut out = Vec::new();
        let mut t = start;
        while t < end {
            let s = self.window_summary(scope, metric, t, window);
            if s.count > 0 {
                out.push((t, s.mean));
            }
            t += step;
        }
        out
    }

    /// Removes every series of a scope (e.g. when an experiment finishes).
    pub fn clear_scope(&self, scope: &str) {
        let mut map = self.inner.write().expect("metric store lock poisoned");
        map.retain(|(s, _), _| s != scope);
    }

    /// Removes every series whose scope starts with `prefix` (e.g. all
    /// `exp:<name>/` experiment-level series once the experiment's
    /// journal is the long-term record).
    pub fn clear_prefix(&self, prefix: &str) {
        let mut map = self.inner.write().expect("metric store lock poisoned");
        map.retain(|(s, _), _| !s.starts_with(prefix));
    }

    /// Total number of stored samples across all series (for capacity
    /// accounting in the engine benches).
    pub fn total_samples(&self) -> usize {
        self.inner.read().expect("metric store lock poisoned").values().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_ramp() -> MetricStore {
        let store = MetricStore::new();
        // value(t) = t/1000 for t = 0ms, 100ms, …, 9900ms
        for i in 0..100u64 {
            store.record_value(
                "svc@1.0.0",
                MetricKind::ResponseTime,
                SimTime::from_millis(i * 100),
                i as f64,
            );
        }
        store
    }

    #[test]
    fn counts_and_scopes() {
        let store = store_with_ramp();
        assert_eq!(store.count("svc@1.0.0", MetricKind::ResponseTime), 100);
        assert_eq!(store.count("svc@1.0.0", MetricKind::ErrorRate), 0);
        assert_eq!(store.scopes(), vec!["svc@1.0.0".to_string()]);
        assert_eq!(store.total_samples(), 100);
    }

    #[test]
    fn summary_between_respects_bounds() {
        let store = store_with_ramp();
        let s = store.summary_between(
            "svc@1.0.0",
            MetricKind::ResponseTime,
            SimTime::from_millis(1_000),
            SimTime::from_millis(2_000),
        );
        // Samples at 1000..1900ms → values 10..=19.
        assert_eq!(s.count, 10);
        assert!((s.mean - 14.5).abs() < 1e-12);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 19.0);
    }

    #[test]
    fn window_summary_trailing() {
        let store = store_with_ramp();
        let s = store.window_summary(
            "svc@1.0.0",
            MetricKind::ResponseTime,
            SimTime::from_millis(9_900),
            SimDuration::from_millis(500),
        );
        // Samples at 9400..=9900 → values 94..=99.
        assert_eq!(s.count, 6);
        assert_eq!(s.max, 99.0);
    }

    #[test]
    fn empty_series_gives_empty_summary() {
        let store = MetricStore::new();
        let s = store.window_summary(
            "x",
            MetricKind::ErrorRate,
            SimTime::from_secs(1),
            SimDuration::from_secs(1),
        );
        assert_eq!(s.count, 0);
    }

    #[test]
    fn moving_average_tracks_ramp() {
        let store = store_with_ramp();
        let ma = store.moving_average(
            "svc@1.0.0",
            MetricKind::ResponseTime,
            SimTime::from_millis(3_000),
            SimTime::from_millis(6_000),
            SimDuration::from_secs(3),
            SimDuration::from_secs(1),
        );
        assert_eq!(ma.len(), 3);
        // The ramp's moving average increases monotonically.
        assert!(ma.windows(2).all(|w| w[0].1 < w[1].1));
    }

    #[test]
    fn window_summary_interval_is_closed_on_both_ends() {
        let store = MetricStore::new();
        for ms in [1_000u64, 2_000, 3_000] {
            store.record_value("s", MetricKind::ResponseTime, SimTime::from_millis(ms), ms as f64);
        }
        // Window [1000, 3000]: all three samples, including both edges.
        let s = store.window_summary(
            "s",
            MetricKind::ResponseTime,
            SimTime::from_millis(3_000),
            SimDuration::from_millis(2_000),
        );
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1_000.0);
        assert_eq!(s.max, 3_000.0);
    }

    #[test]
    fn moving_average_skips_gaps_in_the_series() {
        let store = MetricStore::new();
        // Two bursts with a 10-second silence between them.
        for i in 0..5u64 {
            store.record_value("s", MetricKind::ResponseTime, SimTime::from_secs(i), 10.0);
        }
        for i in 15..20u64 {
            store.record_value("s", MetricKind::ResponseTime, SimTime::from_secs(i), 30.0);
        }
        let ma = store.moving_average(
            "s",
            MetricKind::ResponseTime,
            SimTime::ZERO,
            SimTime::from_secs(20),
            SimDuration::from_secs(2),
            SimDuration::from_secs(1),
        );
        // Step boundaries whose trailing 2-second window is empty (the
        // gap from 7s through 14s) emit no point at all.
        assert!(ma.iter().all(|(t, _)| t.as_secs() <= 6 || t.as_secs() >= 15), "{ma:?}");
        // Points inside each burst reflect that burst's level only.
        assert!(ma.iter().filter(|(t, _)| t.as_secs() <= 6).all(|(_, v)| *v == 10.0));
        assert!(ma.iter().filter(|(t, _)| t.as_secs() >= 15).all(|(_, v)| *v == 30.0));
        assert!(!ma.is_empty());
    }

    #[test]
    fn window_reads_counts_windowed_queries() {
        let store = store_with_ramp();
        let before = store.window_reads();
        store.window_summary(
            "svc@1.0.0",
            MetricKind::ResponseTime,
            SimTime::from_secs(5),
            SimDuration::from_secs(1),
        );
        store.window_summary("ghost", MetricKind::ErrorRate, SimTime::ZERO, SimDuration::ZERO);
        assert_eq!(store.window_reads(), before + 2);
        // Non-windowed reads are not counted.
        store.summary_between("svc@1.0.0", MetricKind::ResponseTime, SimTime::ZERO, SimTime::ZERO);
        assert_eq!(store.window_reads(), before + 2);
    }

    #[test]
    fn clear_prefix_removes_matching_scopes_only() {
        let store = MetricStore::new();
        store.record_value("exp:a/control", MetricKind::ConversionRate, SimTime::ZERO, 1.0);
        store.record_value("exp:a/variant", MetricKind::ConversionRate, SimTime::ZERO, 1.0);
        store.record_value("exp:ab/variant", MetricKind::ConversionRate, SimTime::ZERO, 1.0);
        store.record_value("svc@1", MetricKind::ResponseTime, SimTime::ZERO, 1.0);
        store.clear_prefix("exp:a/");
        assert_eq!(store.scopes(), vec!["exp:ab/variant".to_string(), "svc@1".to_string()]);
    }

    #[test]
    fn clear_scope_removes_series() {
        let store = store_with_ramp();
        store.record_value("other", MetricKind::ErrorRate, SimTime::ZERO, 0.0);
        store.clear_scope("svc@1.0.0");
        assert_eq!(store.count("svc@1.0.0", MetricKind::ResponseTime), 0);
        assert_eq!(store.count("other", MetricKind::ErrorRate), 1);
    }

    #[test]
    fn store_is_shareable_across_threads() {
        let store = MetricStore::new();
        std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..100 {
                        store.record_value(
                            "shared",
                            MetricKind::Throughput,
                            SimTime::from_millis(worker * 1_000 + i),
                            1.0,
                        );
                    }
                });
            }
        });
        assert_eq!(store.count("shared", MetricKind::Throughput), 400);
    }
}
