//! The windowed metric store — the telemetry backbone.
//!
//! "Monitoring is a prerequisite for keeping developers aware of events in
//! production environments. With continuous experimentation, the importance
//! of monitoring applications even increases" (Section 2.5.1). Bifrost
//! checks query this store; Figure 4.6 plots its moving averages.
//!
//! Series are keyed by a free-form *scope* string (conventionally
//! `service@version` for infrastructure metrics and `exp:<name>/<variant>`
//! for experiment-level metrics) plus a [`MetricKind`]. Samples arrive in
//! virtual-time order, so window queries use binary search.
//!
//! # Hot-path architecture
//!
//! At million-request scale the store is the busiest shared structure in
//! the system — every request hop writes two samples, and every Bifrost
//! check reads a trailing window. Four mechanisms keep it off the critical
//! path:
//!
//! * **Scope interning.** Scope strings are interned once into dense
//!   [`ScopeId`]s; series are keyed by `(ScopeId, MetricKind)`, so the
//!   request loop never allocates or hashes a `String` per hop. The
//!   interner ([`cex_core::intern::Interner`], shared with the trace
//!   pipeline's span identity) publishes an immutable snapshot map plus a
//!   generation counter; reader threads cache the snapshot and resolve
//!   against it with a single atomic generation check — no lock unless a
//!   scope was interned since the thread last looked.
//! * **Sharding.** Series are spread over [`SHARD_COUNT`] independently
//!   locked shards keyed by a hash of the scope, so the Bifrost engine's
//!   worker threads and the request loop stop serializing on one lock.
//! * **Bucketed pre-aggregation.** Each series maintains fixed-resolution
//!   [`OnlineStats`] buckets next to a raw sample tail. Window queries
//!   merge whole buckets for the interior of the window and resolve the
//!   two partially covered edge buckets from raw samples, so the
//!   documented closed-interval semantics are preserved exactly while the
//!   cost is proportional to buckets-in-window, flat in series length.
//! * **Bounded retention.** When a retention horizon is set
//!   ([`MetricStore::set_retention`]), raw samples older than the horizon
//!   are compacted away and only their buckets remain, bounding memory on
//!   unbounded runs. Queries reaching into the compacted region are
//!   answered at bucket granularity (the horizon defaults past the longest
//!   check window, so live checks never hit it).
//!
//! Everything stays deterministic: ingestion order is driven by the
//! virtual clock, bucket contents and compaction depend only on the data,
//! and reads never mutate — so summaries are bit-exact across repeated
//! same-seed runs and across engine worker counts.

use crate::app::Application;
use cex_core::intern::Interner;
use cex_core::metrics::{MetricKind, OnlineStats, Sample, Summary};
use cex_core::obs::WallProbe;
use cex_core::simtime::{SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of independently locked shards (power of two).
pub const SHARD_COUNT: usize = 16;

/// Default width of a pre-aggregation bucket.
pub const DEFAULT_BUCKET_WIDTH: SimDuration = SimDuration::from_secs(1);

/// Samples buffered in a [`SampleBatch`] before an automatic flush.
const BATCH_FLUSH_THRESHOLD: usize = 4_096;

/// An interned metric scope. Dense, copyable, and stable for the lifetime
/// of the store that issued it — the hot-path replacement for scope
/// strings. Backed by the shared [`cex_core::intern`] interner (PR 3
/// introduced the pattern for metric scopes; the trace pipeline reuses it
/// for span identity).
pub type ScopeId = cex_core::intern::Sym;

/// Multiply-xor hasher for the small fixed-size `(ScopeId, MetricKind)`
/// keys — SipHash is overkill on the record path.
#[derive(Debug, Default)]
struct SeriesHasher(u64);

impl Hasher for SeriesHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(26);
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    fn write_u8(&mut self, n: u8) {
        self.write_u64(n as u64);
    }
}

type SeriesKey = (ScopeId, MetricKind);
type SeriesMap = HashMap<SeriesKey, Series, BuildHasherDefault<SeriesHasher>>;

/// One metric series: pre-aggregated buckets plus a raw sample tail.
#[derive(Debug, Default)]
struct Series {
    /// Samples ever recorded (survives compaction).
    total: u64,
    /// Latest sample time seen, in ms — drives retention.
    max_time_ms: u64,
    /// Bucket index of `buckets[0]`; bucket `i` covers
    /// `[i*width, (i+1)*width)` ms.
    first_bucket: u64,
    buckets: VecDeque<OnlineStats>,
    /// Raw samples with `time >= raw_floor_ms`, in arrival order.
    raw: VecDeque<Sample>,
    /// Bucket-aligned compaction floor: raw samples below it were
    /// compacted away and only their buckets remain.
    raw_floor_ms: u64,
}

impl Series {
    /// Extends bucket coverage to include bucket `idx`.
    fn ensure_bucket(&mut self, idx: u64) {
        if self.buckets.is_empty() {
            self.first_bucket = idx;
            self.buckets.push_back(OnlineStats::new());
        } else if idx < self.first_bucket {
            for _ in idx..self.first_bucket {
                self.buckets.push_front(OnlineStats::new());
            }
            self.first_bucket = idx;
        } else {
            let needed = idx - self.first_bucket + 1;
            while (self.buckets.len() as u64) < needed {
                self.buckets.push_back(OnlineStats::new());
            }
        }
    }

    fn push(&mut self, sample: Sample, width_ms: u64) {
        let t = sample.time.as_millis();
        let idx = t / width_ms;
        self.ensure_bucket(idx);
        self.buckets[(idx - self.first_bucket) as usize].push(sample.value);
        self.total += 1;
        self.max_time_ms = self.max_time_ms.max(t);
        if t >= self.raw_floor_ms {
            self.raw.push_back(sample);
        }
    }

    /// Appends a run of samples in one go — the batched ingestion path.
    ///
    /// The bucket is looked up once per same-bucket run instead of once
    /// per sample, the raw tail is extended with a block copy, and long
    /// runs feed four interleaved Welford chains (merged exactly with
    /// parallel Welford) so aggregation is not latency-bound on one
    /// serial divide chain. Counts, extrema, and the raw tail are
    /// identical to pushing each sample individually; bucket mean and
    /// variance may differ by floating-point rounding only, and stay
    /// deterministic for a given sample sequence. Samples should be in
    /// non-decreasing time order (the virtual clock guarantees this for
    /// every producer; out-of-order input still lands in the right
    /// buckets).
    fn push_run(&mut self, samples: &[Sample], width_ms: u64) {
        let mut i = 0;
        while i < samples.len() {
            let idx = samples[i].time.as_millis() / width_ms;
            self.ensure_bucket(idx);
            let b_start = idx * width_ms;
            let b_end = b_start + width_ms;
            let mut j = i;
            while j < samples.len() {
                let t = samples[j].time.as_millis();
                if t < b_start || t >= b_end {
                    break;
                }
                self.max_time_ms = self.max_time_ms.max(t);
                j += 1;
            }
            let run = &samples[i..j];
            let stats = &mut self.buckets[(idx - self.first_bucket) as usize];
            if run.len() < 16 {
                for s in run {
                    stats.push(s.value);
                }
            } else {
                let mut chains = [OnlineStats::new(); 4];
                let mut chunks = run.chunks_exact(4);
                for c in chunks.by_ref() {
                    chains[0].push(c[0].value);
                    chains[1].push(c[1].value);
                    chains[2].push(c[2].value);
                    chains[3].push(c[3].value);
                }
                for s in chunks.remainder() {
                    chains[0].push(s.value);
                }
                let (head, tail) = chains.split_at_mut(1);
                for chain in tail {
                    head[0].merge(chain);
                }
                stats.merge(&head[0]);
            }
            self.total += run.len() as u64;
            if self.raw_floor_ms == 0 {
                self.raw.extend(run.iter().copied());
            } else {
                let floor = self.raw_floor_ms;
                self.raw.extend(run.iter().copied().filter(|s| s.time.as_millis() >= floor));
            }
            i = j;
        }
    }

    /// Drops raw samples older than `horizon` behind the series' latest
    /// sample, in whole-bucket units (their buckets remain).
    fn compact(&mut self, horizon_ms: u64, width_ms: u64) {
        let cutoff = self.max_time_ms.saturating_sub(horizon_ms);
        let aligned = (cutoff / width_ms) * width_ms;
        if aligned <= self.raw_floor_ms {
            return;
        }
        while self.raw.front().is_some_and(|s| s.time.as_millis() < aligned) {
            self.raw.pop_front();
        }
        self.raw_floor_ms = aligned;
    }

    /// Accumulates the samples with `from_ms <= time < to_ms` into `acc`:
    /// whole buckets merged for the fully covered interior, raw samples
    /// pushed individually for the partially covered edges. Edge buckets
    /// below the compaction floor are merged whole (bucket granularity).
    fn accumulate(&self, from_ms: u64, to_ms: u64, width_ms: u64, acc: &mut OnlineStats) {
        if to_ms <= from_ms || self.buckets.is_empty() {
            return;
        }
        let lo = (from_ms / width_ms).max(self.first_bucket);
        let last = self.first_bucket + self.buckets.len() as u64 - 1;
        let hi = ((to_ms - 1) / width_ms).min(last);
        if lo > hi {
            return;
        }
        let mut raw_cursor: Option<usize> = None;
        for b in lo..=hi {
            let stats = &self.buckets[(b - self.first_bucket) as usize];
            if stats.count() == 0 {
                continue;
            }
            let b_start = b * width_ms;
            let b_end = b_start + width_ms;
            if (from_ms <= b_start && to_ms >= b_end) || b_start < self.raw_floor_ms {
                // Fully covered, or compacted below the raw floor: merge
                // the pre-aggregated bucket.
                acc.merge(stats);
            } else {
                // Partially covered edge, raw-backed: exact resolution.
                let s = from_ms.max(b_start);
                let e = to_ms.min(b_end);
                let start = *raw_cursor
                    .get_or_insert_with(|| self.raw.partition_point(|x| x.time.as_millis() < s));
                let mut i = start;
                while let Some(sample) = self.raw.get(i) {
                    let t = sample.time.as_millis();
                    if t >= e {
                        break;
                    }
                    if t >= s {
                        acc.push(sample.value);
                    }
                    i += 1;
                }
                raw_cursor = Some(i);
            }
        }
    }

    fn summary_between(&self, from: SimTime, to: SimTime, width_ms: u64) -> Summary {
        let mut acc = OnlineStats::new();
        self.accumulate(from.as_millis(), to.as_millis(), width_ms, &mut acc);
        acc.summary()
    }
}

#[derive(Debug, Default)]
struct Shard {
    series: RwLock<SeriesMap>,
}

/// Thread-safe, append-mostly metric store.
///
/// Interior mutability (per-shard [`RwLock`]s) lets the Bifrost engine's
/// worker threads share one store by reference. See the module docs for
/// the interning / sharding / bucketing / retention architecture.
#[derive(Debug)]
pub struct MetricStore {
    interner: Interner,
    shards: [Shard; SHARD_COUNT],
    bucket_width_ms: u64,
    /// Retention horizon in ms; 0 = unbounded (raw samples kept forever).
    retention_ms: AtomicU64,
    /// Windowed reads served so far (monitoring-cost accounting for the
    /// Bifrost execution journal). The total per tick is deterministic
    /// even though worker threads increment it in arbitrary order.
    window_reads: AtomicU64,
    /// Non-empty [`SampleBatch`] flushes. Batches fill in canonical merge
    /// order and flush at deterministic boundaries, so this is a pure
    /// function of the seed (registry counter `store.batch_flushes`).
    batch_flushes: AtomicU64,
    /// Wall time spent in batch flushes (sidecar profile only).
    flush_probe: WallProbe,
    /// Wall time spent serving windowed queries (sidecar profile only).
    query_probe: WallProbe,
}

impl Default for MetricStore {
    fn default() -> Self {
        MetricStore::new()
    }
}

fn shard_of(key: &SeriesKey) -> usize {
    let mut h = SeriesHasher::default();
    h.write_usize(key.0.index());
    h.write_u8(key.1 as u8);
    (h.finish() >> 32) as usize & (SHARD_COUNT - 1)
}

impl MetricStore {
    /// Creates an empty store with the [`DEFAULT_BUCKET_WIDTH`] and
    /// unbounded retention.
    pub fn new() -> Self {
        MetricStore::with_bucket_width(DEFAULT_BUCKET_WIDTH)
    }

    /// Creates an empty store with a custom pre-aggregation bucket width.
    ///
    /// # Panics
    ///
    /// Panics when `width` is zero.
    pub fn with_bucket_width(width: SimDuration) -> Self {
        assert!(!width.is_zero(), "bucket width must be positive");
        MetricStore {
            interner: Interner::new(),
            shards: std::array::from_fn(|_| Shard::default()),
            bucket_width_ms: width.as_millis(),
            retention_ms: AtomicU64::new(0),
            window_reads: AtomicU64::new(0),
            batch_flushes: AtomicU64::new(0),
            flush_probe: WallProbe::new(),
            query_probe: WallProbe::new(),
        }
    }

    /// The pre-aggregation bucket width.
    pub fn bucket_width(&self) -> SimDuration {
        SimDuration::from_millis(self.bucket_width_ms)
    }

    /// Sets (or clears) the retention horizon: raw samples older than
    /// `horizon` behind a series' latest sample are compacted into their
    /// buckets. `None` keeps raw samples forever.
    pub fn set_retention(&self, horizon: Option<SimDuration>) {
        self.retention_ms.store(horizon.map_or(0, SimDuration::as_millis), Ordering::Relaxed);
    }

    /// The active retention horizon, if any.
    pub fn retention(&self) -> Option<SimDuration> {
        match self.retention_ms.load(Ordering::Relaxed) {
            0 => None,
            ms => Some(SimDuration::from_millis(ms)),
        }
    }

    /// Interns `scope`, returning its dense id (idempotent).
    pub fn intern(&self, scope: &str) -> ScopeId {
        self.interner.intern(scope)
    }

    /// Resolves an already-interned scope without taking any lock.
    pub fn resolve(&self, scope: &str) -> Option<ScopeId> {
        self.interner.resolve(scope)
    }

    /// The scope name behind an id.
    pub fn scope_name(&self, id: ScopeId) -> Arc<str> {
        self.interner.name(id)
    }

    /// Interns the `service@version` scope of every deployed version,
    /// indexed by `VersionId` — the per-request hot path looks scopes up
    /// here instead of formatting labels.
    pub fn intern_version_scopes(&self, app: &Application) -> Vec<ScopeId> {
        app.versions().map(|(id, _)| self.intern(&app.version_label(id))).collect()
    }

    /// Starts a batched ingestion session: samples are buffered and
    /// flushed shard-by-shard (on drop, on [`SampleBatch::flush`], or when
    /// the buffer fills), amortizing lock traffic on the hot path.
    pub fn batch(&self) -> SampleBatch<'_> {
        SampleBatch { store: self, pending: Vec::new(), buffered: 0 }
    }

    /// Records one observation.
    ///
    /// Samples for one series should arrive in non-decreasing time order
    /// (the virtual clock guarantees this); out-of-order samples are
    /// accepted but degrade window queries for their series.
    pub fn record(&self, scope: &str, metric: MetricKind, sample: Sample) {
        self.record_id(self.intern(scope), metric, sample);
    }

    /// Convenience: records `value` at `time`.
    pub fn record_value(&self, scope: &str, metric: MetricKind, time: SimTime, value: f64) {
        self.record(scope, metric, Sample::new(time, value));
    }

    /// Records one observation under an interned scope.
    pub fn record_id(&self, scope: ScopeId, metric: MetricKind, sample: Sample) {
        let key = (scope, metric);
        let retention = self.retention_ms.load(Ordering::Relaxed);
        let mut map = self.shards[shard_of(&key)].series.write().expect("shard lock poisoned");
        let series = map.entry(key).or_default();
        series.push(sample, self.bucket_width_ms);
        if retention != 0 {
            series.compact(retention, self.bucket_width_ms);
        }
    }

    /// Number of samples ever recorded into a series (compaction does not
    /// reduce it).
    pub fn count(&self, scope: &str, metric: MetricKind) -> usize {
        self.resolve(scope).map_or(0, |id| self.count_id(id, metric))
    }

    /// [`MetricStore::count`] for an interned scope.
    pub fn count_id(&self, scope: ScopeId, metric: MetricKind) -> usize {
        let key = (scope, metric);
        self.shards[shard_of(&key)]
            .series
            .read()
            .expect("shard lock poisoned")
            .get(&key)
            .map(|s| s.total as usize)
            .unwrap_or(0)
    }

    /// All scopes currently holding at least one series.
    pub fn scopes(&self) -> Vec<String> {
        let mut ids: Vec<ScopeId> = Vec::new();
        for shard in &self.shards {
            let map = shard.series.read().expect("shard lock poisoned");
            ids.extend(map.keys().map(|(s, _)| *s));
        }
        ids.sort();
        ids.dedup();
        let mut scopes: Vec<String> =
            ids.into_iter().map(|id| self.scope_name(id).to_string()).collect();
        scopes.sort();
        scopes
    }

    /// Summary of the samples with `from <= time < to`.
    pub fn summary_between(
        &self,
        scope: &str,
        metric: MetricKind,
        from: SimTime,
        to: SimTime,
    ) -> Summary {
        self.resolve(scope)
            .map_or_else(Summary::default, |id| self.summary_between_id(id, metric, from, to))
    }

    /// [`MetricStore::summary_between`] for an interned scope.
    pub fn summary_between_id(
        &self,
        scope: ScopeId,
        metric: MetricKind,
        from: SimTime,
        to: SimTime,
    ) -> Summary {
        let key = (scope, metric);
        self.shards[shard_of(&key)]
            .series
            .read()
            .expect("shard lock poisoned")
            .get(&key)
            .map(|s| s.summary_between(from, to, self.bucket_width_ms))
            .unwrap_or_default()
    }

    /// Summary of the trailing window — the **closed** interval
    /// `[now - window, now]`: samples at exactly `now - window` and at
    /// exactly `now` are both included.
    pub fn window_summary(
        &self,
        scope: &str,
        metric: MetricKind,
        now: SimTime,
        window: SimDuration,
    ) -> Summary {
        match self.resolve(scope) {
            Some(id) => self.window_summary_id(id, metric, now, window),
            None => {
                self.window_reads.fetch_add(1, Ordering::Relaxed);
                Summary::default()
            }
        }
    }

    /// [`MetricStore::window_summary`] for an interned scope.
    pub fn window_summary_id(
        &self,
        scope: ScopeId,
        metric: MetricKind,
        now: SimTime,
        window: SimDuration,
    ) -> Summary {
        let _t = self.query_probe.time();
        self.window_reads.fetch_add(1, Ordering::Relaxed);
        let from = SimTime::from_millis(now.as_millis().saturating_sub(window.as_millis()));
        self.summary_between_id(scope, metric, from, now + SimDuration::from_millis(1))
    }

    /// Number of windowed reads ([`MetricStore::window_summary`] calls,
    /// with a whole [`MetricStore::moving_average`] sweep counting as one)
    /// served since creation — the monitoring-cost counter the Bifrost
    /// journal samples per tick.
    pub fn window_reads(&self) -> u64 {
        self.window_reads.load(Ordering::Relaxed)
    }

    /// Non-empty [`SampleBatch`] flushes completed against this store —
    /// deterministic (registry counter `store.batch_flushes`).
    pub fn batch_flushes(&self) -> u64 {
        self.batch_flushes.load(Ordering::Relaxed)
    }

    /// Number of interned metric scopes (registry gauge
    /// `store.interner.scopes`).
    pub fn interned_scopes(&self) -> u64 {
        self.interner.len() as u64
    }

    /// Wall-clock probe over batch flushes, for folding into a profiler.
    pub fn flush_probe(&self) -> &WallProbe {
        &self.flush_probe
    }

    /// Wall-clock probe over windowed queries, for folding into a
    /// profiler.
    pub fn query_probe(&self) -> &WallProbe {
        &self.query_probe
    }

    /// Arms or disarms both wall-clock probes (see
    /// [`cex_core::obs::ObsConfig`]).
    pub fn set_probes_armed(&self, armed: bool) {
        self.flush_probe.set_armed(armed);
        self.query_probe.set_armed(armed);
    }

    /// Moving average: for each step boundary in `[start, end)` emits the
    /// mean of the trailing `window`. This regenerates the "3-second moving
    /// average of monitored response times" of Figure 4.6.
    ///
    /// The whole sweep is one bulk read of the series: it takes the
    /// shard lock once, counts once against [`MetricStore::window_reads`],
    /// and advances two cursors over the raw tail instead of re-scanning
    /// the window per step.
    pub fn moving_average(
        &self,
        scope: &str,
        metric: MetricKind,
        start: SimTime,
        end: SimTime,
        window: SimDuration,
        step: SimDuration,
    ) -> Vec<(SimTime, f64)> {
        assert!(!step.is_zero(), "step must be positive");
        let _t = self.query_probe.time();
        self.window_reads.fetch_add(1, Ordering::Relaxed);
        let Some(id) = self.resolve(scope) else { return Vec::new() };
        let key = (id, metric);
        let map = self.shards[shard_of(&key)].series.read().expect("shard lock poisoned");
        let Some(series) = map.get(&key) else { return Vec::new() };

        let mut out = Vec::new();
        // Two-pointer sweep state over the raw tail: `sum`/`cnt` track the
        // samples in `raw[lo..hi)`, both cursors only ever advance.
        let mut lo = 0usize;
        let mut hi = 0usize;
        let mut sum = 0.0f64;
        let mut cnt = 0u64;
        let mut t = start;
        while t < end {
            // Closed interval [t - window, t], like window_summary.
            let from_ms = t.as_millis().saturating_sub(window.as_millis());
            let to_ms = t.as_millis() + 1;
            if from_ms >= series.raw_floor_ms {
                while let Some(s) = series.raw.get(hi) {
                    if s.time.as_millis() >= to_ms {
                        break;
                    }
                    sum += s.value;
                    cnt += 1;
                    hi += 1;
                }
                while let Some(s) = series.raw.get(lo) {
                    if lo >= hi || s.time.as_millis() >= from_ms {
                        break;
                    }
                    sum -= s.value;
                    cnt -= 1;
                    lo += 1;
                }
                if cnt > 0 {
                    out.push((t, sum / cnt as f64));
                }
            } else {
                // Window reaches into the compacted region: answer this
                // step at bucket granularity.
                let mut acc = OnlineStats::new();
                series.accumulate(from_ms, to_ms, self.bucket_width_ms, &mut acc);
                if let Some(mean) = acc.mean() {
                    out.push((t, mean));
                }
            }
            t += step;
        }
        out
    }

    /// Removes every series of a scope (e.g. when an experiment finishes).
    pub fn clear_scope(&self, scope: &str) {
        if let Some(id) = self.resolve(scope) {
            for shard in &self.shards {
                shard.series.write().expect("shard lock poisoned").retain(|(s, _), _| *s != id);
            }
        }
    }

    /// Removes every series whose scope starts with `prefix` (e.g. all
    /// `exp:<name>/` experiment-level series once the experiment's
    /// journal is the long-term record).
    pub fn clear_prefix(&self, prefix: &str) {
        let ids = self.interner.matching(|n| n.starts_with(prefix));
        if ids.is_empty() {
            return;
        }
        for shard in &self.shards {
            shard.series.write().expect("shard lock poisoned").retain(|(s, _), _| !ids.contains(s));
        }
    }

    /// Raw samples currently held in memory across all series — the
    /// capacity figure the engine benches track. With a retention horizon
    /// set this stays bounded while [`MetricStore::total_recorded`] keeps
    /// growing.
    pub fn total_samples(&self) -> usize {
        self.shards
            .iter()
            .map(|sh| {
                sh.series
                    .read()
                    .expect("shard lock poisoned")
                    .values()
                    .map(|s| s.raw.len())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Samples ever recorded across all live series (compaction does not
    /// reduce it; clearing a scope does).
    pub fn total_recorded(&self) -> u64 {
        self.shards
            .iter()
            .map(|sh| {
                sh.series
                    .read()
                    .expect("shard lock poisoned")
                    .values()
                    .map(|s| s.total)
                    .sum::<u64>()
            })
            .sum()
    }
}

/// Number of [`MetricKind`] variants, for dense per-series indexing.
const KIND_COUNT: usize = MetricKind::all().len();

/// A buffered ingestion session over a [`MetricStore`].
///
/// Samples are appended to dense per-series buffers — the slot index is
/// computed from the (small, dense) [`ScopeId`] and the metric-kind
/// discriminant, so the buffered path does no hashing and takes no lock.
/// Flushes acquire each shard lock once and look every series up once
/// per flush (not once per sample). They happen when the buffer reaches
/// an internal threshold, on [`SampleBatch::flush`], and on drop; callers
/// flush at deterministic boundaries (the simulation flushes per window),
/// so store contents never depend on wall-clock timing.
#[derive(Debug)]
pub struct SampleBatch<'a> {
    store: &'a MetricStore,
    /// Slot `scope.index() * KIND_COUNT + kind as usize`, grown on demand.
    /// Each slot keeps its series' samples in arrival order.
    pending: Vec<Vec<Sample>>,
    buffered: usize,
}

impl SampleBatch<'_> {
    /// Buffers one observation under an interned scope.
    pub fn record_id(&mut self, scope: ScopeId, metric: MetricKind, sample: Sample) {
        let slot = scope.index() * KIND_COUNT + metric as usize;
        if slot >= self.pending.len() {
            self.pending.resize_with(slot + 1, Vec::new);
        }
        self.pending[slot].push(sample);
        self.buffered += 1;
        if self.buffered >= BATCH_FLUSH_THRESHOLD {
            self.flush();
        }
    }

    /// Convenience: buffers `value` at `time`.
    pub fn record_value_id(
        &mut self,
        scope: ScopeId,
        metric: MetricKind,
        time: SimTime,
        value: f64,
    ) {
        self.record_id(scope, metric, Sample::new(time, value));
    }

    /// Writes all buffered samples through to the store.
    pub fn flush(&mut self) {
        if self.buffered == 0 {
            return;
        }
        let _t = self.store.flush_probe.time();
        self.store.batch_flushes.fetch_add(1, Ordering::Relaxed);
        let width = self.store.bucket_width_ms;
        let retention = self.store.retention_ms.load(Ordering::Relaxed);
        let kinds = MetricKind::all();
        for (shard_idx, shard) in self.store.shards.iter().enumerate() {
            let mut map = None;
            for (slot, samples) in self.pending.iter_mut().enumerate() {
                if samples.is_empty() {
                    continue;
                }
                let key = (ScopeId::from_index(slot / KIND_COUNT), kinds[slot % KIND_COUNT]);
                if shard_of(&key) != shard_idx {
                    continue;
                }
                let map =
                    map.get_or_insert_with(|| shard.series.write().expect("shard lock poisoned"));
                let series = map.entry(key).or_default();
                series.push_run(samples, width);
                if retention != 0 {
                    series.compact(retention, width);
                }
                samples.clear();
            }
        }
        self.buffered = 0;
    }
}

impl Drop for SampleBatch<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_ramp() -> MetricStore {
        let store = MetricStore::new();
        // value(t) = t/1000 for t = 0ms, 100ms, …, 9900ms
        for i in 0..100u64 {
            store.record_value(
                "svc@1.0.0",
                MetricKind::ResponseTime,
                SimTime::from_millis(i * 100),
                i as f64,
            );
        }
        store
    }

    #[test]
    fn counts_and_scopes() {
        let store = store_with_ramp();
        assert_eq!(store.count("svc@1.0.0", MetricKind::ResponseTime), 100);
        assert_eq!(store.count("svc@1.0.0", MetricKind::ErrorRate), 0);
        assert_eq!(store.scopes(), vec!["svc@1.0.0".to_string()]);
        assert_eq!(store.total_samples(), 100);
        assert_eq!(store.total_recorded(), 100);
    }

    #[test]
    fn summary_between_respects_bounds() {
        let store = store_with_ramp();
        let s = store.summary_between(
            "svc@1.0.0",
            MetricKind::ResponseTime,
            SimTime::from_millis(1_000),
            SimTime::from_millis(2_000),
        );
        // Samples at 1000..1900ms → values 10..=19.
        assert_eq!(s.count, 10);
        assert!((s.mean - 14.5).abs() < 1e-12);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 19.0);
    }

    #[test]
    fn summary_with_unaligned_bounds_resolves_edges_exactly() {
        let store = store_with_ramp();
        // [1250, 3750): bucket width is 1s, so both edges are partial.
        let s = store.summary_between(
            "svc@1.0.0",
            MetricKind::ResponseTime,
            SimTime::from_millis(1_250),
            SimTime::from_millis(3_750),
        );
        // Samples at 1300..=3700ms → values 13..=37.
        assert_eq!(s.count, 25);
        assert_eq!(s.min, 13.0);
        assert_eq!(s.max, 37.0);
        assert!((s.mean - 25.0).abs() < 1e-12);
    }

    #[test]
    fn window_summary_trailing() {
        let store = store_with_ramp();
        let s = store.window_summary(
            "svc@1.0.0",
            MetricKind::ResponseTime,
            SimTime::from_millis(9_900),
            SimDuration::from_millis(500),
        );
        // Samples at 9400..=9900 → values 94..=99.
        assert_eq!(s.count, 6);
        assert_eq!(s.max, 99.0);
    }

    #[test]
    fn empty_series_gives_empty_summary() {
        let store = MetricStore::new();
        let s = store.window_summary(
            "x",
            MetricKind::ErrorRate,
            SimTime::from_secs(1),
            SimDuration::from_secs(1),
        );
        assert_eq!(s.count, 0);
    }

    #[test]
    fn moving_average_tracks_ramp() {
        let store = store_with_ramp();
        let ma = store.moving_average(
            "svc@1.0.0",
            MetricKind::ResponseTime,
            SimTime::from_millis(3_000),
            SimTime::from_millis(6_000),
            SimDuration::from_secs(3),
            SimDuration::from_secs(1),
        );
        assert_eq!(ma.len(), 3);
        // The ramp's moving average increases monotonically.
        assert!(ma.windows(2).all(|w| w[0].1 < w[1].1));
    }

    #[test]
    fn window_summary_interval_is_closed_on_both_ends() {
        let store = MetricStore::new();
        for ms in [1_000u64, 2_000, 3_000] {
            store.record_value("s", MetricKind::ResponseTime, SimTime::from_millis(ms), ms as f64);
        }
        // Window [1000, 3000]: all three samples, including both edges.
        let s = store.window_summary(
            "s",
            MetricKind::ResponseTime,
            SimTime::from_millis(3_000),
            SimDuration::from_millis(2_000),
        );
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1_000.0);
        assert_eq!(s.max, 3_000.0);
    }

    #[test]
    fn moving_average_skips_gaps_in_the_series() {
        let store = MetricStore::new();
        // Two bursts with a 10-second silence between them.
        for i in 0..5u64 {
            store.record_value("s", MetricKind::ResponseTime, SimTime::from_secs(i), 10.0);
        }
        for i in 15..20u64 {
            store.record_value("s", MetricKind::ResponseTime, SimTime::from_secs(i), 30.0);
        }
        let ma = store.moving_average(
            "s",
            MetricKind::ResponseTime,
            SimTime::ZERO,
            SimTime::from_secs(20),
            SimDuration::from_secs(2),
            SimDuration::from_secs(1),
        );
        // Step boundaries whose trailing 2-second window is empty (the
        // gap from 7s through 14s) emit no point at all.
        assert!(ma.iter().all(|(t, _)| t.as_secs() <= 6 || t.as_secs() >= 15), "{ma:?}");
        // Points inside each burst reflect that burst's level only.
        assert!(ma.iter().filter(|(t, _)| t.as_secs() <= 6).all(|(_, v)| *v == 10.0));
        assert!(ma.iter().filter(|(t, _)| t.as_secs() >= 15).all(|(_, v)| *v == 30.0));
        assert!(!ma.is_empty());
    }

    #[test]
    fn window_reads_counts_windowed_queries() {
        let store = store_with_ramp();
        let before = store.window_reads();
        store.window_summary(
            "svc@1.0.0",
            MetricKind::ResponseTime,
            SimTime::from_secs(5),
            SimDuration::from_secs(1),
        );
        store.window_summary("ghost", MetricKind::ErrorRate, SimTime::ZERO, SimDuration::ZERO);
        assert_eq!(store.window_reads(), before + 2);
        // Non-windowed reads are not counted.
        store.summary_between("svc@1.0.0", MetricKind::ResponseTime, SimTime::ZERO, SimTime::ZERO);
        assert_eq!(store.window_reads(), before + 2);
    }

    #[test]
    fn moving_average_counts_as_one_window_read() {
        // Regression: the old implementation issued one window_summary per
        // step boundary, inflating the journal's per-tick monitoring-cost
        // accounting by the step count (30 increments for this sweep).
        let store = store_with_ramp();
        let before = store.window_reads();
        let ma = store.moving_average(
            "svc@1.0.0",
            MetricKind::ResponseTime,
            SimTime::ZERO,
            SimTime::from_secs(9),
            SimDuration::from_secs(3),
            SimDuration::from_millis(300),
        );
        assert_eq!(ma.len(), 30, "one point per step over the dense ramp");
        assert_eq!(store.window_reads(), before + 1, "a sweep is one bulk read");
    }

    #[test]
    fn moving_average_matches_per_step_window_summaries() {
        let store = store_with_ramp();
        let window = SimDuration::from_millis(700);
        let step = SimDuration::from_millis(300);
        let ma = store.moving_average(
            "svc@1.0.0",
            MetricKind::ResponseTime,
            SimTime::ZERO,
            SimTime::from_secs(10),
            window,
            step,
        );
        let mut t = SimTime::ZERO;
        let mut expected = Vec::new();
        while t < SimTime::from_secs(10) {
            let s = store.window_summary("svc@1.0.0", MetricKind::ResponseTime, t, window);
            if s.count > 0 {
                expected.push((t, s.mean));
            }
            t += step;
        }
        assert_eq!(ma.len(), expected.len());
        for ((ta, va), (te, ve)) in ma.iter().zip(&expected) {
            assert_eq!(ta, te);
            assert!((va - ve).abs() < 1e-9, "at {ta}: {va} vs {ve}");
        }
    }

    #[test]
    fn clear_prefix_removes_matching_scopes_only() {
        let store = MetricStore::new();
        store.record_value("exp:a/control", MetricKind::ConversionRate, SimTime::ZERO, 1.0);
        store.record_value("exp:a/variant", MetricKind::ConversionRate, SimTime::ZERO, 1.0);
        store.record_value("exp:ab/variant", MetricKind::ConversionRate, SimTime::ZERO, 1.0);
        store.record_value("svc@1", MetricKind::ResponseTime, SimTime::ZERO, 1.0);
        store.clear_prefix("exp:a/");
        assert_eq!(store.scopes(), vec!["exp:ab/variant".to_string(), "svc@1".to_string()]);
    }

    #[test]
    fn clear_scope_removes_series() {
        let store = store_with_ramp();
        store.record_value("other", MetricKind::ErrorRate, SimTime::ZERO, 0.0);
        store.clear_scope("svc@1.0.0");
        assert_eq!(store.count("svc@1.0.0", MetricKind::ResponseTime), 0);
        assert_eq!(store.count("other", MetricKind::ErrorRate), 1);
    }

    #[test]
    fn store_is_shareable_across_threads() {
        let store = MetricStore::new();
        std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..100 {
                        store.record_value(
                            "shared",
                            MetricKind::Throughput,
                            SimTime::from_millis(worker * 1_000 + i),
                            1.0,
                        );
                    }
                });
            }
        });
        assert_eq!(store.count("shared", MetricKind::Throughput), 400);
    }

    #[test]
    fn interner_is_idempotent_and_resolvable() {
        let store = MetricStore::new();
        let a = store.intern("svc@1");
        let b = store.intern("svc@2");
        assert_ne!(a, b);
        assert_eq!(store.intern("svc@1"), a);
        assert_eq!(store.resolve("svc@1"), Some(a));
        assert_eq!(store.resolve("missing"), None);
        assert_eq!(&*store.scope_name(b), "svc@2");
    }

    #[test]
    fn concurrent_interning_yields_consistent_ids() {
        let store = MetricStore::new();
        let ids: Vec<Vec<ScopeId>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let store = &store;
                    scope.spawn(move || {
                        (0..50).map(|i| store.intern(&format!("scope-{i}"))).collect::<Vec<_>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("interner thread panicked"))
                .collect()
        });
        for other in &ids[1..] {
            assert_eq!(&ids[0], other, "all threads agree on every id");
        }
        for (i, id) in ids[0].iter().enumerate() {
            assert_eq!(store.resolve(&format!("scope-{i}")), Some(*id));
        }
    }

    #[test]
    fn batch_is_equivalent_to_direct_records() {
        let direct = MetricStore::new();
        let batched = MetricStore::new();
        let scope = batched.intern("svc@1");
        let mut batch = batched.batch();
        for i in 0..500u64 {
            let t = SimTime::from_millis(i * 10);
            let v = (i as f64).sin() * 50.0;
            direct.record_value("svc@1", MetricKind::ResponseTime, t, v);
            batch.record_value_id(scope, MetricKind::ResponseTime, t, v);
        }
        drop(batch); // flush
        assert_eq!(batched.count("svc@1", MetricKind::ResponseTime), 500);
        let a = direct.window_summary(
            "svc@1",
            MetricKind::ResponseTime,
            SimTime::from_secs(4),
            SimDuration::from_secs(2),
        );
        let b = batched.window_summary(
            "svc@1",
            MetricKind::ResponseTime,
            SimTime::from_secs(4),
            SimDuration::from_secs(2),
        );
        // Counts, extrema, and the raw-backed window edges are identical;
        // bucket mean/variance may differ by rounding only, because the
        // batched path aggregates long runs over interleaved Welford
        // chains (see Series::push_run).
        assert_eq!(a.count, b.count, "batched ingestion keeps every sample");
        assert_eq!(a.min, b.min);
        assert_eq!(a.max, b.max);
        assert!(
            (a.mean - b.mean).abs() <= 1e-9 * a.mean.abs().max(1.0),
            "{} vs {}",
            a.mean,
            b.mean
        );
        assert!(
            (a.std_dev - b.std_dev).abs() <= 1e-9 * a.std_dev.abs().max(1.0),
            "{} vs {}",
            a.std_dev,
            b.std_dev
        );
    }

    #[test]
    fn retention_bounds_raw_samples_but_not_counts() {
        let store = MetricStore::new();
        store.set_retention(Some(SimDuration::from_secs(2)));
        assert_eq!(store.retention(), Some(SimDuration::from_secs(2)));
        for i in 0..100u64 {
            store.record_value(
                "s",
                MetricKind::ResponseTime,
                SimTime::from_millis(i * 100),
                i as f64,
            );
        }
        // Logical count is untouched; raw memory is bounded to roughly the
        // horizon (2s of samples at 10/s, bucket-aligned).
        assert_eq!(store.count("s", MetricKind::ResponseTime), 100);
        assert_eq!(store.total_recorded(), 100);
        assert!(store.total_samples() <= 31, "raw tail bounded: {}", store.total_samples());
        // Recent windows are still exact.
        let s = store.window_summary(
            "s",
            MetricKind::ResponseTime,
            SimTime::from_millis(9_900),
            SimDuration::from_millis(500),
        );
        assert_eq!(s.count, 6);
        assert_eq!(s.max, 99.0);
    }

    #[test]
    fn compacted_region_is_answered_at_bucket_granularity() {
        let store = MetricStore::new();
        store.set_retention(Some(SimDuration::from_secs(2)));
        for i in 0..100u64 {
            store.record_value(
                "s",
                MetricKind::ResponseTime,
                SimTime::from_millis(i * 100),
                i as f64,
            );
        }
        // A full-range summary still sees every sample: compacted buckets
        // are merged whole, the raw tail exactly.
        let s = store.summary_between(
            "s",
            MetricKind::ResponseTime,
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 99.0);
        assert!((s.mean - 49.5).abs() < 1e-9);
        // A query cutting into a compacted bucket includes that whole
        // bucket (bucket granularity): [1250, 2000) yields the full
        // 1000..=1900ms bucket, i.e. values 10..=19.
        let s = store.summary_between(
            "s",
            MetricKind::ResponseTime,
            SimTime::from_millis(1_250),
            SimTime::from_millis(2_000),
        );
        assert_eq!(s.count, 10);
        assert_eq!(s.min, 10.0);
    }

    #[test]
    fn unbounded_store_never_compacts() {
        let store = store_with_ramp();
        assert_eq!(store.retention(), None);
        assert_eq!(store.total_samples(), 100);
    }
}
