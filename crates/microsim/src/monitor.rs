//! The windowed metric store — the telemetry backbone.
//!
//! "Monitoring is a prerequisite for keeping developers aware of events in
//! production environments. With continuous experimentation, the importance
//! of monitoring applications even increases" (Section 2.5.1). Bifrost
//! checks query this store; Figure 4.6 plots its moving averages.
//!
//! Series are keyed by a free-form *scope* string (conventionally
//! `service@version` for infrastructure metrics and `exp:<name>/<variant>`
//! for experiment-level metrics) plus a [`MetricKind`]. Samples arrive in
//! virtual-time order, so window queries use binary search.

use cex_core::metrics::{MetricKind, OnlineStats, Sample, Summary};
use cex_core::simtime::{SimDuration, SimTime};
use std::sync::RwLock;
use std::collections::HashMap;

type Key = (String, MetricKind);

/// Thread-safe, append-mostly metric store.
///
/// Interior mutability (a [`RwLock`]) lets the Bifrost engine's worker
/// threads share one store by reference.
#[derive(Debug, Default)]
pub struct MetricStore {
    inner: RwLock<HashMap<Key, Vec<Sample>>>,
}

impl MetricStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MetricStore::default()
    }

    /// Records one observation.
    ///
    /// Samples for one series should arrive in non-decreasing time order
    /// (the virtual clock guarantees this); out-of-order samples are
    /// accepted but degrade window queries for their series.
    pub fn record(&self, scope: &str, metric: MetricKind, sample: Sample) {
        let mut map = self.inner.write().expect("metric store lock poisoned");
        map.entry((scope.to_string(), metric)).or_default().push(sample);
    }

    /// Convenience: records `value` at `time`.
    pub fn record_value(&self, scope: &str, metric: MetricKind, time: SimTime, value: f64) {
        self.record(scope, metric, Sample::new(time, value));
    }

    /// Number of samples in a series.
    pub fn count(&self, scope: &str, metric: MetricKind) -> usize {
        self.inner.read().expect("metric store lock poisoned").get(&(scope.to_string(), metric)).map(|v| v.len()).unwrap_or(0)
    }

    /// All scopes currently holding at least one series.
    pub fn scopes(&self) -> Vec<String> {
        let map = self.inner.read().expect("metric store lock poisoned");
        let mut scopes: Vec<String> = map.keys().map(|(s, _)| s.clone()).collect();
        scopes.sort();
        scopes.dedup();
        scopes
    }

    /// Summary of the samples with `from <= time < to`.
    pub fn summary_between(
        &self,
        scope: &str,
        metric: MetricKind,
        from: SimTime,
        to: SimTime,
    ) -> Summary {
        let map = self.inner.read().expect("metric store lock poisoned");
        let mut acc = OnlineStats::new();
        if let Some(series) = map.get(&(scope.to_string(), metric)) {
            let start = series.partition_point(|s| s.time < from);
            for sample in &series[start..] {
                if sample.time >= to {
                    break;
                }
                acc.push(sample.value);
            }
        }
        acc.summary()
    }

    /// Summary of the trailing `window` ending at `now` (exclusive of
    /// samples at exactly `now`? — inclusive: `now - window <= t <= now`).
    pub fn window_summary(
        &self,
        scope: &str,
        metric: MetricKind,
        now: SimTime,
        window: SimDuration,
    ) -> Summary {
        let from = SimTime::from_millis(now.as_millis().saturating_sub(window.as_millis()));
        self.summary_between(scope, metric, from, now + SimDuration::from_millis(1))
    }

    /// Moving average: for each step boundary in `[start, end)` emits the
    /// mean of the trailing `window`. This regenerates the "3-second moving
    /// average of monitored response times" of Figure 4.6.
    pub fn moving_average(
        &self,
        scope: &str,
        metric: MetricKind,
        start: SimTime,
        end: SimTime,
        window: SimDuration,
        step: SimDuration,
    ) -> Vec<(SimTime, f64)> {
        assert!(!step.is_zero(), "step must be positive");
        let mut out = Vec::new();
        let mut t = start;
        while t < end {
            let s = self.window_summary(scope, metric, t, window);
            if s.count > 0 {
                out.push((t, s.mean));
            }
            t += step;
        }
        out
    }

    /// Removes every series of a scope (e.g. when an experiment finishes).
    pub fn clear_scope(&self, scope: &str) {
        let mut map = self.inner.write().expect("metric store lock poisoned");
        map.retain(|(s, _), _| s != scope);
    }

    /// Total number of stored samples across all series (for capacity
    /// accounting in the engine benches).
    pub fn total_samples(&self) -> usize {
        self.inner.read().expect("metric store lock poisoned").values().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with_ramp() -> MetricStore {
        let store = MetricStore::new();
        // value(t) = t/1000 for t = 0ms, 100ms, …, 9900ms
        for i in 0..100u64 {
            store.record_value(
                "svc@1.0.0",
                MetricKind::ResponseTime,
                SimTime::from_millis(i * 100),
                i as f64,
            );
        }
        store
    }

    #[test]
    fn counts_and_scopes() {
        let store = store_with_ramp();
        assert_eq!(store.count("svc@1.0.0", MetricKind::ResponseTime), 100);
        assert_eq!(store.count("svc@1.0.0", MetricKind::ErrorRate), 0);
        assert_eq!(store.scopes(), vec!["svc@1.0.0".to_string()]);
        assert_eq!(store.total_samples(), 100);
    }

    #[test]
    fn summary_between_respects_bounds() {
        let store = store_with_ramp();
        let s = store.summary_between(
            "svc@1.0.0",
            MetricKind::ResponseTime,
            SimTime::from_millis(1_000),
            SimTime::from_millis(2_000),
        );
        // Samples at 1000..1900ms → values 10..=19.
        assert_eq!(s.count, 10);
        assert!((s.mean - 14.5).abs() < 1e-12);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 19.0);
    }

    #[test]
    fn window_summary_trailing() {
        let store = store_with_ramp();
        let s = store.window_summary(
            "svc@1.0.0",
            MetricKind::ResponseTime,
            SimTime::from_millis(9_900),
            SimDuration::from_millis(500),
        );
        // Samples at 9400..=9900 → values 94..=99.
        assert_eq!(s.count, 6);
        assert_eq!(s.max, 99.0);
    }

    #[test]
    fn empty_series_gives_empty_summary() {
        let store = MetricStore::new();
        let s = store.window_summary("x", MetricKind::ErrorRate, SimTime::from_secs(1), SimDuration::from_secs(1));
        assert_eq!(s.count, 0);
    }

    #[test]
    fn moving_average_tracks_ramp() {
        let store = store_with_ramp();
        let ma = store.moving_average(
            "svc@1.0.0",
            MetricKind::ResponseTime,
            SimTime::from_millis(3_000),
            SimTime::from_millis(6_000),
            SimDuration::from_secs(3),
            SimDuration::from_secs(1),
        );
        assert_eq!(ma.len(), 3);
        // The ramp's moving average increases monotonically.
        assert!(ma.windows(2).all(|w| w[0].1 < w[1].1));
    }

    #[test]
    fn clear_scope_removes_series() {
        let store = store_with_ramp();
        store.record_value("other", MetricKind::ErrorRate, SimTime::ZERO, 0.0);
        store.clear_scope("svc@1.0.0");
        assert_eq!(store.count("svc@1.0.0", MetricKind::ResponseTime), 0);
        assert_eq!(store.count("other", MetricKind::ErrorRate), 1);
    }

    #[test]
    fn store_is_shareable_across_threads() {
        let store = MetricStore::new();
        std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..100 {
                        store.record_value(
                            "shared",
                            MetricKind::Throughput,
                            SimTime::from_millis(worker * 1_000 + i),
                            1.0,
                        );
                    }
                });
            }
        });
        assert_eq!(store.count("shared", MetricKind::Throughput), 400);
    }
}
