//! Simulator error types.

use std::fmt;

/// Errors produced while building or running a simulated application.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A referenced service does not exist.
    UnknownService(String),
    /// A referenced version of a service does not exist.
    UnknownVersion {
        /// Service name.
        service: String,
        /// Version label that failed to resolve.
        version: String,
    },
    /// A referenced endpoint does not exist on the resolved version.
    UnknownEndpoint {
        /// Service name.
        service: String,
        /// Endpoint name that failed to resolve.
        endpoint: String,
    },
    /// The call graph recursion exceeded the depth limit — the application
    /// definition almost certainly contains a call cycle.
    CallDepthExceeded {
        /// The depth limit that was hit.
        limit: usize,
    },
    /// A routing rule is malformed (e.g. weights do not sum to one).
    BadRoute(String),
    /// The application definition is structurally invalid.
    BadApplication(String),
    /// A workload description is invalid (no entries, non-finite or
    /// non-positive rate, negative entry weight, malformed rate profile).
    BadWorkload(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownService(s) => write!(f, "unknown service: {s}"),
            SimError::UnknownVersion { service, version } => {
                write!(f, "unknown version {version} of service {service}")
            }
            SimError::UnknownEndpoint { service, endpoint } => {
                write!(f, "unknown endpoint {endpoint} on service {service}")
            }
            SimError::CallDepthExceeded { limit } => {
                write!(f, "call depth exceeded {limit}; the call graph likely contains a cycle")
            }
            SimError::BadRoute(msg) => write!(f, "bad routing rule: {msg}"),
            SimError::BadApplication(msg) => write!(f, "bad application definition: {msg}"),
            SimError::BadWorkload(msg) => write!(f, "bad workload: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(SimError::UnknownService("x".into()).to_string(), "unknown service: x");
        assert_eq!(
            SimError::UnknownVersion { service: "a".into(), version: "2".into() }.to_string(),
            "unknown version 2 of service a"
        );
        assert!(SimError::CallDepthExceeded { limit: 64 }.to_string().contains("cycle"));
    }
}
