//! Zipkin/Jaeger-style distributed traces.
//!
//! The health-assessment approach of Chapter 5 "considers changes in the
//! context of experiments by analyzing distributed traces (as produced by
//! Zipkin or Jaeger) of services interacting with each other". This module
//! reproduces the relevant span data model: every request produces a tree
//! of spans, each naming the service, deployed version, and endpoint that
//! served a hop, with timing and status.

use cex_core::simtime::{SimDuration, SimTime};
use std::fmt;

/// Identifier of one end-to-end request trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// Identifier of one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u32);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace-{:016x}", self.0)
    }
}

/// One hop of a request: a service version's endpoint serving a call.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Owning trace.
    pub trace: TraceId,
    /// This span's id, unique within the trace.
    pub span: SpanId,
    /// The calling span, `None` for the root.
    pub parent: Option<SpanId>,
    /// Service name.
    pub service: String,
    /// Deployed version label that served the hop.
    pub version: String,
    /// Endpoint name.
    pub endpoint: String,
    /// When the hop started.
    pub start: SimTime,
    /// Hop duration including downstream calls.
    pub duration: SimDuration,
    /// `false` when the hop failed.
    pub ok: bool,
    /// `true` when this hop served mirrored (dark-launch) traffic.
    pub dark: bool,
}

impl Span {
    /// `service@version` designator, the node identity used by the
    /// interaction graphs of Chapter 5.
    pub fn version_label(&self) -> String {
        format!("{}@{}", self.service, self.version)
    }

    /// `service@version/endpoint` designator.
    pub fn endpoint_label(&self) -> String {
        format!("{}@{}/{}", self.service, self.version, self.endpoint)
    }
}

/// A complete request trace: the span tree of one end-to-end request.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Trace id.
    pub id: TraceId,
    /// All spans, root first.
    pub spans: Vec<Span>,
}

impl Trace {
    /// The root span (the user-facing entry hop).
    ///
    /// # Panics
    ///
    /// Panics on an empty trace, which the collector never produces.
    pub fn root(&self) -> &Span {
        self.spans.iter().find(|s| s.parent.is_none()).expect("trace without root span")
    }

    /// End-to-end response time (root span duration).
    pub fn response_time(&self) -> SimDuration {
        self.root().duration
    }

    /// `true` when every span succeeded.
    pub fn ok(&self) -> bool {
        self.spans.iter().all(|s| s.ok)
    }

    /// Child spans of `parent`, in call order.
    pub fn children_of(&self, parent: SpanId) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.parent == Some(parent))
    }
}

/// Collects sampled traces, as the tracing backend (Zipkin/Jaeger) would.
#[derive(Debug, Clone)]
pub struct TraceCollector {
    sampling: f64,
    traces: Vec<Trace>,
    next_trace: u64,
    /// Deterministic sampling counter (every `1/sampling`-th request).
    accumulator: f64,
}

impl TraceCollector {
    /// Collects every trace.
    pub fn all() -> Self {
        TraceCollector::sampled(1.0)
    }

    /// Collects the given fraction of traces (`0.0..=1.0`), deterministically
    /// (every `1/fraction`-th request) so runs are reproducible.
    ///
    /// # Panics
    ///
    /// Panics when `fraction` is outside `0.0..=1.0`.
    pub fn sampled(fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && (0.0..=1.0).contains(&fraction),
            "sampling fraction must be in 0.0..=1.0"
        );
        TraceCollector { sampling: fraction, traces: Vec::new(), next_trace: 1, accumulator: 0.0 }
    }

    /// Reserves the next trace id and reports whether this request should
    /// be traced at all (sampling decision).
    pub fn begin_trace(&mut self) -> Option<TraceId> {
        let id = TraceId(self.next_trace);
        self.next_trace += 1;
        self.accumulator += self.sampling;
        if self.accumulator >= 1.0 {
            self.accumulator -= 1.0;
            Some(id)
        } else {
            None
        }
    }

    /// Stores a finished trace.
    ///
    /// # Panics
    ///
    /// Panics when the trace has no spans.
    pub fn record(&mut self, trace: Trace) {
        assert!(!trace.spans.is_empty(), "refusing to record an empty trace");
        self.traces.push(trace);
    }

    /// All collected traces.
    pub fn traces(&self) -> &[Trace] {
        &self.traces
    }

    /// Number of collected traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// `true` when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Removes and returns all collected traces.
    pub fn drain(&mut self) -> Vec<Trace> {
        std::mem::take(&mut self.traces)
    }
}

impl Default for TraceCollector {
    fn default() -> Self {
        TraceCollector::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u32, parent: Option<u32>, ok: bool) -> Span {
        Span {
            trace: TraceId(trace),
            span: SpanId(id),
            parent: parent.map(SpanId),
            service: "svc".into(),
            version: "1.0.0".into(),
            endpoint: "api".into(),
            start: SimTime::from_millis(0),
            duration: SimDuration::from_millis(10),
            ok,
            dark: false,
        }
    }

    #[test]
    fn trace_navigation() {
        let t = Trace {
            id: TraceId(1),
            spans: vec![
                span(1, 0, None, true),
                span(1, 1, Some(0), true),
                span(1, 2, Some(0), false),
            ],
        };
        assert_eq!(t.root().span, SpanId(0));
        assert_eq!(t.response_time().as_millis(), 10);
        assert!(!t.ok());
        assert_eq!(t.children_of(SpanId(0)).count(), 2);
        assert_eq!(t.children_of(SpanId(1)).count(), 0);
    }

    #[test]
    fn labels() {
        let s = span(1, 0, None, true);
        assert_eq!(s.version_label(), "svc@1.0.0");
        assert_eq!(s.endpoint_label(), "svc@1.0.0/api");
    }

    #[test]
    fn full_sampling_collects_everything() {
        let mut c = TraceCollector::all();
        let mut collected = 0;
        for _ in 0..10 {
            if let Some(id) = c.begin_trace() {
                c.record(Trace { id, spans: vec![span(id.0, 0, None, true)] });
                collected += 1;
            }
        }
        assert_eq!(collected, 10);
        assert_eq!(c.len(), 10);
    }

    #[test]
    fn fractional_sampling_is_proportional_and_deterministic() {
        let mut c = TraceCollector::sampled(0.25);
        let decisions: Vec<bool> = (0..100).map(|_| c.begin_trace().is_some()).collect();
        assert_eq!(decisions.iter().filter(|d| **d).count(), 25);
        let mut c2 = TraceCollector::sampled(0.25);
        let decisions2: Vec<bool> = (0..100).map(|_| c2.begin_trace().is_some()).collect();
        assert_eq!(decisions, decisions2);
    }

    #[test]
    fn zero_sampling_collects_nothing() {
        let mut c = TraceCollector::sampled(0.0);
        for _ in 0..10 {
            assert!(c.begin_trace().is_none());
        }
        assert!(c.is_empty());
    }

    #[test]
    fn trace_ids_are_unique_even_when_unsampled() {
        let mut c = TraceCollector::sampled(0.5);
        // Ids advance for every request so sampled subsets stay globally
        // identifiable.
        let a = loop {
            if let Some(id) = c.begin_trace() {
                break id;
            }
        };
        let b = loop {
            if let Some(id) = c.begin_trace() {
                break id;
            }
        };
        assert_ne!(a, b);
    }

    #[test]
    fn drain_empties_collector() {
        let mut c = TraceCollector::all();
        let id = c.begin_trace().unwrap();
        c.record(Trace { id, spans: vec![span(id.0, 0, None, true)] });
        let drained = c.drain();
        assert_eq!(drained.len(), 1);
        assert!(c.is_empty());
    }
}
