//! Zipkin/Jaeger-style distributed traces — the interned hot path.
//!
//! The health-assessment approach of Chapter 5 "considers changes in the
//! context of experiments by analyzing distributed traces (as produced by
//! Zipkin or Jaeger) of services interacting with each other". This module
//! reproduces the relevant span data model: every request produces a tree
//! of spans, each naming the service, deployed version, and endpoint that
//! served a hop, with timing and status.
//!
//! # Hot-path architecture
//!
//! Tracing shares the request loop with the telemetry store, so it gets
//! the same treatment PR 3 gave metric scopes:
//!
//! * **Interned span identity.** A [`Span`] carries the dense
//!   `(ServiceId, VersionId, EndpointId)` ids the application model
//!   already assigns — not three `String`s — making spans `Copy` and span
//!   recording allocation-free. Names are resolved at analysis time
//!   through a [`SpanBook`], which also interns endpoint *names* through
//!   the shared [`cex_core::intern`] interner so the same logical endpoint
//!   is comparable across deployed versions (the key step when diffing a
//!   canary edge against its baseline counterpart).
//! * **Bounded retention.** The [`TraceCollector`] keeps a configurable
//!   ring of recent traces ([`TraceCollector::retain`]); when full, the
//!   oldest trace is evicted and counted in [`TraceCollector::dropped`],
//!   so unbounded runs cannot hoard memory.
//! * **Streaming per-edge aggregates.** Every recorded trace folds into
//!   per-edge [`EdgeTotals`] (calls, errors, retries, sheds, fallbacks,
//!   latency moments) that survive eviction — long-run interaction
//!   statistics stay exact even after the raw traces are gone.
//!
//! Sampling stays deterministic (an accumulator collects every
//! `1/fraction`-th request) and trace ids advance for every request, so
//! sampled subsets are globally identifiable and byte-stable across
//! reruns.
//!
//! # Span tree invariants
//!
//! Traces uphold, and property tests in `exec.rs` enforce:
//!
//! * spans are stored in **pre-order**: the root is first and every parent
//!   precedes its children;
//! * `root().duration` equals the request's end-to-end response time;
//! * a synchronous child's `[start, start + duration]` interval nests
//!   inside its parent's. Two deliberate exceptions, both visible in the
//!   span itself: *dark* (mirrored) spans and spans under a
//!   [`SpanStatus::TimedOut`] call may end after their caller, exactly
//!   like fire-and-forget mirrors and abandoned RPCs in a real tracing
//!   backend.

use crate::app::{Application, EndpointId, ServiceId, VersionId};
use cex_core::intern::{Interner, Sym};
use cex_core::metrics::OnlineStats;
use cex_core::simtime::{SimDuration, SimTime};
use cex_core::sketch::QuantileSketch;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Identifier of one end-to-end request trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// Identifier of one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u32);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace-{:016x}", self.0)
    }
}

/// Why a span ended the way it did — the resilience-aware replacement for
/// a bare `ok: bool`. A trace of a degraded request shows *why* it
/// degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanStatus {
    /// The hop succeeded.
    Ok,
    /// The hop failed (modeled error, fault window, or a failed child it
    /// depended on).
    Failed,
    /// The caller abandoned this attempt at its deadline; the recorded
    /// duration is the caller-observed wait (the callee's own subtree may
    /// run longer — see the module docs on nesting).
    TimedOut,
    /// The circuit breaker shed the call before it reached the callee
    /// (zero-duration event span).
    Shed,
    /// A fallback response was served in place of the callee — degraded
    /// but successful.
    Fallback,
}

impl SpanStatus {
    /// `true` when the caller got a usable response (including degraded
    /// fallback responses).
    pub fn is_ok(self) -> bool {
        matches!(self, SpanStatus::Ok | SpanStatus::Fallback)
    }

    /// `true` for the failure statuses (failed, timed out, shed).
    pub fn is_error(self) -> bool {
        !self.is_ok()
    }

    /// Stable lowercase name, used by reports and the journal.
    pub fn name(self) -> &'static str {
        match self {
            SpanStatus::Ok => "ok",
            SpanStatus::Failed => "failed",
            SpanStatus::TimedOut => "timed_out",
            SpanStatus::Shed => "shed",
            SpanStatus::Fallback => "fallback",
        }
    }
}

/// One hop of a request: a service version's endpoint serving a call.
///
/// Identity is carried as the dense application ids and resolved to names
/// through a [`SpanBook`]; the span itself is `Copy` and allocation-free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Owning trace.
    pub trace: TraceId,
    /// This span's id, unique within the trace and equal to its pre-order
    /// position in [`Trace::spans`].
    pub span: SpanId,
    /// The calling span, `None` for the root.
    pub parent: Option<SpanId>,
    /// Service that served the hop.
    pub service: ServiceId,
    /// Deployed version that served the hop.
    pub version: VersionId,
    /// Endpoint that served the hop.
    pub endpoint: EndpointId,
    /// When the hop started.
    pub start: SimTime,
    /// Hop duration including downstream calls (for [`SpanStatus::TimedOut`]
    /// the caller-observed wait).
    pub duration: SimDuration,
    /// Outcome of the hop.
    pub status: SpanStatus,
    /// Zero-based attempt number: `0` for the first attempt, `n > 0` for
    /// the `n`-th retry of the same logical call.
    pub attempt: u8,
    /// `true` when this hop served mirrored (dark-launch) traffic.
    pub dark: bool,
}

impl Span {
    /// End of the span's interval.
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }
}

/// A complete request trace: the span tree of one end-to-end request.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Trace id.
    pub id: TraceId,
    /// All spans, pre-order: root first, parents before children.
    pub spans: Vec<Span>,
    /// How many statistically-similar traces this one stands for: `1`
    /// normally; `k` when tail-based sampling kept this healthy trace as
    /// the representative of its 1-in-`k` downsampling stratum. Health
    /// accumulation folds the trace `weight` times (at `O(1)` cost) so
    /// downsampling does not bias rates or quantile mass.
    pub weight: u32,
}

impl Trace {
    /// A trace standing for itself alone (`weight == 1`).
    pub fn new(id: TraceId, spans: Vec<Span>) -> Trace {
        Trace { id, spans, weight: 1 }
    }

    /// The root span (the user-facing entry hop).
    ///
    /// # Panics
    ///
    /// Panics on an empty trace, which the collector never produces.
    pub fn root(&self) -> &Span {
        self.spans.iter().find(|s| s.parent.is_none()).expect("trace without root span")
    }

    /// End-to-end response time (root span duration).
    pub fn response_time(&self) -> SimDuration {
        self.root().duration
    }

    /// `true` when the request succeeded end to end (root span status).
    /// Individual child spans may still record failed attempts that a
    /// retry or fallback absorbed.
    pub fn ok(&self) -> bool {
        self.root().status.is_ok()
    }

    /// Looks up a span by id. Span ids equal pre-order positions, so this
    /// is an index in the common case.
    pub fn get(&self, id: SpanId) -> Option<&Span> {
        match self.spans.get(id.0 as usize) {
            Some(s) if s.span == id => Some(s),
            _ => self.spans.iter().find(|s| s.span == id),
        }
    }

    /// Child spans of `parent`, in call order.
    pub fn children_of(&self, parent: SpanId) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.parent == Some(parent))
    }
}

/// Resolves interned span identity back to names — the analysis-time
/// counterpart of the `Copy` ids a [`Span`] carries.
///
/// Endpoint *names* are additionally interned through the shared
/// [`cex_core::intern::Interner`], collapsing the per-version
/// [`EndpointId`]s of the same logical endpoint (`backend@1.0.0/api` and
/// `backend@2.0.0/api`) onto one [`Sym`]; canary-vs-baseline edge matching
/// keys on that symbol.
#[derive(Debug)]
pub struct SpanBook {
    services: Vec<Arc<str>>,
    version_service: Vec<ServiceId>,
    version_labels: Vec<Arc<str>>,
    endpoint_syms: Vec<Sym>,
    interner: Interner,
}

impl SpanBook {
    /// Builds the book for an application's current deployment set.
    /// Deterministic: ids and symbols depend only on deployment order.
    pub fn from_app(app: &Application) -> SpanBook {
        let interner = Interner::new();
        let services: Vec<Arc<str>> = app.services().map(|(_, name)| Arc::from(name)).collect();
        let mut version_service = Vec::new();
        let mut version_labels = Vec::new();
        let mut endpoint_syms = Vec::new();
        for (vid, version) in app.versions() {
            version_service.push(version.service);
            version_labels.push(Arc::from(app.version_label(vid).as_str()));
            for &eid in &version.endpoints {
                let name = &app.endpoint(eid).name;
                debug_assert_eq!(eid.0, endpoint_syms.len(), "endpoint ids must be dense");
                endpoint_syms.push(interner.intern(name));
            }
        }
        SpanBook { services, version_service, version_labels, endpoint_syms, interner }
    }

    /// Service name behind an id.
    pub fn service_name(&self, id: ServiceId) -> &str {
        &self.services[id.0]
    }

    /// `service@version` designator, the node identity used by the
    /// interaction graphs of Chapter 5.
    pub fn version_label(&self, id: VersionId) -> &str {
        &self.version_labels[id.0]
    }

    /// The service a deployed version belongs to.
    pub fn service_of(&self, id: VersionId) -> ServiceId {
        self.version_service[id.0]
    }

    /// Endpoint name behind an id.
    pub fn endpoint_name(&self, id: EndpointId) -> Arc<str> {
        self.interner.name(self.endpoint_syms[id.0])
    }

    /// The shared interner symbol of an endpoint's *name* — equal across
    /// versions serving the same logical endpoint.
    pub fn endpoint_sym(&self, id: EndpointId) -> Sym {
        self.endpoint_syms[id.0]
    }

    /// The bare version tag (the part after `@` in
    /// [`SpanBook::version_label`]), e.g. `1.0.0`.
    pub fn version_tag(&self, id: VersionId) -> &str {
        let service = self.service_name(self.version_service[id.0]);
        &self.version_labels[id.0][service.len() + 1..]
    }

    /// The name behind a shared endpoint symbol previously returned by
    /// [`SpanBook::endpoint_sym`].
    pub fn sym_name(&self, sym: Sym) -> Arc<str> {
        self.interner.name(sym)
    }

    /// `service@version/endpoint` designator for a span.
    pub fn endpoint_label(&self, span: &Span) -> String {
        format!("{}/{}", self.version_label(span.version), self.endpoint_name(span.endpoint))
    }

    /// Number of versions the book covers (used to detect staleness after
    /// deploys).
    pub fn version_count(&self) -> usize {
        self.version_labels.len()
    }
}

/// One directed interaction edge: `caller version → callee endpoint`.
/// `caller == None` marks user-facing entry calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeKey {
    /// Calling version (`None` for the entry edge).
    pub caller: Option<VersionId>,
    /// Version that served the call.
    pub callee: VersionId,
    /// Endpoint that served the call (callee-local id).
    pub endpoint: EndpointId,
}

/// Streaming aggregates for one edge — exact totals that survive trace
/// eviction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeTotals {
    /// Calls observed (every attempt counts).
    pub calls: u64,
    /// Calls with an error status (failed, timed out, shed).
    pub errors: u64,
    /// Retry attempts (spans with `attempt > 0`).
    pub retries: u64,
    /// Attempts abandoned at the caller's deadline.
    pub timeouts: u64,
    /// Calls shed by an open circuit breaker.
    pub sheds: u64,
    /// Fallback responses served.
    pub fallbacks: u64,
    /// Calls serving mirrored (dark-launch) traffic.
    pub dark: u64,
    /// Latency moments (ms) over all attempts.
    pub latency: OnlineStats,
}

impl EdgeTotals {
    fn fold(&mut self, span: &Span) {
        self.calls += 1;
        if span.status.is_error() {
            self.errors += 1;
        }
        if span.attempt > 0 {
            self.retries += 1;
        }
        match span.status {
            SpanStatus::TimedOut => self.timeouts += 1,
            SpanStatus::Shed => self.sheds += 1,
            SpanStatus::Fallback => self.fallbacks += 1,
            _ => {}
        }
        if span.dark {
            self.dark += 1;
        }
        self.latency.push(span.duration.as_millis() as f64);
    }
}

/// Default number of retained traces before the ring starts evicting.
pub const DEFAULT_TRACE_RETENTION: usize = 65_536;

/// Tail-based sampling policy for the [`TraceCollector`] (off by
/// default): traces whose spans carry an error status — failed, timed
/// out, or shed — and traces slower than a sketch-derived root-latency
/// threshold are always retained, while healthy traces keep only a
/// deterministic 1-in-`k` representative carrying [`Trace::weight`]` = k`.
/// This bounds retained-trace memory by the *anomaly* rate instead of the
/// traffic rate — the property that lets the pipeline hold 10⁷-trace runs
/// in a few megabytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailSamplingConfig {
    /// Keep one in this many healthy traces (`k ≥ 1`); the kept one
    /// carries weight `k` so aggregate folds stay unbiased.
    pub healthy_keep_one_in: u32,
    /// Root-latency quantile (`0.0..=1.0`) above which a trace counts as
    /// *slow* and is always retained, measured by a streaming
    /// [`QuantileSketch`] over every offered root latency.
    pub slow_quantile: f64,
    /// Offered traces the threshold sketch must absorb before the slow
    /// rule activates (a cold sketch would flag everything or nothing).
    /// Until then only the error rule and the healthy downsampler run.
    pub warmup: u64,
}

impl Default for TailSamplingConfig {
    fn default() -> Self {
        TailSamplingConfig { healthy_keep_one_in: 10, slow_quantile: 0.95, warmup: 512 }
    }
}

impl TailSamplingConfig {
    fn validate(&self) {
        assert!(self.healthy_keep_one_in >= 1, "healthy_keep_one_in must be at least 1");
        assert!(
            self.slow_quantile.is_finite() && (0.0..=1.0).contains(&self.slow_quantile),
            "slow_quantile must be in 0.0..=1.0"
        );
    }
}

/// Sampling accounting of a [`TraceCollector`], monotone counters that
/// survive ring eviction — what the journal's `health` events and the
/// report render surface so sampling bias stays visible in replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SamplingStats {
    /// Traces ever offered to the collector (folded into edge totals).
    pub recorded: u64,
    /// Retained traces evicted by the retention ring.
    pub evicted: u64,
    /// Traces always retained by the tail rule (error status or slow).
    pub tail_kept: u64,
    /// Healthy traces retained as 1-in-`k` representatives.
    pub downsampled_kept: u64,
    /// Healthy traces dropped by the downsampler (never retained).
    pub healthy_dropped: u64,
}

/// Streaming tail-sampling state: the root-latency threshold sketch and
/// the deterministic healthy-trace cadence.
#[derive(Debug, Clone)]
struct TailState {
    config: TailSamplingConfig,
    /// Root latencies (ms) of every offered trace; the slow threshold is
    /// a quantile of this sketch.
    roots: QuantileSketch,
    /// Healthy traces seen; every `healthy_keep_one_in`-th is kept.
    healthy_seen: u64,
    tail_kept: u64,
    downsampled_kept: u64,
    healthy_dropped: u64,
}

impl TailState {
    fn new(config: TailSamplingConfig) -> TailState {
        config.validate();
        TailState {
            config,
            roots: QuantileSketch::for_latency(),
            healthy_seen: 0,
            tail_kept: 0,
            downsampled_kept: 0,
            healthy_dropped: 0,
        }
    }

    /// Decides one offered trace: `Some(weight)` retains it, `None`
    /// drops it. Deterministic — a pure function of the offer sequence.
    fn decide(&mut self, trace: &Trace) -> Option<u32> {
        let root_ms = trace.response_time().as_millis() as f64;
        // Threshold from the state *before* this trace, so the decision
        // never depends on evaluation order subtleties. The quantile is
        // inflated by the sketch's relative-error band: a value within
        // sketch error of the quantile is indistinguishable from it (on a
        // constant distribution *every* value sits there) and must not
        // flag as slow.
        let slow = self.roots.count() >= self.config.warmup
            && self
                .roots
                .quantile(self.config.slow_quantile)
                .is_some_and(|q| root_ms > q * (1.0 + 2.0 * self.roots.relative_error()));
        self.roots.push(root_ms);
        let erroneous = trace.spans.iter().any(|s| s.status.is_error());
        if erroneous || slow {
            self.tail_kept += 1;
            return Some(1);
        }
        let keep = self.healthy_seen.is_multiple_of(self.config.healthy_keep_one_in as u64);
        self.healthy_seen += 1;
        if keep {
            self.downsampled_kept += 1;
            Some(self.config.healthy_keep_one_in)
        } else {
            self.healthy_dropped += 1;
            None
        }
    }
}

/// Collects sampled traces, as the tracing backend (Zipkin/Jaeger) would,
/// with bounded retention and streaming per-edge aggregates (see module
/// docs).
#[derive(Debug, Clone)]
pub struct TraceCollector {
    sampling: f64,
    capacity: usize,
    traces: VecDeque<Trace>,
    next_trace: u64,
    /// Deterministic sampling counter (every `1/sampling`-th request).
    accumulator: f64,
    dropped: u64,
    recorded: u64,
    edges: BTreeMap<EdgeKey, EdgeTotals>,
    /// Tail-based sampling policy and state; `None` retains every
    /// recorded trace (the pre-tail behaviour).
    tail: Option<TailState>,
}

impl TraceCollector {
    /// Collects every trace.
    pub fn all() -> Self {
        TraceCollector::sampled(1.0)
    }

    /// Collects the given fraction of traces (`0.0..=1.0`), deterministically
    /// (every `1/fraction`-th request) so runs are reproducible.
    ///
    /// # Panics
    ///
    /// Panics when `fraction` is outside `0.0..=1.0`.
    pub fn sampled(fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && (0.0..=1.0).contains(&fraction),
            "sampling fraction must be in 0.0..=1.0"
        );
        TraceCollector {
            sampling: fraction,
            capacity: DEFAULT_TRACE_RETENTION,
            traces: VecDeque::new(),
            next_trace: 1,
            accumulator: 0.0,
            dropped: 0,
            recorded: 0,
            edges: BTreeMap::new(),
            tail: None,
        }
    }

    /// Sets the retention budget: at most `capacity` traces are kept, the
    /// oldest evicted first (builder style).
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn retain(mut self, capacity: usize) -> Self {
        self.set_capacity(capacity);
        self
    }

    /// Sets the retention budget in place; excess traces are evicted
    /// immediately (oldest first) and counted as dropped.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn set_capacity(&mut self, capacity: usize) {
        assert!(capacity > 0, "trace retention must be positive");
        self.capacity = capacity;
        while self.traces.len() > self.capacity {
            self.traces.pop_front();
            self.dropped += 1;
        }
    }

    /// The active retention budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Changes the sampling fraction **without** resetting trace ids or
    /// collected state, so ids stay globally unique across sampling
    /// changes.
    ///
    /// # Panics
    ///
    /// Panics when `fraction` is outside `0.0..=1.0`.
    pub fn set_sampling(&mut self, fraction: f64) {
        assert!(
            fraction.is_finite() && (0.0..=1.0).contains(&fraction),
            "sampling fraction must be in 0.0..=1.0"
        );
        self.sampling = fraction;
        self.accumulator = 0.0;
    }

    /// The active sampling fraction.
    pub fn sampling(&self) -> f64 {
        self.sampling
    }

    /// Enables (or, with `None`, disables) tail-based sampling. Enabling
    /// resets the tail state — threshold sketch and counters — so the
    /// policy starts from a clean, deterministic slate; recorded traces,
    /// aggregates and the trace-id sequence are untouched.
    pub fn set_tail_sampling(&mut self, config: Option<TailSamplingConfig>) {
        self.tail = config.map(TailState::new);
    }

    /// The active tail-sampling policy, `None` when every recorded trace
    /// is retained.
    pub fn tail_sampling(&self) -> Option<&TailSamplingConfig> {
        self.tail.as_ref().map(|t| &t.config)
    }

    /// The sketch-derived root-latency threshold (ms) above which a trace
    /// currently counts as slow (quantile inflated by the sketch's
    /// relative-error band): `None` while tail sampling is off or the
    /// threshold sketch is still warming up.
    pub fn slow_threshold_ms(&self) -> Option<f64> {
        let tail = self.tail.as_ref()?;
        if tail.roots.count() < tail.config.warmup {
            return None;
        }
        let q = tail.roots.quantile(tail.config.slow_quantile)?;
        Some(q * (1.0 + 2.0 * tail.roots.relative_error()))
    }

    /// Monotone sampling accounting (see [`SamplingStats`]); counters
    /// survive both downsampling and ring eviction.
    pub fn sampling_stats(&self) -> SamplingStats {
        let (tail_kept, downsampled_kept, healthy_dropped) = self
            .tail
            .as_ref()
            .map_or((0, 0, 0), |t| (t.tail_kept, t.downsampled_kept, t.healthy_dropped));
        SamplingStats {
            recorded: self.recorded,
            evicted: self.dropped,
            tail_kept,
            downsampled_kept,
            healthy_dropped,
        }
    }

    /// Bucket collapses suffered by the tail-sampling threshold sketch —
    /// how often it hit its state bound and coarsened (deterministic;
    /// registry counter `trace.tail.sketch_collapses`). Zero while tail
    /// sampling is off.
    pub fn tail_sketch_collapses(&self) -> u64 {
        self.tail.as_ref().map_or(0, |t| t.roots.collapsed())
    }

    /// Estimated resident bytes of retained trace state: the span storage
    /// of every ring entry plus the tail-sampling sketch. The scale
    /// bench's peak-memory accounting reads this.
    pub fn state_bytes(&self) -> usize {
        let spans: usize = self.traces.iter().map(|t| t.spans.len()).sum();
        let traces = self.traces.len() * std::mem::size_of::<Trace>();
        let sketch = self.tail.as_ref().map_or(0, |t| t.roots.state_bytes());
        spans * std::mem::size_of::<Span>() + traces + sketch
    }

    /// Reserves the next trace id and reports whether this request should
    /// be traced at all (sampling decision).
    pub fn begin_trace(&mut self) -> Option<TraceId> {
        let id = TraceId(self.next_trace);
        self.next_trace += 1;
        self.accumulator += self.sampling;
        if self.accumulator >= 1.0 {
            self.accumulator -= 1.0;
            Some(id)
        } else {
            None
        }
    }

    /// Stores a finished trace, folding it into the streaming per-edge
    /// aggregates and evicting the oldest retained trace when the ring is
    /// full. With tail-based sampling active
    /// ([`TraceCollector::set_tail_sampling`]), erroneous and slow traces
    /// are always retained while healthy ones keep only a deterministic
    /// 1-in-`k` representative (carrying [`Trace::weight`]` = k`); traces
    /// the downsampler drops still fold into the per-edge aggregates and
    /// are counted in [`TraceCollector::sampling_stats`].
    ///
    /// # Panics
    ///
    /// Panics when the trace has no spans.
    pub fn record(&mut self, mut trace: Trace) {
        assert!(!trace.spans.is_empty(), "refusing to record an empty trace");
        for span in &trace.spans {
            let caller = span.parent.and_then(|p| trace.get(p)).map(|p| p.version);
            let key = EdgeKey { caller, callee: span.version, endpoint: span.endpoint };
            self.edges.entry(key).or_default().fold(span);
        }
        self.recorded += 1;
        if let Some(tail) = &mut self.tail {
            match tail.decide(&trace) {
                Some(weight) => trace.weight = weight,
                None => return,
            }
        }
        if self.traces.len() == self.capacity {
            self.traces.pop_front();
            self.dropped += 1;
        }
        self.traces.push_back(trace);
    }

    /// The retained traces, oldest first.
    pub fn traces(&self) -> impl Iterator<Item = &Trace> {
        self.traces.iter()
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// `true` when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Traces evicted by the retention budget so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Traces ever recorded (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// The streaming per-edge aggregates over every trace ever recorded —
    /// exact regardless of eviction, deterministically ordered.
    pub fn edge_totals(&self) -> &BTreeMap<EdgeKey, EdgeTotals> {
        &self.edges
    }

    /// Removes and returns all retained traces, oldest first. Streaming
    /// aggregates and counters are unaffected.
    pub fn drain(&mut self) -> Vec<Trace> {
        std::mem::take(&mut self.traces).into()
    }

    /// Scratch-buffer variant of [`TraceCollector::drain`]: clears `out`
    /// and moves all retained traces into it, oldest first, so steady-state
    /// drive loops (the Bifrost engine tick) reuse one allocation instead
    /// of constructing a fresh `Vec` per tick.
    pub fn drain_into(&mut self, out: &mut Vec<Trace>) {
        out.clear();
        out.extend(self.traces.drain(..));
    }
}

impl Default for TraceCollector {
    fn default() -> Self {
        TraceCollector::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u32, parent: Option<u32>, status: SpanStatus) -> Span {
        Span {
            trace: TraceId(trace),
            span: SpanId(id),
            parent: parent.map(SpanId),
            service: ServiceId(0),
            version: VersionId(0),
            endpoint: EndpointId(0),
            start: SimTime::from_millis(0),
            duration: SimDuration::from_millis(10),
            status,
            attempt: 0,
            dark: false,
        }
    }

    fn one_span_trace(id: TraceId) -> Trace {
        Trace::new(id, vec![span(id.0, 0, None, SpanStatus::Ok)])
    }

    #[test]
    fn trace_navigation() {
        let t = Trace::new(
            TraceId(1),
            vec![
                span(1, 0, None, SpanStatus::Ok),
                span(1, 1, Some(0), SpanStatus::Ok),
                span(1, 2, Some(0), SpanStatus::Failed),
            ],
        );
        assert_eq!(t.root().span, SpanId(0));
        assert_eq!(t.response_time().as_millis(), 10);
        assert!(t.ok(), "request-level success is the root status");
        assert_eq!(t.get(SpanId(2)).unwrap().status, SpanStatus::Failed);
        assert_eq!(t.children_of(SpanId(0)).count(), 2);
        assert_eq!(t.children_of(SpanId(1)).count(), 0);
    }

    #[test]
    fn failed_root_fails_the_trace() {
        let mut t = one_span_trace(TraceId(3));
        t.spans[0].status = SpanStatus::Failed;
        assert!(!t.ok());
        t.spans[0].status = SpanStatus::Fallback;
        assert!(t.ok(), "fallback responses are degraded but successful");
    }

    #[test]
    fn status_classification() {
        assert!(SpanStatus::Ok.is_ok());
        assert!(SpanStatus::Fallback.is_ok());
        for bad in [SpanStatus::Failed, SpanStatus::TimedOut, SpanStatus::Shed] {
            assert!(bad.is_error(), "{}", bad.name());
        }
    }

    #[test]
    fn book_resolves_interned_identity() {
        use crate::app::{Application, CallDef, EndpointDef, VersionSpec};
        use crate::latency::LatencyModel;
        let mut b = Application::builder();
        b.version(
            VersionSpec::new("fe", "1.0.0").endpoint(
                EndpointDef::new("home", LatencyModel::Constant { ms: 1.0 })
                    .call(CallDef::always("be", "api")),
            ),
        );
        b.version(
            VersionSpec::new("be", "1.0.0")
                .endpoint(EndpointDef::new("api", LatencyModel::Constant { ms: 1.0 })),
        );
        let mut app = b.build().expect("app builds");
        let v2 = app
            .deploy(
                VersionSpec::new("be", "2.0.0")
                    .endpoint(EndpointDef::new("api", LatencyModel::Constant { ms: 1.0 })),
            )
            .expect("candidate deploys");
        let book = SpanBook::from_app(&app);
        let v1 = app.version_id("be", "1.0.0").unwrap();
        assert_eq!(book.version_label(v1), "be@1.0.0");
        assert_eq!(book.version_label(v2), "be@2.0.0");
        assert_eq!(book.service_name(book.service_of(v2)), "be");
        // The same logical endpoint name maps to one shared symbol across
        // versions, while the per-version endpoint ids differ.
        let e1 = app.endpoint_of(v1, "api").unwrap();
        let e2 = app.endpoint_of(v2, "api").unwrap();
        assert_ne!(e1, e2);
        assert_eq!(book.endpoint_sym(e1), book.endpoint_sym(e2));
        assert_eq!(&*book.endpoint_name(e2), "api");
    }

    #[test]
    fn full_sampling_collects_everything() {
        let mut c = TraceCollector::all();
        let mut collected = 0;
        for _ in 0..10 {
            if let Some(id) = c.begin_trace() {
                c.record(one_span_trace(id));
                collected += 1;
            }
        }
        assert_eq!(collected, 10);
        assert_eq!(c.len(), 10);
    }

    #[test]
    fn fractional_sampling_is_proportional_and_deterministic() {
        let mut c = TraceCollector::sampled(0.25);
        let decisions: Vec<bool> = (0..100).map(|_| c.begin_trace().is_some()).collect();
        assert_eq!(decisions.iter().filter(|d| **d).count(), 25);
        let mut c2 = TraceCollector::sampled(0.25);
        let decisions2: Vec<bool> = (0..100).map(|_| c2.begin_trace().is_some()).collect();
        assert_eq!(decisions, decisions2);
    }

    #[test]
    fn fractional_sampling_collects_floor_n_f_within_one() {
        for &fraction in &[0.01, 0.1, 0.25, 0.333, 0.5, 0.9, 1.0] {
            for &n in &[10u64, 100, 997, 10_000] {
                let mut c = TraceCollector::sampled(fraction);
                let collected = (0..n).filter(|_| c.begin_trace().is_some()).count() as i64;
                let expected = (n as f64 * fraction).floor() as i64;
                assert!(
                    (collected - expected).abs() <= 1,
                    "sampling {fraction} over {n}: collected {collected}, expected {expected}±1"
                );
            }
        }
    }

    #[test]
    fn zero_sampling_collects_nothing() {
        let mut c = TraceCollector::sampled(0.0);
        for _ in 0..10 {
            assert!(c.begin_trace().is_none());
        }
        assert!(c.is_empty());
    }

    #[test]
    fn trace_ids_are_unique_even_when_unsampled() {
        let mut c = TraceCollector::sampled(0.5);
        // Ids advance for every request so sampled subsets stay globally
        // identifiable.
        let a = loop {
            if let Some(id) = c.begin_trace() {
                break id;
            }
        };
        let b = loop {
            if let Some(id) = c.begin_trace() {
                break id;
            }
        };
        assert_ne!(a, b);
    }

    #[test]
    fn trace_ids_are_stable_across_reruns() {
        let run = || -> Vec<u64> {
            let mut c = TraceCollector::sampled(0.3);
            (0..50).filter_map(|_| c.begin_trace()).map(|id| id.0).collect()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn set_sampling_preserves_trace_id_continuity() {
        let mut c = TraceCollector::sampled(1.0);
        let first = c.begin_trace().unwrap();
        c.set_sampling(0.0);
        assert!(c.begin_trace().is_none());
        c.set_sampling(1.0);
        let third = c.begin_trace().unwrap();
        // The unsampled request still consumed an id.
        assert_eq!(third.0, first.0 + 2);
    }

    #[test]
    fn retention_ring_bounds_storage_and_counts_drops() {
        let mut c = TraceCollector::all().retain(8);
        for _ in 0..20 {
            let id = c.begin_trace().unwrap();
            c.record(one_span_trace(id));
        }
        assert_eq!(c.len(), 8);
        assert_eq!(c.dropped(), 12);
        assert_eq!(c.recorded(), 20);
        // Oldest evicted first: the ring holds the 8 most recent ids.
        let ids: Vec<u64> = c.traces().map(|t| t.id.0).collect();
        assert_eq!(ids, (13..=20).collect::<Vec<u64>>());
        // Streaming aggregates cover everything ever recorded.
        let totals = c.edge_totals().values().next().unwrap();
        assert_eq!(totals.calls, 20);
    }

    #[test]
    fn shrinking_capacity_evicts_immediately() {
        let mut c = TraceCollector::all();
        for _ in 0..10 {
            let id = c.begin_trace().unwrap();
            c.record(one_span_trace(id));
        }
        c.set_capacity(4);
        assert_eq!(c.len(), 4);
        assert_eq!(c.dropped(), 6);
    }

    #[test]
    fn edge_totals_classify_statuses_and_callers() {
        let mut c = TraceCollector::all();
        let id = c.begin_trace().unwrap();
        let mut retry = span(id.0, 1, Some(0), SpanStatus::TimedOut);
        retry.version = VersionId(1);
        retry.attempt = 1;
        let mut shed = span(id.0, 2, Some(0), SpanStatus::Shed);
        shed.version = VersionId(1);
        let mut fallback = span(id.0, 3, Some(0), SpanStatus::Fallback);
        fallback.version = VersionId(1);
        c.record(Trace::new(id, vec![span(id.0, 0, None, SpanStatus::Ok), retry, shed, fallback]));

        assert_eq!(c.edge_totals().len(), 2, "entry edge + callee edge");
        let entry = c.edge_totals().get(&EdgeKey {
            caller: None,
            callee: VersionId(0),
            endpoint: EndpointId(0),
        });
        assert_eq!(entry.unwrap().calls, 1);
        let callee = c
            .edge_totals()
            .get(&EdgeKey {
                caller: Some(VersionId(0)),
                callee: VersionId(1),
                endpoint: EndpointId(0),
            })
            .unwrap();
        assert_eq!(callee.calls, 3);
        assert_eq!(callee.errors, 2, "timeout + shed are errors, fallback is not");
        assert_eq!(callee.retries, 1);
        assert_eq!(callee.timeouts, 1);
        assert_eq!(callee.sheds, 1);
        assert_eq!(callee.fallbacks, 1);
    }

    #[test]
    fn drain_empties_collector_but_keeps_aggregates() {
        let mut c = TraceCollector::all();
        let id = c.begin_trace().unwrap();
        c.record(one_span_trace(id));
        let drained = c.drain();
        assert_eq!(drained.len(), 1);
        assert!(c.is_empty());
        assert_eq!(c.recorded(), 1);
        assert_eq!(c.edge_totals().len(), 1);
    }

    fn trace_with(id: TraceId, status: SpanStatus, duration_ms: u64) -> Trace {
        let mut s = span(id.0, 0, None, status);
        s.duration = SimDuration::from_millis(duration_ms);
        Trace::new(id, vec![s])
    }

    #[test]
    fn tail_sampling_keeps_errors_and_downsamples_healthy() {
        let mut c = TraceCollector::all();
        // Disable the slow rule (huge warmup) to isolate the other two.
        c.set_tail_sampling(Some(TailSamplingConfig {
            healthy_keep_one_in: 4,
            slow_quantile: 0.95,
            warmup: u64::MAX,
        }));
        for i in 0..8u64 {
            let id = c.begin_trace().unwrap();
            c.record(trace_with(id, SpanStatus::Ok, 10 + i));
        }
        for _ in 0..3 {
            let id = c.begin_trace().unwrap();
            c.record(trace_with(id, SpanStatus::Failed, 10));
        }
        // 1-in-4 of the 8 healthy (ids 1 and 5, weight 4) + all 3 failed.
        let kept: Vec<(u64, u32)> = c.traces().map(|t| (t.id.0, t.weight)).collect();
        assert_eq!(kept, vec![(1, 4), (5, 4), (9, 1), (10, 1), (11, 1)]);
        let stats = c.sampling_stats();
        assert_eq!(stats.recorded, 11);
        assert_eq!(stats.tail_kept, 3);
        assert_eq!(stats.downsampled_kept, 2);
        assert_eq!(stats.healthy_dropped, 6);
        assert_eq!(stats.evicted, 0);
        // Dropped healthy traces still fold into the exact edge totals.
        let totals = c.edge_totals().values().next().unwrap();
        assert_eq!(totals.calls, 11);
    }

    #[test]
    fn tail_sampling_flags_slow_traces_after_warmup() {
        let mut c = TraceCollector::all();
        c.set_tail_sampling(Some(TailSamplingConfig {
            healthy_keep_one_in: u32::MAX,
            slow_quantile: 0.9,
            warmup: 32,
        }));
        // Before warmup the first trace is the only healthy keep; after
        // warmup a 100× outlier must be tail-kept despite Ok status.
        for _ in 0..40 {
            let id = c.begin_trace().unwrap();
            c.record(trace_with(id, SpanStatus::Ok, 10));
        }
        assert!(c.slow_threshold_ms().is_some_and(|t| t < 20.0));
        let id = c.begin_trace().unwrap();
        c.record(trace_with(id, SpanStatus::Ok, 1_000));
        let stats = c.sampling_stats();
        assert_eq!(stats.tail_kept, 1, "the slow outlier is always retained");
        assert_eq!(c.traces().last().unwrap().weight, 1);
    }

    #[test]
    fn tail_sampling_is_deterministic() {
        let run = || {
            let mut c = TraceCollector::all();
            c.set_tail_sampling(Some(TailSamplingConfig {
                healthy_keep_one_in: 3,
                slow_quantile: 0.9,
                warmup: 16,
            }));
            for i in 0..200u64 {
                let id = c.begin_trace().unwrap();
                let status = if i % 17 == 0 { SpanStatus::Failed } else { SpanStatus::Ok };
                c.record(trace_with(id, status, 5 + (i * 7) % 90));
            }
            let kept: Vec<(u64, u32)> = c.traces().map(|t| (t.id.0, t.weight)).collect();
            (kept, c.sampling_stats(), c.slow_threshold_ms())
        };
        assert_eq!(run(), run(), "same offers, same decisions, same counters");
    }

    #[test]
    fn disabling_tail_sampling_restores_keep_everything() {
        let mut c = TraceCollector::all();
        c.set_tail_sampling(Some(TailSamplingConfig::default()));
        assert!(c.tail_sampling().is_some());
        c.set_tail_sampling(None);
        for _ in 0..5 {
            let id = c.begin_trace().unwrap();
            c.record(trace_with(id, SpanStatus::Ok, 10));
        }
        assert_eq!(c.len(), 5);
        assert_eq!(c.sampling_stats().tail_kept, 0);
        assert!(c.traces().all(|t| t.weight == 1));
    }
}
