//! Trace-driven experiment health analysis (Chapter 5).
//!
//! The dissertation's analysis model assesses a change's health by
//! comparing how a canary's *interactions* behave against the baseline's,
//! edge by edge, instead of staring at one service-level dial. This
//! module is that analysis layer for the simulator: drained traces fold
//! into a [`HealthAccumulator`] (a per-`service@version` interaction
//! graph keyed by [`EdgeKey`]), and [`HealthReport::build`] diffs a
//! canary version against its baseline per logical endpoint — latency
//! quantiles (via [`cex_core::metrics::quantiles`]), error rate, and
//! retry amplification — plus the critical path of each trace, so a
//! regression is *localized* to the interaction that degraded.
//!
//! Everything here is deterministic: folding order follows trace order,
//! maps are `BTreeMap`s, latencies stream into a mergeable
//! [`QuantileSketch`] (log-spaced buckets, bounded state, no
//! randomness), and [`HealthReport::render`] emits a byte-stable text
//! report. Per-edge state is O(sketch) — independent of traffic volume —
//! and tail-sampled traces fold with their [`Trace::weight`] so rates
//! and quantile mass stay unbiased under downsampling.

use crate::app::{EndpointId, VersionId};
use crate::trace::{EdgeKey, SamplingStats, Span, SpanBook, SpanStatus, Trace};
use cex_core::intern::Sym;
use cex_core::sketch::QuantileSketch;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-edge statistics accumulated from spans.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeStats {
    /// Executed calls (event spans — sheds and fallbacks — excluded).
    pub calls: u64,
    /// Executed calls with an error status (failed or timed out).
    pub errors: u64,
    /// Retry attempts (spans with `attempt > 0`).
    pub retries: u64,
    /// Attempts abandoned at the caller's deadline.
    pub timeouts: u64,
    /// Calls shed by an open circuit breaker.
    pub sheds: u64,
    /// Fallback responses served in place of the callee.
    pub fallbacks: u64,
    /// Latency sketch over executed calls (ms): bounded relative error,
    /// bounded state, deterministic merge.
    pub latency: QuantileSketch,
}

impl Default for EdgeStats {
    fn default() -> Self {
        EdgeStats {
            calls: 0,
            errors: 0,
            retries: 0,
            timeouts: 0,
            sheds: 0,
            fallbacks: 0,
            latency: QuantileSketch::for_latency(),
        }
    }
}

impl EdgeStats {
    fn fold(&mut self, span: &Span, weight: u64) {
        match span.status {
            SpanStatus::Shed => {
                self.sheds += weight;
                return;
            }
            SpanStatus::Fallback => {
                self.fallbacks += weight;
                return;
            }
            SpanStatus::TimedOut => {
                self.timeouts += weight;
                self.errors += weight;
            }
            SpanStatus::Failed => self.errors += weight,
            SpanStatus::Ok => {}
        }
        self.calls += weight;
        if span.attempt > 0 {
            self.retries += weight;
        }
        self.latency.push_weighted(span.duration.as_millis() as f64, weight);
    }

    /// Error rate over executed calls.
    pub fn error_rate(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.errors as f64 / self.calls as f64
        }
    }

    /// Retry amplification: retry attempts per executed call.
    pub fn retry_rate(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.retries as f64 / self.calls as f64
        }
    }

    fn merge(&mut self, other: &EdgeStats) {
        self.calls += other.calls;
        self.errors += other.errors;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.sheds += other.sheds;
        self.fallbacks += other.fallbacks;
        self.latency.merge(&other.latency);
    }
}

/// Folds drained traces into a per-`service@version` interaction graph:
/// edge statistics keyed by [`EdgeKey`] plus per-trace critical paths.
#[derive(Debug, Clone, Default)]
pub struct HealthAccumulator {
    edges: BTreeMap<EdgeKey, EdgeStats>,
    /// How often `(version, endpoint)` terminated a trace's critical path.
    critical_sinks: BTreeMap<(VersionId, EndpointId), u64>,
    traces: u64,
    failed_traces: u64,
}

impl HealthAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        HealthAccumulator::default()
    }

    /// Folds one trace: every primary span lands on its interaction edge
    /// and the trace's critical path is walked down to its sink. Dark
    /// (mirrored) spans are excluded — they are not on the user path the
    /// health verdict is about. A tail-sampled trace folds with its
    /// [`Trace::weight`] — a downsampled healthy representative counts
    /// for the `weight` peers it stands in for, so rates and quantile
    /// mass stay unbiased.
    pub fn observe_trace(&mut self, trace: &Trace) {
        let weight = u64::from(trace.weight);
        for span in &trace.spans {
            if span.dark {
                continue;
            }
            let caller = span.parent.and_then(|p| trace.get(p)).map(|p| p.version);
            let key = EdgeKey { caller, callee: span.version, endpoint: span.endpoint };
            self.edges.entry(key).or_default().fold(span, weight);
        }
        if let Some(sink) = critical_sink(trace) {
            *self.critical_sinks.entry((sink.version, sink.endpoint)).or_default() += weight;
        }
        self.traces += weight;
        if !trace.ok() {
            self.failed_traces += weight;
        }
    }

    /// Folds a batch of traces in order.
    pub fn observe_all<'a>(&mut self, traces: impl IntoIterator<Item = &'a Trace>) {
        for trace in traces {
            self.observe_trace(trace);
        }
    }

    /// Traces folded so far.
    pub fn traces(&self) -> u64 {
        self.traces
    }

    /// Traces whose root failed.
    pub fn failed_traces(&self) -> u64 {
        self.failed_traces
    }

    /// The interaction graph: per-edge statistics, deterministically
    /// ordered.
    pub fn edges(&self) -> &BTreeMap<EdgeKey, EdgeStats> {
        &self.edges
    }

    /// How often each `(version, endpoint)` terminated a critical path.
    pub fn critical_sinks(&self) -> &BTreeMap<(VersionId, EndpointId), u64> {
        &self.critical_sinks
    }

    /// Approximate resident bytes of the accumulated health state:
    /// per-edge counters plus sketch buckets plus sink counters. Bounded
    /// by topology (edges × sketch cap), not by traffic.
    pub fn state_bytes(&self) -> usize {
        let edges: usize = self
            .edges
            .values()
            .map(|s| {
                std::mem::size_of::<EdgeKey>() + std::mem::size_of::<EdgeStats>()
                    - std::mem::size_of::<QuantileSketch>()
                    + s.latency.state_bytes()
            })
            .sum();
        let sinks = self.critical_sinks.len()
            * (std::mem::size_of::<(VersionId, EndpointId)>() + std::mem::size_of::<u64>());
        std::mem::size_of::<Self>() + edges + sinks
    }

    /// Aggregates this version's serving edges per logical endpoint
    /// symbol (callers merged).
    fn per_endpoint(&self, book: &SpanBook, version: VersionId) -> BTreeMap<Sym, EdgeStats> {
        let mut out: BTreeMap<Sym, EdgeStats> = BTreeMap::new();
        for (key, stats) in &self.edges {
            if key.callee == version {
                out.entry(book.endpoint_sym(key.endpoint)).or_default().merge(stats);
            }
        }
        out
    }
}

/// Walks a trace's critical path: from the root, repeatedly descend into
/// the primary child whose interval ends last, returning the terminal
/// span. The sink is where the trace's latency was actually spent.
pub fn critical_sink(trace: &Trace) -> Option<&Span> {
    let mut current = trace.spans.first()?;
    loop {
        let next = trace
            .children_of(current.span)
            .filter(|s| !s.dark)
            .max_by(|a, b| a.end().cmp(&b.end()).then(b.span.0.cmp(&a.span.0)));
        match next {
            Some(child) => current = child,
            None => return Some(current),
        }
    }
}

/// One logical endpoint compared between canary and baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeDelta {
    /// Logical endpoint name (shared across versions).
    pub endpoint: String,
    /// Baseline-side statistics (callers merged).
    pub baseline: EdgeSummary,
    /// Canary-side statistics (callers merged).
    pub canary: EdgeSummary,
}

/// Scalar summary of one side of an [`EdgeDelta`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeSummary {
    /// Executed calls.
    pub calls: u64,
    /// Error rate over executed calls.
    pub error_rate: f64,
    /// Retry attempts per executed call.
    pub retry_rate: f64,
    /// Median latency (ms); `0` when no calls executed.
    pub p50_ms: f64,
    /// 95th-percentile latency (ms); `0` when no calls executed.
    pub p95_ms: f64,
    /// Calls shed by an open breaker.
    pub sheds: u64,
    /// Fallback responses served.
    pub fallbacks: u64,
}

impl EdgeSummary {
    fn from_stats(stats: &EdgeStats) -> EdgeSummary {
        let qs = stats.latency.quantiles(&[0.5, 0.95]).unwrap_or_else(|| vec![0.0, 0.0]);
        EdgeSummary {
            calls: stats.calls,
            error_rate: stats.error_rate(),
            retry_rate: stats.retry_rate(),
            p50_ms: qs[0],
            p95_ms: qs[1],
            sheds: stats.sheds,
            fallbacks: stats.fallbacks,
        }
    }
}

/// Weight of the canary−baseline error-rate delta in [`EdgeDelta::score`].
/// Error rate is a fraction in `[0, 1]`, latency deltas are milliseconds;
/// this scale makes a 1-point (0.01) error-rate regression outrank a
/// 10 ms p95 regression — user-visible failures dominate slowdowns.
pub const SCORE_ERROR_RATE_WEIGHT: f64 = 1_000.0;

/// Weight of the retry-amplification delta in [`EdgeDelta::score`].
/// Retries are an early saturation signal but cheaper than hard errors:
/// one order of magnitude below [`SCORE_ERROR_RATE_WEIGHT`], one above
/// raw milliseconds.
pub const SCORE_RETRY_RATE_WEIGHT: f64 = 100.0;

/// Weight of the p95 latency delta (ms) in [`EdgeDelta::score`] — the
/// unit scale the other weights are expressed against.
pub const SCORE_P95_DELTA_WEIGHT: f64 = 1.0;

impl EdgeDelta {
    /// Canary − baseline error-rate difference.
    pub fn error_rate_delta(&self) -> f64 {
        self.canary.error_rate - self.baseline.error_rate
    }

    /// Canary − baseline retry-amplification difference.
    pub fn retry_rate_delta(&self) -> f64 {
        self.canary.retry_rate - self.baseline.retry_rate
    }

    /// Canary − baseline p95 latency difference (ms).
    pub fn p95_delta_ms(&self) -> f64 {
        self.canary.p95_ms - self.baseline.p95_ms
    }

    /// Canary − baseline median latency difference (ms).
    pub fn p50_delta_ms(&self) -> f64 {
        self.canary.p50_ms - self.baseline.p50_ms
    }

    /// Degradation score used to rank edges: error-rate deltas dominate,
    /// retry amplification next, latency deltas break ties. Weights are
    /// the documented [`SCORE_ERROR_RATE_WEIGHT`] /
    /// [`SCORE_RETRY_RATE_WEIGHT`] / [`SCORE_P95_DELTA_WEIGHT`]
    /// constants.
    pub fn score(&self) -> f64 {
        self.error_rate_delta() * SCORE_ERROR_RATE_WEIGHT
            + self.retry_rate_delta() * SCORE_RETRY_RATE_WEIGHT
            + self.p95_delta_ms() * SCORE_P95_DELTA_WEIGHT
    }
}

/// A deterministic canary-vs-baseline health report for one service.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Service under experiment.
    pub service: String,
    /// Baseline `service@version` label.
    pub baseline: String,
    /// Canary `service@version` label.
    pub canary: String,
    /// Traces folded into the underlying accumulator.
    pub traces: u64,
    /// Traces whose root failed.
    pub failed_traces: u64,
    /// Per-endpoint deltas, sorted by endpoint name.
    pub edges: Vec<EdgeDelta>,
    /// Critical-path sinks (`service@version/endpoint`, count), most
    /// frequent first.
    pub critical_sinks: Vec<(String, u64)>,
    /// Trace-collector sampling counters at build time, so sampling bias
    /// is visible wherever the report lands (render, journal, replay).
    pub sampling: SamplingStats,
}

impl HealthReport {
    /// Diffs `canary` against `baseline` per logical endpoint. Endpoints
    /// are matched by their shared interner symbol, so versions with
    /// differing [`EndpointId`]s still line up.
    pub fn build(
        acc: &HealthAccumulator,
        book: &SpanBook,
        baseline: VersionId,
        canary: VersionId,
    ) -> HealthReport {
        let base_map = acc.per_endpoint(book, baseline);
        let canary_map = acc.per_endpoint(book, canary);
        let mut names: Vec<Sym> = base_map.keys().chain(canary_map.keys()).copied().collect();
        names.sort();
        names.dedup();
        let default = EdgeStats::default();
        let mut edges: Vec<EdgeDelta> = names
            .into_iter()
            .map(|sym| {
                let base = base_map.get(&sym).unwrap_or(&default);
                let can = canary_map.get(&sym).unwrap_or(&default);
                // Any endpoint id carrying this symbol resolves to the
                // same name; find one through either side's stats. The
                // symbol came from the book, so resolution cannot miss.
                EdgeDelta {
                    endpoint: endpoint_name_of(book, sym),
                    baseline: EdgeSummary::from_stats(base),
                    canary: EdgeSummary::from_stats(can),
                }
            })
            .collect();
        edges.sort_by(|a, b| a.endpoint.cmp(&b.endpoint));

        let mut critical_sinks: Vec<(String, u64)> = acc
            .critical_sinks
            .iter()
            .map(|((v, e), n)| {
                (format!("{}/{}", book.version_label(*v), book.endpoint_name(*e)), *n)
            })
            .collect();
        critical_sinks.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        HealthReport {
            service: book.service_name(book.service_of(canary)).to_string(),
            baseline: book.version_label(baseline).to_string(),
            canary: book.version_label(canary).to_string(),
            traces: acc.traces(),
            failed_traces: acc.failed_traces(),
            edges,
            critical_sinks,
            sampling: SamplingStats::default(),
        }
    }

    /// Attaches the trace collector's sampling counters so the report
    /// (and anything journaling it) discloses how traces were selected.
    pub fn with_sampling(mut self, sampling: SamplingStats) -> HealthReport {
        self.sampling = sampling;
        self
    }

    /// The most degraded endpoint (highest [`EdgeDelta::score`]), ties
    /// broken by endpoint name.
    pub fn worst_edge(&self) -> Option<&EdgeDelta> {
        self.edges
            .iter()
            .max_by(|a, b| a.score().total_cmp(&b.score()).then(b.endpoint.cmp(&a.endpoint)))
    }

    /// `true` when some edge degraded beyond the given error-rate or p95
    /// latency thresholds.
    pub fn degraded(&self, max_error_rate_delta: f64, max_p95_delta_ms: f64) -> bool {
        self.edges.iter().any(|e| {
            e.error_rate_delta() > max_error_rate_delta || e.p95_delta_ms() > max_p95_delta_ms
        })
    }

    /// Byte-deterministic text rendering (same accumulator state → same
    /// bytes), suitable for journals and golden files.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "health report: service {} canary {} vs baseline {}",
            self.service, self.canary, self.baseline
        );
        let _ = writeln!(out, "traces {} failed {}", self.traces, self.failed_traces);
        if self.sampling != SamplingStats::default() {
            let _ = writeln!(
                out,
                "sampling: recorded {} evicted {} tail_kept {} downsampled_kept {} \
                 healthy_dropped {}",
                self.sampling.recorded,
                self.sampling.evicted,
                self.sampling.tail_kept,
                self.sampling.downsampled_kept,
                self.sampling.healthy_dropped,
            );
        }
        for e in &self.edges {
            let _ = writeln!(
                out,
                "edge {}: calls {} -> {}, error_rate {:.4} -> {:.4} (delta {:+.4}), \
                 p50 {:.2} -> {:.2} ms, p95 {:.2} -> {:.2} ms (delta {:+.2}), \
                 retry_rate {:.4} -> {:.4}, sheds {} -> {}, fallbacks {} -> {}",
                e.endpoint,
                e.baseline.calls,
                e.canary.calls,
                e.baseline.error_rate,
                e.canary.error_rate,
                e.error_rate_delta(),
                e.baseline.p50_ms,
                e.canary.p50_ms,
                e.baseline.p95_ms,
                e.canary.p95_ms,
                e.p95_delta_ms(),
                e.baseline.retry_rate,
                e.canary.retry_rate,
                e.baseline.sheds,
                e.canary.sheds,
                e.baseline.fallbacks,
                e.canary.fallbacks,
            );
        }
        for (sink, n) in self.critical_sinks.iter().take(5) {
            let _ = writeln!(out, "critical path sink {sink}: {n}");
        }
        if let Some(worst) = self.worst_edge() {
            let _ = writeln!(out, "worst edge {}: score {:.2}", worst.endpoint, worst.score());
        }
        out
    }
}

/// Resolves a logical endpoint symbol back to its name via the book's
/// interner (every symbol in a report originated from the book).
fn endpoint_name_of(book: &SpanBook, sym: Sym) -> String {
    book.sym_name(sym).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{Application, CallDef, EndpointDef, VersionSpec};
    use crate::latency::LatencyModel;
    use crate::sim::Simulation;
    use cex_core::simtime::SimDuration;

    fn canary_app() -> Application {
        let mut b = Application::builder();
        b.version(
            VersionSpec::new("frontend", "1.0.0").capacity(10_000.0).endpoint(
                EndpointDef::new("home", LatencyModel::Constant { ms: 5.0 })
                    .call(CallDef::always("backend", "api")),
            ),
        );
        b.version(
            VersionSpec::new("backend", "1.0.0")
                .capacity(10_000.0)
                .endpoint(EndpointDef::new("api", LatencyModel::Constant { ms: 10.0 })),
        );
        b.build().unwrap()
    }

    fn simulate_canary(err: f64, latency_ms: f64) -> (Simulation, VersionId, VersionId) {
        let mut sim = Simulation::new(canary_app(), 77);
        sim.set_trace_sampling(1.0);
        let candidate = sim
            .deploy(VersionSpec::new("backend", "2.0.0").capacity(10_000.0).endpoint(
                EndpointDef::new("api", LatencyModel::Constant { ms: latency_ms }).error_rate(err),
            ))
            .unwrap();
        let backend = sim.app().service_id("backend").unwrap();
        let baseline = sim.app().version_id("backend", "1.0.0").unwrap();
        let snapshot = sim.app().clone();
        sim.router_mut()
            .set_split(&snapshot, backend, vec![(baseline, 0.5), (candidate, 0.5)])
            .unwrap();
        sim.run(SimDuration::from_secs(30), 40.0);
        (sim, baseline, candidate)
    }

    #[test]
    fn edge_state_is_bounded_regardless_of_traffic() {
        let mut stats = EdgeStats::default();
        let (mut sim, _, _) = simulate_canary(0.0, 10.0);
        let traces = sim.drain_traces();
        let span = traces[0].spans[0];
        let before = std::mem::size_of::<EdgeStats>();
        for _ in 0..100_000 {
            stats.fold(&span, 1);
        }
        assert_eq!(stats.calls, 100_000);
        assert_eq!(stats.latency.count(), 100_000);
        // Sketch state is bucket-capped: far below one raw f64 per call.
        assert!(
            stats.latency.state_bytes() < 64 * 1024,
            "sketch stays bounded: {} bytes (struct {before})",
            stats.latency.state_bytes()
        );
    }

    #[test]
    fn weighted_folds_match_repeated_folds() {
        let (mut sim, _, _) = simulate_canary(0.3, 25.0);
        let traces = sim.drain_traces();
        let mut repeated = HealthAccumulator::new();
        for t in &traces {
            for _ in 0..3 {
                repeated.observe_trace(t);
            }
        }
        let mut weighted = HealthAccumulator::new();
        for t in &traces {
            let mut heavy = t.clone();
            heavy.weight = 3;
            weighted.observe_trace(&heavy);
        }
        assert_eq!(repeated.traces(), weighted.traces());
        assert_eq!(repeated.failed_traces(), weighted.failed_traces());
        assert_eq!(repeated.edges(), weighted.edges(), "weight-3 fold == 3 identical folds");
        assert_eq!(repeated.critical_sinks(), weighted.critical_sinks());
    }

    #[test]
    fn worst_edge_tie_break_is_deterministic() {
        // Two endpoints with byte-identical deltas: the lexicographically
        // smaller endpoint must win, on every evaluation order.
        let summary = EdgeSummary { calls: 10, ..EdgeSummary::default() };
        let edge = |name: &str| EdgeDelta {
            endpoint: name.to_string(),
            baseline: summary.clone(),
            canary: summary.clone(),
        };
        let mut report = HealthReport {
            service: "svc".into(),
            baseline: "svc@1".into(),
            canary: "svc@2".into(),
            traces: 10,
            failed_traces: 0,
            edges: vec![edge("beta"), edge("alpha")],
            critical_sinks: Vec::new(),
            sampling: SamplingStats::default(),
        };
        assert_eq!(report.worst_edge().unwrap().endpoint, "alpha");
        report.edges.reverse();
        assert_eq!(
            report.worst_edge().unwrap().endpoint,
            "alpha",
            "tie-break independent of edge order"
        );
        // And the score itself is built from the documented constants.
        let e = edge("alpha");
        assert_eq!(
            e.score(),
            e.error_rate_delta() * SCORE_ERROR_RATE_WEIGHT
                + e.retry_rate_delta() * SCORE_RETRY_RATE_WEIGHT
                + e.p95_delta_ms() * SCORE_P95_DELTA_WEIGHT
        );
    }

    #[test]
    fn accumulator_builds_interaction_graph() {
        let (mut sim, _, _) = simulate_canary(0.0, 10.0);
        let traces = sim.drain_traces();
        let mut acc = HealthAccumulator::new();
        acc.observe_all(&traces);
        assert_eq!(acc.traces(), traces.len() as u64);
        // Entry edge (None → frontend) plus frontend → each backend version.
        assert_eq!(acc.edges().len(), 3);
        let total_backend_calls: u64 =
            acc.edges().iter().filter(|(k, _)| k.caller.is_some()).map(|(_, s)| s.calls).sum();
        assert_eq!(total_backend_calls, traces.len() as u64);
        // Every trace's latency sink is the slow-leaf backend hop.
        let sinks: u64 = acc.critical_sinks().values().sum();
        assert_eq!(sinks, traces.len() as u64);
    }

    #[test]
    fn report_localizes_faulty_canary() {
        let (mut sim, baseline, canary) = simulate_canary(0.5, 60.0);
        let book = sim.span_book();
        let traces = sim.drain_traces();
        let mut acc = HealthAccumulator::new();
        acc.observe_all(&traces);
        let report = HealthReport::build(&acc, &book, baseline, canary);
        assert_eq!(report.service, "backend");
        assert_eq!(report.canary, "backend@2.0.0");
        let worst = report.worst_edge().expect("an edge was compared");
        assert_eq!(worst.endpoint, "api", "the degraded edge is localized");
        assert!(worst.error_rate_delta() > 0.3, "delta {}", worst.error_rate_delta());
        assert!(worst.p95_delta_ms() > 40.0, "p95 delta {}", worst.p95_delta_ms());
        assert!(report.degraded(0.1, 1_000.0));
        assert!(report.degraded(1.0, 25.0));
        assert!(!report.degraded(1.0, 1_000.0));
    }

    #[test]
    fn healthy_canary_is_not_flagged() {
        let (mut sim, baseline, canary) = simulate_canary(0.0, 10.0);
        let book = sim.span_book();
        let traces = sim.drain_traces();
        let mut acc = HealthAccumulator::new();
        acc.observe_all(&traces);
        let report = HealthReport::build(&acc, &book, baseline, canary);
        assert!(!report.degraded(0.05, 5.0), "identical behaviour is healthy");
    }

    #[test]
    fn render_is_byte_deterministic() {
        let build = || {
            let (mut sim, baseline, canary) = simulate_canary(0.5, 60.0);
            let book = sim.span_book();
            let traces = sim.drain_traces();
            let mut acc = HealthAccumulator::new();
            acc.observe_all(&traces);
            HealthReport::build(&acc, &book, baseline, canary).render()
        };
        let a = build();
        assert_eq!(a, build(), "same seed, same bytes");
        assert!(a.contains("health report: service backend canary backend@2.0.0"));
        assert!(a.contains("worst edge api"));
    }

    #[test]
    fn critical_sink_follows_latest_ending_child() {
        let (mut sim, _, _) = simulate_canary(0.0, 10.0);
        let traces = sim.drain_traces();
        let trace = &traces[0];
        let sink = critical_sink(trace).unwrap();
        // The chain bottoms out in a backend hop: the sink has no children.
        assert_eq!(trace.children_of(sink.span).count(), 0);
        assert!(sink.parent.is_some());
    }
}
