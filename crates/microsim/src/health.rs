//! Trace-driven experiment health analysis (Chapter 5).
//!
//! The dissertation's analysis model assesses a change's health by
//! comparing how a canary's *interactions* behave against the baseline's,
//! edge by edge, instead of staring at one service-level dial. This
//! module is that analysis layer for the simulator: drained traces fold
//! into a [`HealthAccumulator`] (a per-`service@version` interaction
//! graph keyed by [`EdgeKey`]), and [`HealthReport::build`] diffs a
//! canary version against its baseline per logical endpoint — latency
//! quantiles (via [`cex_core::metrics::quantiles`]), error rate, and
//! retry amplification — plus the critical path of each trace, so a
//! regression is *localized* to the interaction that degraded.
//!
//! Everything here is deterministic: folding order follows trace order,
//! maps are `BTreeMap`s, the latency reservoir compacts by stride
//! doubling (no randomness), and [`HealthReport::render`] emits a
//! byte-stable text report.

use crate::app::{EndpointId, VersionId};
use crate::trace::{EdgeKey, Span, SpanBook, SpanStatus, Trace};
use cex_core::intern::Sym;
use cex_core::metrics::quantiles;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Upper bound on retained latency samples per edge. When full the
/// reservoir compacts by dropping every other sample and doubling its
/// keep-stride — deterministic, order-preserving downsampling.
const RESERVOIR_CAP: usize = 2_048;

/// Bounded, deterministic latency sample reservoir (milliseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyReservoir {
    samples: Vec<f64>,
    stride: u64,
    seen: u64,
}

impl Default for LatencyReservoir {
    fn default() -> Self {
        LatencyReservoir::new()
    }
}

impl LatencyReservoir {
    fn new() -> Self {
        LatencyReservoir { samples: Vec::new(), stride: 1, seen: 0 }
    }

    fn push(&mut self, value_ms: f64) {
        if self.seen.is_multiple_of(self.stride) {
            if self.samples.len() == RESERVOIR_CAP {
                // Keep every other retained sample; future pushes keep
                // every `2 * stride`-th observation.
                let mut keep = false;
                self.samples.retain(|_| {
                    keep = !keep;
                    keep
                });
                self.stride *= 2;
            }
            self.samples.push(value_ms);
        }
        self.seen += 1;
    }

    /// Retained samples, in observation order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Observations offered (retained or not).
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

/// Per-edge statistics accumulated from spans.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeStats {
    /// Executed calls (event spans — sheds and fallbacks — excluded).
    pub calls: u64,
    /// Executed calls with an error status (failed or timed out).
    pub errors: u64,
    /// Retry attempts (spans with `attempt > 0`).
    pub retries: u64,
    /// Attempts abandoned at the caller's deadline.
    pub timeouts: u64,
    /// Calls shed by an open circuit breaker.
    pub sheds: u64,
    /// Fallback responses served in place of the callee.
    pub fallbacks: u64,
    /// Latency reservoir over executed calls (ms).
    pub latency: LatencyReservoir,
}

impl EdgeStats {
    fn fold(&mut self, span: &Span) {
        match span.status {
            SpanStatus::Shed => {
                self.sheds += 1;
                return;
            }
            SpanStatus::Fallback => {
                self.fallbacks += 1;
                return;
            }
            SpanStatus::TimedOut => {
                self.timeouts += 1;
                self.errors += 1;
            }
            SpanStatus::Failed => self.errors += 1,
            SpanStatus::Ok => {}
        }
        self.calls += 1;
        if span.attempt > 0 {
            self.retries += 1;
        }
        self.latency.push(span.duration.as_millis() as f64);
    }

    /// Error rate over executed calls.
    pub fn error_rate(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.errors as f64 / self.calls as f64
        }
    }

    /// Retry amplification: retry attempts per executed call.
    pub fn retry_rate(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.retries as f64 / self.calls as f64
        }
    }

    fn merge(&mut self, other: &EdgeStats) {
        self.calls += other.calls;
        self.errors += other.errors;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.sheds += other.sheds;
        self.fallbacks += other.fallbacks;
        for &v in other.latency.samples() {
            self.latency.push(v);
        }
    }
}

/// Folds drained traces into a per-`service@version` interaction graph:
/// edge statistics keyed by [`EdgeKey`] plus per-trace critical paths.
#[derive(Debug, Clone, Default)]
pub struct HealthAccumulator {
    edges: BTreeMap<EdgeKey, EdgeStats>,
    /// How often `(version, endpoint)` terminated a trace's critical path.
    critical_sinks: BTreeMap<(VersionId, EndpointId), u64>,
    traces: u64,
    failed_traces: u64,
}

impl HealthAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        HealthAccumulator::default()
    }

    /// Folds one trace: every primary span lands on its interaction edge
    /// and the trace's critical path is walked down to its sink. Dark
    /// (mirrored) spans are excluded — they are not on the user path the
    /// health verdict is about.
    pub fn observe_trace(&mut self, trace: &Trace) {
        for span in &trace.spans {
            if span.dark {
                continue;
            }
            let caller = span.parent.and_then(|p| trace.get(p)).map(|p| p.version);
            let key = EdgeKey { caller, callee: span.version, endpoint: span.endpoint };
            self.edges.entry(key).or_default().fold(span);
        }
        if let Some(sink) = critical_sink(trace) {
            *self.critical_sinks.entry((sink.version, sink.endpoint)).or_default() += 1;
        }
        self.traces += 1;
        if !trace.ok() {
            self.failed_traces += 1;
        }
    }

    /// Folds a batch of traces in order.
    pub fn observe_all<'a>(&mut self, traces: impl IntoIterator<Item = &'a Trace>) {
        for trace in traces {
            self.observe_trace(trace);
        }
    }

    /// Traces folded so far.
    pub fn traces(&self) -> u64 {
        self.traces
    }

    /// Traces whose root failed.
    pub fn failed_traces(&self) -> u64 {
        self.failed_traces
    }

    /// The interaction graph: per-edge statistics, deterministically
    /// ordered.
    pub fn edges(&self) -> &BTreeMap<EdgeKey, EdgeStats> {
        &self.edges
    }

    /// How often each `(version, endpoint)` terminated a critical path.
    pub fn critical_sinks(&self) -> &BTreeMap<(VersionId, EndpointId), u64> {
        &self.critical_sinks
    }

    /// Aggregates this version's serving edges per logical endpoint
    /// symbol (callers merged).
    fn per_endpoint(&self, book: &SpanBook, version: VersionId) -> BTreeMap<Sym, EdgeStats> {
        let mut out: BTreeMap<Sym, EdgeStats> = BTreeMap::new();
        for (key, stats) in &self.edges {
            if key.callee == version {
                out.entry(book.endpoint_sym(key.endpoint)).or_default().merge(stats);
            }
        }
        out
    }
}

/// Walks a trace's critical path: from the root, repeatedly descend into
/// the primary child whose interval ends last, returning the terminal
/// span. The sink is where the trace's latency was actually spent.
pub fn critical_sink(trace: &Trace) -> Option<&Span> {
    let mut current = trace.spans.first()?;
    loop {
        let next = trace
            .children_of(current.span)
            .filter(|s| !s.dark)
            .max_by(|a, b| a.end().cmp(&b.end()).then(b.span.0.cmp(&a.span.0)));
        match next {
            Some(child) => current = child,
            None => return Some(current),
        }
    }
}

/// One logical endpoint compared between canary and baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeDelta {
    /// Logical endpoint name (shared across versions).
    pub endpoint: String,
    /// Baseline-side statistics (callers merged).
    pub baseline: EdgeSummary,
    /// Canary-side statistics (callers merged).
    pub canary: EdgeSummary,
}

/// Scalar summary of one side of an [`EdgeDelta`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeSummary {
    /// Executed calls.
    pub calls: u64,
    /// Error rate over executed calls.
    pub error_rate: f64,
    /// Retry attempts per executed call.
    pub retry_rate: f64,
    /// Median latency (ms); `0` when no calls executed.
    pub p50_ms: f64,
    /// 95th-percentile latency (ms); `0` when no calls executed.
    pub p95_ms: f64,
    /// Calls shed by an open breaker.
    pub sheds: u64,
    /// Fallback responses served.
    pub fallbacks: u64,
}

impl EdgeSummary {
    fn from_stats(stats: &EdgeStats) -> EdgeSummary {
        let qs = quantiles(stats.latency.samples(), &[0.5, 0.95]).unwrap_or_else(|| vec![0.0, 0.0]);
        EdgeSummary {
            calls: stats.calls,
            error_rate: stats.error_rate(),
            retry_rate: stats.retry_rate(),
            p50_ms: qs[0],
            p95_ms: qs[1],
            sheds: stats.sheds,
            fallbacks: stats.fallbacks,
        }
    }
}

impl EdgeDelta {
    /// Canary − baseline error-rate difference.
    pub fn error_rate_delta(&self) -> f64 {
        self.canary.error_rate - self.baseline.error_rate
    }

    /// Canary − baseline retry-amplification difference.
    pub fn retry_rate_delta(&self) -> f64 {
        self.canary.retry_rate - self.baseline.retry_rate
    }

    /// Canary − baseline p95 latency difference (ms).
    pub fn p95_delta_ms(&self) -> f64 {
        self.canary.p95_ms - self.baseline.p95_ms
    }

    /// Canary − baseline median latency difference (ms).
    pub fn p50_delta_ms(&self) -> f64 {
        self.canary.p50_ms - self.baseline.p50_ms
    }

    /// Degradation score used to rank edges: error-rate deltas dominate,
    /// latency deltas break ties.
    pub fn score(&self) -> f64 {
        self.error_rate_delta() * 1_000.0 + self.retry_rate_delta() * 100.0 + self.p95_delta_ms()
    }
}

/// A deterministic canary-vs-baseline health report for one service.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Service under experiment.
    pub service: String,
    /// Baseline `service@version` label.
    pub baseline: String,
    /// Canary `service@version` label.
    pub canary: String,
    /// Traces folded into the underlying accumulator.
    pub traces: u64,
    /// Traces whose root failed.
    pub failed_traces: u64,
    /// Per-endpoint deltas, sorted by endpoint name.
    pub edges: Vec<EdgeDelta>,
    /// Critical-path sinks (`service@version/endpoint`, count), most
    /// frequent first.
    pub critical_sinks: Vec<(String, u64)>,
}

impl HealthReport {
    /// Diffs `canary` against `baseline` per logical endpoint. Endpoints
    /// are matched by their shared interner symbol, so versions with
    /// differing [`EndpointId`]s still line up.
    pub fn build(
        acc: &HealthAccumulator,
        book: &SpanBook,
        baseline: VersionId,
        canary: VersionId,
    ) -> HealthReport {
        let base_map = acc.per_endpoint(book, baseline);
        let canary_map = acc.per_endpoint(book, canary);
        let mut names: Vec<Sym> = base_map.keys().chain(canary_map.keys()).copied().collect();
        names.sort();
        names.dedup();
        let default = EdgeStats::default();
        let mut edges: Vec<EdgeDelta> = names
            .into_iter()
            .map(|sym| {
                let base = base_map.get(&sym).unwrap_or(&default);
                let can = canary_map.get(&sym).unwrap_or(&default);
                // Any endpoint id carrying this symbol resolves to the
                // same name; find one through either side's stats. The
                // symbol came from the book, so resolution cannot miss.
                EdgeDelta {
                    endpoint: endpoint_name_of(book, sym),
                    baseline: EdgeSummary::from_stats(base),
                    canary: EdgeSummary::from_stats(can),
                }
            })
            .collect();
        edges.sort_by(|a, b| a.endpoint.cmp(&b.endpoint));

        let mut critical_sinks: Vec<(String, u64)> = acc
            .critical_sinks
            .iter()
            .map(|((v, e), n)| {
                (format!("{}/{}", book.version_label(*v), book.endpoint_name(*e)), *n)
            })
            .collect();
        critical_sinks.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        HealthReport {
            service: book.service_name(book.service_of(canary)).to_string(),
            baseline: book.version_label(baseline).to_string(),
            canary: book.version_label(canary).to_string(),
            traces: acc.traces(),
            failed_traces: acc.failed_traces(),
            edges,
            critical_sinks,
        }
    }

    /// The most degraded endpoint (highest [`EdgeDelta::score`]), ties
    /// broken by endpoint name.
    pub fn worst_edge(&self) -> Option<&EdgeDelta> {
        self.edges
            .iter()
            .max_by(|a, b| a.score().total_cmp(&b.score()).then(b.endpoint.cmp(&a.endpoint)))
    }

    /// `true` when some edge degraded beyond the given error-rate or p95
    /// latency thresholds.
    pub fn degraded(&self, max_error_rate_delta: f64, max_p95_delta_ms: f64) -> bool {
        self.edges.iter().any(|e| {
            e.error_rate_delta() > max_error_rate_delta || e.p95_delta_ms() > max_p95_delta_ms
        })
    }

    /// Byte-deterministic text rendering (same accumulator state → same
    /// bytes), suitable for journals and golden files.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "health report: service {} canary {} vs baseline {}",
            self.service, self.canary, self.baseline
        );
        let _ = writeln!(out, "traces {} failed {}", self.traces, self.failed_traces);
        for e in &self.edges {
            let _ = writeln!(
                out,
                "edge {}: calls {} -> {}, error_rate {:.4} -> {:.4} (delta {:+.4}), \
                 p50 {:.2} -> {:.2} ms, p95 {:.2} -> {:.2} ms (delta {:+.2}), \
                 retry_rate {:.4} -> {:.4}, sheds {} -> {}, fallbacks {} -> {}",
                e.endpoint,
                e.baseline.calls,
                e.canary.calls,
                e.baseline.error_rate,
                e.canary.error_rate,
                e.error_rate_delta(),
                e.baseline.p50_ms,
                e.canary.p50_ms,
                e.baseline.p95_ms,
                e.canary.p95_ms,
                e.p95_delta_ms(),
                e.baseline.retry_rate,
                e.canary.retry_rate,
                e.baseline.sheds,
                e.canary.sheds,
                e.baseline.fallbacks,
                e.canary.fallbacks,
            );
        }
        for (sink, n) in self.critical_sinks.iter().take(5) {
            let _ = writeln!(out, "critical path sink {sink}: {n}");
        }
        if let Some(worst) = self.worst_edge() {
            let _ = writeln!(out, "worst edge {}: score {:.2}", worst.endpoint, worst.score());
        }
        out
    }
}

/// Resolves a logical endpoint symbol back to its name via the book's
/// interner (every symbol in a report originated from the book).
fn endpoint_name_of(book: &SpanBook, sym: Sym) -> String {
    book.sym_name(sym).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{Application, CallDef, EndpointDef, VersionSpec};
    use crate::latency::LatencyModel;
    use crate::sim::Simulation;
    use cex_core::simtime::SimDuration;

    fn canary_app() -> Application {
        let mut b = Application::builder();
        b.version(
            VersionSpec::new("frontend", "1.0.0").capacity(10_000.0).endpoint(
                EndpointDef::new("home", LatencyModel::Constant { ms: 5.0 })
                    .call(CallDef::always("backend", "api")),
            ),
        );
        b.version(
            VersionSpec::new("backend", "1.0.0")
                .capacity(10_000.0)
                .endpoint(EndpointDef::new("api", LatencyModel::Constant { ms: 10.0 })),
        );
        b.build().unwrap()
    }

    fn simulate_canary(err: f64, latency_ms: f64) -> (Simulation, VersionId, VersionId) {
        let mut sim = Simulation::new(canary_app(), 77);
        sim.set_trace_sampling(1.0);
        let candidate = sim
            .deploy(VersionSpec::new("backend", "2.0.0").capacity(10_000.0).endpoint(
                EndpointDef::new("api", LatencyModel::Constant { ms: latency_ms }).error_rate(err),
            ))
            .unwrap();
        let backend = sim.app().service_id("backend").unwrap();
        let baseline = sim.app().version_id("backend", "1.0.0").unwrap();
        let snapshot = sim.app().clone();
        sim.router_mut()
            .set_split(&snapshot, backend, vec![(baseline, 0.5), (candidate, 0.5)])
            .unwrap();
        sim.run(SimDuration::from_secs(30), 40.0);
        (sim, baseline, candidate)
    }

    #[test]
    fn reservoir_is_bounded_and_deterministic() {
        let mut r = LatencyReservoir::new();
        for i in 0..100_000u64 {
            r.push(i as f64);
        }
        assert!(r.samples().len() <= RESERVOIR_CAP);
        assert!(r.samples().len() > RESERVOIR_CAP / 4, "compaction keeps a useful tail");
        assert_eq!(r.seen(), 100_000);
        let mut r2 = LatencyReservoir::new();
        for i in 0..100_000u64 {
            r2.push(i as f64);
        }
        assert_eq!(r, r2, "same input, same reservoir");
        // Order-preserving: retained samples are strictly increasing here.
        assert!(r.samples().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn accumulator_builds_interaction_graph() {
        let (mut sim, _, _) = simulate_canary(0.0, 10.0);
        let traces = sim.drain_traces();
        let mut acc = HealthAccumulator::new();
        acc.observe_all(&traces);
        assert_eq!(acc.traces(), traces.len() as u64);
        // Entry edge (None → frontend) plus frontend → each backend version.
        assert_eq!(acc.edges().len(), 3);
        let total_backend_calls: u64 =
            acc.edges().iter().filter(|(k, _)| k.caller.is_some()).map(|(_, s)| s.calls).sum();
        assert_eq!(total_backend_calls, traces.len() as u64);
        // Every trace's latency sink is the slow-leaf backend hop.
        let sinks: u64 = acc.critical_sinks().values().sum();
        assert_eq!(sinks, traces.len() as u64);
    }

    #[test]
    fn report_localizes_faulty_canary() {
        let (mut sim, baseline, canary) = simulate_canary(0.5, 60.0);
        let book = sim.span_book();
        let traces = sim.drain_traces();
        let mut acc = HealthAccumulator::new();
        acc.observe_all(&traces);
        let report = HealthReport::build(&acc, &book, baseline, canary);
        assert_eq!(report.service, "backend");
        assert_eq!(report.canary, "backend@2.0.0");
        let worst = report.worst_edge().expect("an edge was compared");
        assert_eq!(worst.endpoint, "api", "the degraded edge is localized");
        assert!(worst.error_rate_delta() > 0.3, "delta {}", worst.error_rate_delta());
        assert!(worst.p95_delta_ms() > 40.0, "p95 delta {}", worst.p95_delta_ms());
        assert!(report.degraded(0.1, 1_000.0));
        assert!(report.degraded(1.0, 25.0));
        assert!(!report.degraded(1.0, 1_000.0));
    }

    #[test]
    fn healthy_canary_is_not_flagged() {
        let (mut sim, baseline, canary) = simulate_canary(0.0, 10.0);
        let book = sim.span_book();
        let traces = sim.drain_traces();
        let mut acc = HealthAccumulator::new();
        acc.observe_all(&traces);
        let report = HealthReport::build(&acc, &book, baseline, canary);
        assert!(!report.degraded(0.05, 5.0), "identical behaviour is healthy");
    }

    #[test]
    fn render_is_byte_deterministic() {
        let build = || {
            let (mut sim, baseline, canary) = simulate_canary(0.5, 60.0);
            let book = sim.span_book();
            let traces = sim.drain_traces();
            let mut acc = HealthAccumulator::new();
            acc.observe_all(&traces);
            HealthReport::build(&acc, &book, baseline, canary).render()
        };
        let a = build();
        assert_eq!(a, build(), "same seed, same bytes");
        assert!(a.contains("health report: service backend canary backend@2.0.0"));
        assert!(a.contains("worst edge api"));
    }

    #[test]
    fn critical_sink_follows_latest_ending_child() {
        let (mut sim, _, _) = simulate_canary(0.0, 10.0);
        let traces = sim.drain_traces();
        let trace = &traces[0];
        let sink = critical_sink(trace).unwrap();
        // The chain bottoms out in a backend hop: the sink has no children.
        assert_eq!(trace.children_of(sink.span).count(), 0);
        assert!(sink.parent.is_some());
    }
}
