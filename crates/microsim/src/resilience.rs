//! Resilience layer: timeouts, retries, circuit breakers, fallbacks.
//!
//! Chapter 5's evaluation "introduced sub-scenarios involving simulated
//! performance issues", and staged-rollout practice pairs experimentation
//! with *guardrails* because windowed detection alone is too slow (Zhao
//! et al. 2019; Auer et al. 2021 list safety as a top open challenge).
//! This module gives the simulated microservice app the standard
//! mitigation toolbox so fault sub-scenarios become *recovery*
//! experiments rather than pure detection experiments:
//!
//! - [`CallPolicy`] — per-call attempt timeout, bounded retries with
//!   exponential backoff and deterministic jitter, optional fallback.
//! - [`BreakerPolicy`] / [`Breaker`] — a per-(caller-version,
//!   callee-version) circuit breaker with a rolling error-rate window,
//!   open-cooldown, and half-open probing.
//! - [`ResiliencePlan`] — which policy applies to which service edge.
//! - [`ResilienceState`] — all mutable breaker state, owned by the
//!   simulation so that same-seed runs are byte-identical.
//!
//! # Determinism
//!
//! Every stochastic choice (retry jitter) draws from the simulation's
//! own [`SplitMix64`] stream at the point in the request walk where the
//! retry happens, so the RNG consumption order is a pure function of the
//! seed. Breaker state lives in a [`BTreeMap`] keyed by version-id pairs
//! — iteration order, and hence any serialization of transitions, is
//! deterministic. No wall-clock time is consulted anywhere.

use crate::app::VersionId;
use cex_core::rng::SplitMix64;
use cex_core::simtime::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Resilience policy for one caller→callee service edge.
///
/// The default policy is inert: no timeout, no retries, no breaker, no
/// fallback — attaching it changes nothing, which keeps the policy-free
/// and policy-present request paths comparable in benchmarks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CallPolicy {
    /// Per-attempt deadline. Attempts that take longer count as failures
    /// and the caller stops waiting at the deadline.
    pub attempt_timeout: Option<SimDuration>,
    /// Extra attempts after the first one fails (0 = no retries).
    pub max_retries: u32,
    /// Backoff before the first retry; later retries multiply it by
    /// [`CallPolicy::backoff_multiplier`] per attempt.
    pub backoff_base: SimDuration,
    /// Exponential growth factor for the backoff (>= 1).
    pub backoff_multiplier: f64,
    /// Jitter fraction in `0.0..=1.0`: each backoff is scaled by a
    /// factor drawn uniformly from `[1 - jitter, 1 + jitter]` using the
    /// sim RNG. Zero draws nothing from the RNG.
    pub jitter: f64,
    /// Circuit breaker configuration, if any.
    pub breaker: Option<BreakerPolicy>,
    /// Serve a degraded-but-successful response when the call is shed or
    /// every attempt failed.
    pub fallback: bool,
    /// Latency of the fallback response (cache read, static default).
    pub fallback_latency: SimDuration,
}

impl Default for CallPolicy {
    fn default() -> Self {
        CallPolicy {
            attempt_timeout: None,
            max_retries: 0,
            backoff_base: SimDuration::from_millis(50),
            backoff_multiplier: 2.0,
            jitter: 0.0,
            breaker: None,
            fallback: false,
            fallback_latency: SimDuration::from_millis(1),
        }
    }
}

impl CallPolicy {
    /// The backoff delay before retry number `retry` (0-based), with
    /// jitter drawn from `rng` when configured.
    ///
    /// The jitter factor is uniform in `[1 - jitter, 1 + jitter]`, the
    /// "equal jitter" scheme: it decorrelates retry storms without ever
    /// collapsing the delay to zero. With `jitter == 0.0` the RNG is not
    /// consumed at all, so policies without jitter do not perturb the
    /// workload's random stream.
    pub fn backoff_delay(&self, retry: u32, rng: &mut SplitMix64) -> SimDuration {
        let base = self.backoff_base.mul_f64(self.backoff_multiplier.powi(retry as i32));
        if self.jitter > 0.0 {
            let factor = 1.0 - self.jitter + 2.0 * self.jitter * rng.next_f64();
            base.mul_f64(factor)
        } else {
            base
        }
    }

    /// Validates domain constraints.
    ///
    /// # Panics
    ///
    /// Panics when the multiplier is below 1, the jitter is outside
    /// `0.0..=1.0`, or a breaker policy is itself invalid.
    pub fn validate(&self) {
        assert!(self.backoff_multiplier >= 1.0, "backoff must not shrink");
        assert!((0.0..=1.0).contains(&self.jitter), "jitter in 0..=1");
        if let Some(breaker) = &self.breaker {
            breaker.validate();
        }
    }
}

/// Circuit-breaker configuration for one call edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerPolicy {
    /// Rolling error rate at or above which the breaker opens.
    pub error_threshold: f64,
    /// Minimum outcomes in the rolling window before the threshold is
    /// consulted (avoids opening on one unlucky call).
    pub min_calls: u32,
    /// Rolling window size in outcomes (count-based, not time-based, so
    /// behaviour is independent of request rate units).
    pub window: u32,
    /// How long the breaker stays open before probing (half-open).
    pub cooldown: SimDuration,
    /// Consecutive half-open successes required to close again.
    pub half_open_probes: u32,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            error_threshold: 0.5,
            min_calls: 10,
            window: 50,
            cooldown: SimDuration::from_secs(10),
            half_open_probes: 3,
        }
    }
}

impl BreakerPolicy {
    /// Validates domain constraints.
    ///
    /// # Panics
    ///
    /// Panics when the threshold is outside `0.0..=1.0`, the window or
    /// probe count is zero, or the cooldown is zero.
    pub fn validate(&self) {
        assert!((0.0..=1.0).contains(&self.error_threshold), "threshold in 0..=1");
        assert!(self.window > 0, "window must hold at least one outcome");
        assert!(self.half_open_probes > 0, "need at least one probe");
        assert!(!self.cooldown.is_zero(), "cooldown must be positive");
    }
}

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BreakerState {
    /// Calls flow normally; outcomes feed the rolling window.
    Closed,
    /// Calls are shed without reaching the callee.
    Open,
    /// Cooldown elapsed; probe calls are let through one at a time.
    HalfOpen,
}

impl BreakerState {
    /// Canonical lowercase name, used by the execution journal.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Parses the name produced by [`BreakerState::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "closed" => BreakerState::Closed,
            "open" => BreakerState::Open,
            "half_open" => BreakerState::HalfOpen,
            _ => return None,
        })
    }
}

/// Whether a guarded call may proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallDecision {
    /// Execute the call (closed breaker, or a half-open probe).
    Allow,
    /// Shed the call without executing it (breaker open).
    Shed,
}

/// One state transition of one breaker, in occurrence order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerTransition {
    /// When the transition happened.
    pub time: SimTime,
    /// The calling version.
    pub caller: VersionId,
    /// The called version.
    pub callee: VersionId,
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
}

/// One circuit breaker: state machine plus rolling outcome window.
///
/// The window is a fixed-capacity ring of booleans (`true` = error) with
/// an incrementally maintained error count, so recording an outcome is
/// O(1) on the request hot path.
#[derive(Debug, Clone, PartialEq)]
pub struct Breaker {
    state: BreakerState,
    outcomes: Vec<bool>,
    next_slot: usize,
    errors: u32,
    opened_at: SimTime,
    half_open_successes: u32,
}

impl Breaker {
    fn new() -> Self {
        Breaker {
            state: BreakerState::Closed,
            outcomes: Vec::new(),
            next_slot: 0,
            errors: 0,
            opened_at: SimTime::ZERO,
            half_open_successes: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Rolling error rate over the current window, or `None` while the
    /// window is empty.
    pub fn error_rate(&self) -> Option<f64> {
        (!self.outcomes.is_empty()).then(|| self.errors as f64 / self.outcomes.len() as f64)
    }

    fn reset_window(&mut self) {
        self.outcomes.clear();
        self.next_slot = 0;
        self.errors = 0;
    }

    fn record_outcome(&mut self, policy: &BreakerPolicy, error: bool) {
        let cap = policy.window as usize;
        if self.outcomes.len() < cap {
            self.outcomes.push(error);
        } else {
            let evicted = std::mem::replace(&mut self.outcomes[self.next_slot], error);
            if evicted {
                self.errors -= 1;
            }
            self.next_slot = (self.next_slot + 1) % cap;
        }
        if error {
            self.errors += 1;
        }
    }

    /// Asks whether a call may proceed at `now`. A breaker whose
    /// cooldown has elapsed moves to half-open here (the transition is
    /// returned so the caller can record it).
    fn decide(
        &mut self,
        policy: &BreakerPolicy,
        now: SimTime,
    ) -> (CallDecision, Option<(BreakerState, BreakerState)>) {
        match self.state {
            BreakerState::Closed => (CallDecision::Allow, None),
            BreakerState::HalfOpen => (CallDecision::Allow, None),
            BreakerState::Open => {
                if now.saturating_since(self.opened_at) >= policy.cooldown {
                    self.state = BreakerState::HalfOpen;
                    self.half_open_successes = 0;
                    (CallDecision::Allow, Some((BreakerState::Open, BreakerState::HalfOpen)))
                } else {
                    (CallDecision::Shed, None)
                }
            }
        }
    }

    /// Feeds one call outcome observed at `now` (`error == true` for a
    /// failure or timeout). Returns the transition it caused, if any.
    fn on_outcome(
        &mut self,
        policy: &BreakerPolicy,
        now: SimTime,
        error: bool,
    ) -> Option<(BreakerState, BreakerState)> {
        match self.state {
            BreakerState::Closed => {
                self.record_outcome(policy, error);
                let total = self.outcomes.len() as u32;
                if total >= policy.min_calls
                    && self.errors as f64 / total as f64 >= policy.error_threshold
                {
                    self.state = BreakerState::Open;
                    self.opened_at = now;
                    self.reset_window();
                    Some((BreakerState::Closed, BreakerState::Open))
                } else {
                    None
                }
            }
            BreakerState::HalfOpen => {
                if error {
                    self.state = BreakerState::Open;
                    self.opened_at = now;
                    self.half_open_successes = 0;
                    Some((BreakerState::HalfOpen, BreakerState::Open))
                } else {
                    self.half_open_successes += 1;
                    if self.half_open_successes >= policy.half_open_probes {
                        self.state = BreakerState::Closed;
                        self.reset_window();
                        Some((BreakerState::HalfOpen, BreakerState::Closed))
                    } else {
                        None
                    }
                }
            }
            // Outcomes can land while open when a call admitted earlier
            // (e.g. a retry sequence straddling the opening) completes;
            // they are ignored so stale results cannot re-close a breaker.
            BreakerState::Open => None,
        }
    }
}

/// Which policy applies to which caller→callee *service* edge.
///
/// Breakers are still tracked per *version* pair — the plan only selects
/// the configuration. An empty plan is free: the executor skips the
/// resilience path entirely.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResiliencePlan {
    default: Option<CallPolicy>,
    edges: Vec<((usize, usize), CallPolicy)>,
}

impl ResiliencePlan {
    /// A plan with no policies (requests behave exactly as before).
    pub fn none() -> Self {
        ResiliencePlan::default()
    }

    /// A plan applying one policy to every service edge.
    pub fn with_default(policy: CallPolicy) -> Self {
        policy.validate();
        ResiliencePlan { default: Some(policy), edges: Vec::new() }
    }

    /// Sets the policy for one caller→callee service edge (overrides the
    /// default on that edge). Service ids are the `ServiceId` indices.
    pub fn set_edge(&mut self, caller: usize, callee: usize, policy: CallPolicy) -> &mut Self {
        policy.validate();
        if let Some(slot) = self.edges.iter_mut().find(|(edge, _)| *edge == (caller, callee)) {
            slot.1 = policy;
        } else {
            self.edges.push(((caller, callee), policy));
        }
        self
    }

    /// The policy governing one caller→callee service edge, if any.
    pub fn policy_for(&self, caller: usize, callee: usize) -> Option<&CallPolicy> {
        self.edges
            .iter()
            .find(|(edge, _)| *edge == (caller, callee))
            .map(|(_, p)| p)
            .or(self.default.as_ref())
    }

    /// `true` when no policy is configured anywhere.
    pub fn is_empty(&self) -> bool {
        self.default.is_none() && self.edges.is_empty()
    }
}

/// All mutable resilience state of one simulation: breakers per
/// (caller-version, callee-version) pair plus the transition log.
///
/// Owned by the [`Simulation`](crate::sim::Simulation) so breaker state
/// evolves deterministically with the request stream and survives across
/// windows — a breaker opened in one engine tick is still open in the
/// next.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResilienceState {
    breakers: BTreeMap<(VersionId, VersionId), Breaker>,
    transitions: Vec<BreakerTransition>,
}

impl ResilienceState {
    /// Fresh state: every breaker closed, no transitions.
    pub fn new() -> Self {
        ResilienceState::default()
    }

    /// The state of the breaker on one version edge, or `None` if that
    /// edge has never seen a guarded call.
    pub fn breaker_state(&self, caller: VersionId, callee: VersionId) -> Option<BreakerState> {
        self.breakers.get(&(caller, callee)).map(|b| b.state())
    }

    /// Drains the accumulated transitions in occurrence order.
    pub fn drain_transitions(&mut self) -> Vec<BreakerTransition> {
        std::mem::take(&mut self.transitions)
    }

    /// Scratch-buffer variant of [`ResilienceState::drain_transitions`]:
    /// clears `out` and moves the accumulated transitions into it, so
    /// steady-state drive loops reuse one allocation per tick.
    pub fn drain_transitions_into(&mut self, out: &mut Vec<BreakerTransition>) {
        out.clear();
        out.append(&mut self.transitions);
    }

    /// Moves all breakers out, leaving this state empty — the event core
    /// partitions them across worker shards by caller service.
    pub(crate) fn take_breakers(&mut self) -> BTreeMap<(VersionId, VersionId), Breaker> {
        std::mem::take(&mut self.breakers)
    }

    /// Re-inserts breakers previously moved out with
    /// [`ResilienceState::take_breakers`].
    pub(crate) fn absorb_breakers(&mut self, breakers: BTreeMap<(VersionId, VersionId), Breaker>) {
        for (key, breaker) in breakers {
            self.breakers.insert(key, breaker);
        }
    }

    /// Appends one transition to the log — the event core's canonical
    /// merge replays shard-local transitions in global event order.
    pub(crate) fn record_transition(&mut self, transition: BreakerTransition) {
        self.transitions.push(transition);
    }

    /// Transitions accumulated since the last drain.
    pub fn transitions(&self) -> &[BreakerTransition] {
        &self.transitions
    }

    /// Asks the breaker on `caller → callee` whether a call may proceed
    /// at `now`, creating the breaker on first use.
    pub fn decide(
        &mut self,
        caller: VersionId,
        callee: VersionId,
        policy: &BreakerPolicy,
        now: SimTime,
    ) -> CallDecision {
        let breaker = self.breakers.entry((caller, callee)).or_insert_with(Breaker::new);
        let (decision, transition) = breaker.decide(policy, now);
        if let Some((from, to)) = transition {
            self.transitions.push(BreakerTransition { time: now, caller, callee, from, to });
        }
        decision
    }

    /// Feeds one call outcome into the breaker on `caller → callee`.
    /// Returns the transition it caused, if any.
    pub fn on_outcome(
        &mut self,
        caller: VersionId,
        callee: VersionId,
        policy: &BreakerPolicy,
        now: SimTime,
        error: bool,
    ) -> Option<(BreakerState, BreakerState)> {
        let breaker = self.breakers.entry((caller, callee)).or_insert_with(Breaker::new);
        let transition = breaker.on_outcome(policy, now, error);
        if let Some((from, to)) = transition {
            self.transitions.push(BreakerTransition { time: now, caller, callee, from, to });
        }
        transition
    }

    /// Current state of the breaker on `caller → callee` without
    /// creating it (closed when it has never seen a call).
    pub fn current(&self, caller: VersionId, callee: VersionId) -> BreakerState {
        self.breaker_state(caller, callee).unwrap_or(BreakerState::Closed)
    }
}

/// Borrowed plan + state view handed to the executor for one request.
///
/// The split keeps the plan immutable (shared config) while the breaker
/// state mutates with the request stream.
#[derive(Debug)]
pub struct Resilience<'a> {
    /// Which policy applies to which service edge.
    pub plan: &'a ResiliencePlan,
    /// Mutable breaker state and transition log.
    pub state: &'a mut ResilienceState,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BreakerPolicy {
        BreakerPolicy {
            error_threshold: 0.5,
            min_calls: 4,
            window: 8,
            cooldown: SimDuration::from_secs(10),
            half_open_probes: 2,
        }
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn breaker_opens_at_threshold_after_min_calls() {
        let mut b = Breaker::new();
        let p = policy();
        // Three straight errors: below min_calls, must stay closed.
        for i in 0..3 {
            assert_eq!(b.on_outcome(&p, t(i), true), None);
            assert_eq!(b.state(), BreakerState::Closed);
        }
        // Fourth error reaches min_calls with 100% errors: opens.
        assert_eq!(b.on_outcome(&p, t(3), true), Some((BreakerState::Closed, BreakerState::Open)));
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn breaker_stays_closed_below_threshold() {
        let mut b = Breaker::new();
        let p = policy();
        // 2 errors in 8 calls = 25% < 50% at every prefix: stays closed.
        for i in 0..8 {
            b.on_outcome(&p, t(i), i % 4 == 1);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.error_rate(), Some(2.0 / 8.0));
    }

    #[test]
    fn rolling_window_evicts_old_outcomes() {
        let mut b = Breaker::new();
        let p = policy();
        // Fill the window with errors but stay one short of min_calls
        // each time the rate is consulted — impossible here, so instead:
        // fill with successes, then verify old successes rotate out.
        for i in 0..8 {
            b.on_outcome(&p, t(i), false);
        }
        assert_eq!(b.error_rate(), Some(0.0));
        // Four errors overwrite four successes: 4/8 = 50% >= threshold.
        for i in 8..11 {
            assert_eq!(b.on_outcome(&p, t(i), true), None);
        }
        assert_eq!(b.on_outcome(&p, t(11), true), Some((BreakerState::Closed, BreakerState::Open)));
    }

    #[test]
    fn open_sheds_until_cooldown_then_half_open_probes() {
        let mut b = Breaker::new();
        let p = policy();
        for i in 0..4 {
            b.on_outcome(&p, t(i), true);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Within cooldown: shed.
        assert_eq!(b.decide(&p, t(5)).0, CallDecision::Shed);
        assert_eq!(b.decide(&p, t(12)).0, CallDecision::Shed);
        // Cooldown (10s from t=3) elapsed: half-open, probe allowed.
        let (decision, transition) = b.decide(&p, t(13));
        assert_eq!(decision, CallDecision::Allow);
        assert_eq!(transition, Some((BreakerState::Open, BreakerState::HalfOpen)));
        // One success is not enough (2 probes required).
        assert_eq!(b.on_outcome(&p, t(13), false), None);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Second success closes.
        assert_eq!(
            b.on_outcome(&p, t(14), false),
            Some((BreakerState::HalfOpen, BreakerState::Closed))
        );
        assert_eq!(b.error_rate(), None, "window resets on close");
    }

    #[test]
    fn half_open_failure_reopens_and_restarts_cooldown() {
        let mut b = Breaker::new();
        let p = policy();
        for i in 0..4 {
            b.on_outcome(&p, t(i), true);
        }
        assert_eq!(b.decide(&p, t(13)).0, CallDecision::Allow);
        assert_eq!(
            b.on_outcome(&p, t(13), true),
            Some((BreakerState::HalfOpen, BreakerState::Open))
        );
        // Cooldown restarts from t=13: shed at t=20, probe at t=23.
        assert_eq!(b.decide(&p, t(20)).0, CallDecision::Shed);
        assert_eq!(b.decide(&p, t(23)).0, CallDecision::Allow);
    }

    #[test]
    fn outcomes_while_open_are_ignored() {
        let mut b = Breaker::new();
        let p = policy();
        for i in 0..4 {
            b.on_outcome(&p, t(i), true);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // A straggler success from a call admitted before opening must
        // not close the breaker.
        assert_eq!(b.on_outcome(&p, t(4), false), None);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn state_records_transitions_in_order_and_drains() {
        let mut state = ResilienceState::new();
        let p = policy();
        let (a, b) = (VersionId(0), VersionId(1));
        for i in 0..4 {
            state.on_outcome(a, b, &p, t(i), true);
        }
        assert_eq!(state.breaker_state(a, b), Some(BreakerState::Open));
        assert_eq!(state.decide(a, b, &p, t(13)), CallDecision::Allow);
        state.on_outcome(a, b, &p, t(13), false);
        state.on_outcome(a, b, &p, t(14), false);
        let transitions = state.drain_transitions();
        let shape: Vec<(BreakerState, BreakerState)> =
            transitions.iter().map(|tr| (tr.from, tr.to)).collect();
        assert_eq!(
            shape,
            vec![
                (BreakerState::Closed, BreakerState::Open),
                (BreakerState::Open, BreakerState::HalfOpen),
                (BreakerState::HalfOpen, BreakerState::Closed),
            ]
        );
        assert!(state.drain_transitions().is_empty(), "drain empties the log");
        assert_eq!(state.current(a, b), BreakerState::Closed);
    }

    #[test]
    fn plan_edge_overrides_default() {
        let default = CallPolicy { max_retries: 1, ..CallPolicy::default() };
        let edge = CallPolicy { max_retries: 5, ..CallPolicy::default() };
        let mut plan = ResiliencePlan::with_default(default);
        plan.set_edge(0, 1, edge);
        assert_eq!(plan.policy_for(0, 1).unwrap().max_retries, 5);
        assert_eq!(plan.policy_for(0, 2).unwrap().max_retries, 1);
        assert!(!plan.is_empty());
        assert!(ResiliencePlan::none().is_empty());
        assert_eq!(ResiliencePlan::none().policy_for(0, 1), None);
    }

    #[test]
    fn backoff_grows_exponentially_with_bounded_jitter() {
        let policy = CallPolicy {
            backoff_base: SimDuration::from_millis(100),
            backoff_multiplier: 2.0,
            jitter: 0.0,
            ..CallPolicy::default()
        };
        let mut rng = SplitMix64::new(1);
        assert_eq!(policy.backoff_delay(0, &mut rng), SimDuration::from_millis(100));
        assert_eq!(policy.backoff_delay(1, &mut rng), SimDuration::from_millis(200));
        assert_eq!(policy.backoff_delay(2, &mut rng), SimDuration::from_millis(400));

        let jittered = CallPolicy { jitter: 0.5, ..policy };
        let mut rng = SplitMix64::new(42);
        for retry in 0..10 {
            let base = 100.0 * 2f64.powi(retry);
            let delay = jittered.backoff_delay(retry as u32, &mut rng).as_millis() as f64;
            assert!(delay >= base * 0.5 - 1.0 && delay <= base * 1.5 + 1.0);
        }
    }

    #[test]
    fn backoff_without_jitter_leaves_rng_untouched() {
        let policy = CallPolicy { jitter: 0.0, ..CallPolicy::default() };
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        policy.backoff_delay(0, &mut a);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn breaker_state_names_round_trip() {
        for state in [BreakerState::Closed, BreakerState::Open, BreakerState::HalfOpen] {
            assert_eq!(BreakerState::from_name(state.name()), Some(state));
        }
        assert_eq!(BreakerState::from_name("ajar"), None);
    }

    #[test]
    #[should_panic(expected = "cooldown must be positive")]
    fn zero_cooldown_rejected() {
        BreakerPolicy { cooldown: SimDuration::ZERO, ..BreakerPolicy::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "jitter in 0..=1")]
    fn out_of_range_jitter_rejected() {
        CallPolicy { jitter: 1.5, ..CallPolicy::default() }.validate();
    }
}
