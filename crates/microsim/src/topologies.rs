//! Canned and generated application topologies.
//!
//! - [`case_study_app`] rebuilds the microservice case-study application the
//!   Bifrost evaluation runs against (Figure 4.5): an e-commerce platform
//!   with customer-facing frontend services and business-related backend
//!   services, matching the motivating AB Inc example of Chapter 1.
//! - [`recommendation_candidate`] is the experimental recommendation-service
//!   version that the motivating example canaries/A-B tests.
//! - [`random_app`] generates layered applications of arbitrary size for
//!   the scalability studies of Chapter 5 (service networks of up to 1,000
//!   microservices with 10 endpoints each — 10,000 endpoints).

use crate::app::{Application, CallDef, EndpointDef, VersionSpec};
use crate::latency::LatencyModel;
use cex_core::rng::SplitMix64;

/// The e-commerce case-study application (Figure 4.5).
///
/// Twelve services: `frontend` (entry: `home`, `product`, `checkout`,
/// `search_page`) calling `catalog`, `search`, `recommendation`, `reviews`,
/// `cart`, `payment`, `shipping`, `accounting`, and the data-tier services
/// `catalog-db`, `profile-store`, `orders-db`.
///
/// # Panics
///
/// Never panics: the topology is statically valid (covered by tests).
pub fn case_study_app() -> Application {
    let mut b = Application::builder();
    b.version(
        VersionSpec::new("frontend", "1.0.0")
            .capacity(800.0)
            .endpoint(
                EndpointDef::new("home", LatencyModel::web(5.0))
                    .call(CallDef::always("catalog", "list"))
                    .call(CallDef::with_probability("recommendation", "recommend", 0.8)),
            )
            .endpoint(
                EndpointDef::new("product", LatencyModel::web(4.0))
                    .call(CallDef::always("catalog", "get"))
                    .call(CallDef::with_probability("recommendation", "recommend", 0.5))
                    .call(CallDef::with_probability("reviews", "list", 0.9)),
            )
            .endpoint(
                EndpointDef::new("checkout", LatencyModel::web(6.0))
                    .call(CallDef::always("cart", "get"))
                    .call(CallDef::always("payment", "charge"))
                    .call(CallDef::always("shipping", "quote"))
                    .call(CallDef::always("accounting", "record")),
            )
            .endpoint(
                EndpointDef::new("search_page", LatencyModel::web(4.0))
                    .call(CallDef::always("search", "query")),
            ),
    );
    b.version(
        VersionSpec::new("catalog", "1.0.0")
            .capacity(600.0)
            .endpoint(
                EndpointDef::new("list", LatencyModel::web(8.0))
                    .call(CallDef::always("catalog-db", "query")),
            )
            .endpoint(
                EndpointDef::new("get", LatencyModel::web(6.0))
                    .call(CallDef::always("catalog-db", "query")),
            ),
    );
    b.version(
        VersionSpec::new("search", "1.0.0").capacity(400.0).endpoint(
            EndpointDef::new("query", LatencyModel::web(12.0))
                .call(CallDef::always("catalog-db", "query")),
        ),
    );
    b.version(
        VersionSpec::new("recommendation", "1.0.0").capacity(300.0).endpoint(
            EndpointDef::new("recommend", LatencyModel::web(10.0))
                .call(CallDef::always("profile-store", "get"))
                .call(CallDef::with_probability("catalog", "get", 0.7)),
        ),
    );
    b.version(
        VersionSpec::new("reviews", "1.0.0").capacity(400.0).endpoint(
            EndpointDef::new("list", LatencyModel::web(7.0))
                .call(CallDef::always("catalog-db", "query")),
        ),
    );
    b.version(
        VersionSpec::new("cart", "1.0.0")
            .capacity(500.0)
            .endpoint(EndpointDef::new("get", LatencyModel::web(5.0))),
    );
    b.version(
        VersionSpec::new("payment", "1.0.0")
            .capacity(300.0)
            .endpoint(EndpointDef::new("charge", LatencyModel::web(25.0)).error_rate(0.002)),
    );
    b.version(
        VersionSpec::new("shipping", "1.0.0").capacity(300.0).endpoint(
            EndpointDef::new("quote", LatencyModel::web(15.0))
                .call(CallDef::always("orders-db", "query")),
        ),
    );
    b.version(
        VersionSpec::new("accounting", "1.0.0").capacity(300.0).endpoint(
            EndpointDef::new("record", LatencyModel::web(9.0))
                .call(CallDef::always("orders-db", "insert")),
        ),
    );
    b.version(
        VersionSpec::new("catalog-db", "1.0.0")
            .capacity(1_500.0)
            .endpoint(EndpointDef::new("query", LatencyModel::web(3.0))),
    );
    b.version(
        VersionSpec::new("profile-store", "1.0.0")
            .capacity(800.0)
            .endpoint(EndpointDef::new("get", LatencyModel::web(4.0))),
    );
    b.version(
        VersionSpec::new("orders-db", "1.0.0")
            .capacity(1_000.0)
            .endpoint(EndpointDef::new("query", LatencyModel::web(3.0)))
            .endpoint(EndpointDef::new("insert", LatencyModel::web(5.0))),
    );
    b.build().expect("case-study topology is statically valid")
}

/// The experimental recommendation-service version of the motivating
/// example: richer recommendations (extra catalog call, higher own
/// latency), the change the AB Inc release engineer wants to canary.
pub fn recommendation_candidate() -> VersionSpec {
    VersionSpec::new("recommendation", "1.1.0").capacity(250.0).endpoint(
        EndpointDef::new("recommend", LatencyModel::web(12.0))
            .call(CallDef::always("profile-store", "get"))
            .call(CallDef::always("catalog", "get")),
    )
}

/// A deliberately broken candidate (inflated latency, elevated error
/// rate) used by rollback demonstrations and the health-assessment
/// scenarios.
pub fn recommendation_broken() -> VersionSpec {
    VersionSpec::new("recommendation", "1.1.1").capacity(100.0).endpoint(
        EndpointDef::new("recommend", LatencyModel::web(45.0))
            .error_rate(0.08)
            .call(CallDef::always("profile-store", "get"))
            .call(CallDef::always("catalog", "get")),
    )
}

/// Parameters for [`random_app`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomAppParams {
    /// Number of services.
    pub services: usize,
    /// Number of call-graph layers (≥ 2); layer 0 is the entry tier, the
    /// last layer is the data tier.
    pub layers: usize,
    /// Endpoints per service.
    pub endpoints_per_service: usize,
    /// Outgoing calls per endpoint (to the next layer; data tier has none).
    pub calls_per_endpoint: usize,
    /// Median own latency per endpoint in milliseconds.
    pub median_latency_ms: f64,
    /// Load-sensitivity coefficient `k` applied to every version (latency
    /// inflation `1 + k·u²`); `0.0` decouples latency from offered load,
    /// which the execution-core equivalence tests rely on.
    pub load_sensitivity: f64,
}

impl Default for RandomAppParams {
    fn default() -> Self {
        RandomAppParams {
            services: 20,
            layers: 4,
            endpoints_per_service: 3,
            calls_per_endpoint: 2,
            median_latency_ms: 8.0,
            load_sensitivity: 1.0,
        }
    }
}

/// Generates a layered random application.
///
/// Services are spread round-robin over `layers`; each endpoint of a
/// service in layer `l < layers-1` calls `calls_per_endpoint` random
/// endpoints of services in layer `l+1`. The result is a DAG, so request
/// execution always terminates.
///
/// # Panics
///
/// Panics when `services < layers` or `layers < 2` — such configurations
/// cannot form the layered shape.
pub fn random_app(params: &RandomAppParams, seed: u64) -> Application {
    assert!(params.layers >= 2, "need at least an entry and a data layer");
    assert!(params.services >= params.layers, "need at least one service per layer");
    let mut rng = SplitMix64::new(seed);
    let layer_of = |svc: usize| svc % params.layers;
    let services_in_layer = |layer: usize| -> Vec<usize> {
        (0..params.services).filter(|s| layer_of(*s) == layer).collect()
    };

    let mut b = Application::builder();
    for svc in 0..params.services {
        let layer = layer_of(svc);
        let mut spec = VersionSpec::new(format!("svc-{svc:04}"), "1.0.0")
            .capacity(500.0)
            .load_sensitivity(params.load_sensitivity);
        for ep in 0..params.endpoints_per_service {
            let jitter = 0.5 + rng.next_f64();
            let mut def = EndpointDef::new(
                format!("ep{ep}"),
                LatencyModel::web(params.median_latency_ms * jitter),
            );
            if layer + 1 < params.layers {
                let next = services_in_layer(layer + 1);
                for _ in 0..params.calls_per_endpoint {
                    let callee = next[(rng.next_f64() * next.len() as f64) as usize % next.len()];
                    let callee_ep = (rng.next_f64() * params.endpoints_per_service as f64) as usize
                        % params.endpoints_per_service;
                    def = def.call(CallDef::with_probability(
                        format!("svc-{callee:04}"),
                        format!("ep{callee_ep}"),
                        0.5 + 0.5 * rng.next_f64(),
                    ));
                }
            }
            spec = spec.endpoint(def);
        }
        b.version(spec);
    }
    b.build().expect("layered random topology is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;
    use crate::workload::{EntryPoint, Workload};
    use cex_core::simtime::SimDuration;
    use cex_core::users::Population;

    #[test]
    fn case_study_builds_and_validates() {
        let app = case_study_app();
        assert_eq!(app.service_count(), 12);
        assert!(app.endpoint_count() >= 15);
        app.validate().unwrap();
    }

    #[test]
    fn case_study_serves_all_frontend_endpoints() {
        let app = case_study_app();
        let fe = app.service_id("frontend").unwrap();
        let mut sim = Simulation::new(app, 11);
        let workload = Workload {
            population: Population::single("all", 10_000),
            rate_rps: 40.0,
            entries: vec![
                EntryPoint { service: fe, endpoint: "home".into(), weight: 4.0 },
                EntryPoint { service: fe, endpoint: "product".into(), weight: 3.0 },
                EntryPoint { service: fe, endpoint: "checkout".into(), weight: 1.0 },
                EntryPoint { service: fe, endpoint: "search_page".into(), weight: 2.0 },
            ],
            profile: crate::workload::RateProfile::Constant,
        };
        let report = sim.run_with(SimDuration::from_secs(30), &workload);
        assert!(report.requests > 800);
        assert!(report.response_time.mean > 10.0);
        assert!(report.error_rate() < 0.02);
    }

    #[test]
    fn candidates_deploy_cleanly() {
        let mut app = case_study_app();
        app.deploy(recommendation_candidate()).unwrap();
        app.deploy(recommendation_broken()).unwrap();
        app.validate().unwrap();
        let rec = app.service_id("recommendation").unwrap();
        assert_eq!(app.versions_of(rec).len(), 3);
    }

    #[test]
    fn random_app_scales_and_terminates() {
        let params = RandomAppParams { services: 50, layers: 5, ..Default::default() };
        let app = random_app(&params, 99);
        assert_eq!(app.service_count(), 50);
        app.validate().unwrap();
        // Entry-layer service must be executable end to end.
        let mut sim = Simulation::new(app, 3);
        let report = sim.run(SimDuration::from_secs(5), 20.0);
        assert!(report.requests > 0);
    }

    #[test]
    fn random_app_is_deterministic() {
        let params = RandomAppParams::default();
        assert_eq!(random_app(&params, 1), random_app(&params, 1));
        assert_ne!(random_app(&params, 1), random_app(&params, 2));
    }

    #[test]
    #[should_panic(expected = "at least one service per layer")]
    fn random_app_rejects_too_few_services() {
        random_app(&RandomAppParams { services: 2, layers: 4, ..Default::default() }, 1);
    }
}
