//! The static application model: services, versions, endpoints, call graph.
//!
//! A simulated application is a set of **services**; each service has one or
//! more deployed **versions** (the unit of experimentation — a canary
//! deploys a new version next to the stable one); each version exposes
//! **endpoints**; each endpoint has a latency model, an error rate, and a
//! list of probabilistic **outgoing calls** to endpoints of other services.
//! Which *version* of a callee serves a call is decided at request time by
//! the [`crate::routing::Router`] — exactly the black-box,
//! network-level experimentation model the paper advocates
//! (Section 1.2.1, "Escaping Feature Toggles").

use crate::error::SimError;
use crate::latency::LatencyModel;
use std::collections::HashMap;
use std::fmt;

/// Index of a service within an [`Application`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServiceId(pub usize);

/// Index of a deployed service version within an [`Application`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VersionId(pub usize);

/// Index of an endpoint within an [`Application`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EndpointId(pub usize);

impl fmt::Display for ServiceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for VersionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// A probabilistic outgoing call from one endpoint to another service's
/// endpoint. The callee *version* is resolved by the router per request.
#[derive(Debug, Clone, PartialEq)]
pub struct CallDef {
    /// Callee service name.
    pub service: String,
    /// Callee endpoint name.
    pub endpoint: String,
    /// Probability the call is made on a given request (`0.0..=1.0`).
    pub probability: f64,
}

impl CallDef {
    /// An unconditional call.
    pub fn always(service: impl Into<String>, endpoint: impl Into<String>) -> Self {
        CallDef { service: service.into(), endpoint: endpoint.into(), probability: 1.0 }
    }

    /// A call made with the given probability.
    pub fn with_probability(
        service: impl Into<String>,
        endpoint: impl Into<String>,
        probability: f64,
    ) -> Self {
        CallDef { service: service.into(), endpoint: endpoint.into(), probability }
    }
}

/// Definition of one endpoint of one service version.
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointDef {
    /// Endpoint name, unique within its version.
    pub name: String,
    /// Own service-time distribution (excluding downstream calls).
    pub latency: LatencyModel,
    /// Probability a request fails at this endpoint itself.
    pub error_rate: f64,
    /// Outgoing calls issued while serving a request.
    pub calls: Vec<CallDef>,
}

impl EndpointDef {
    /// Creates an endpoint with no errors and no outgoing calls.
    pub fn new(name: impl Into<String>, latency: LatencyModel) -> Self {
        EndpointDef { name: name.into(), latency, error_rate: 0.0, calls: Vec::new() }
    }

    /// Sets the intrinsic error rate.
    pub fn error_rate(mut self, rate: f64) -> Self {
        self.error_rate = rate;
        self
    }

    /// Adds an outgoing call.
    pub fn call(mut self, call: CallDef) -> Self {
        self.calls.push(call);
        self
    }
}

/// Definition of one deployable version of a service.
#[derive(Debug, Clone, PartialEq)]
pub struct VersionSpec {
    /// Owning service name (created on first use).
    pub service: String,
    /// Version label, e.g. `"1.4.0"`.
    pub version: String,
    /// Sustainable request rate before latency inflation kicks in.
    pub capacity_rps: f64,
    /// How strongly load inflates latency (see [`crate::load`]); `0.0`
    /// disables inflation for this version.
    pub load_sensitivity: f64,
    /// Probability a user-facing request on this version converts — the
    /// business metric A/B tests compare (recorded at entry hops only).
    pub conversion_rate: f64,
    /// Maximum requests this version serves concurrently under the
    /// event-driven core; `None` means unlimited (the closed-loop model).
    pub concurrency_limit: Option<u32>,
    /// Admission-queue depth once all concurrency slots are busy; `None`
    /// means unbounded. Arrivals beyond a full queue are shed.
    pub queue_capacity: Option<u32>,
    /// Availability-zone label (cell, rack, region): versions sharing a
    /// zone fail together under correlated faults such as a zone outage.
    pub zone: Option<String>,
    /// The endpoints this version exposes.
    pub endpoints: Vec<EndpointDef>,
}

impl VersionSpec {
    /// Creates a version with default capacity (200 rps) and sensitivity.
    pub fn new(service: impl Into<String>, version: impl Into<String>) -> Self {
        VersionSpec {
            service: service.into(),
            version: version.into(),
            capacity_rps: 200.0,
            load_sensitivity: 1.0,
            conversion_rate: 0.02,
            concurrency_limit: None,
            queue_capacity: None,
            zone: None,
            endpoints: Vec::new(),
        }
    }

    /// Sets the conversion rate observed on user-facing requests.
    pub fn conversion_rate(mut self, rate: f64) -> Self {
        self.conversion_rate = rate;
        self
    }

    /// Sets the capacity in requests per second.
    pub fn capacity(mut self, rps: f64) -> Self {
        self.capacity_rps = rps;
        self
    }

    /// Sets the load sensitivity.
    pub fn load_sensitivity(mut self, k: f64) -> Self {
        self.load_sensitivity = k;
        self
    }

    /// Caps the number of requests served concurrently (event core).
    pub fn concurrency_limit(mut self, slots: u32) -> Self {
        self.concurrency_limit = Some(slots);
        self
    }

    /// Bounds the admission queue; arrivals beyond it are shed.
    pub fn queue_capacity(mut self, depth: u32) -> Self {
        self.queue_capacity = Some(depth);
        self
    }

    /// Places the version in an availability zone.
    pub fn zone(mut self, zone: impl Into<String>) -> Self {
        self.zone = Some(zone.into());
        self
    }

    /// Adds an endpoint.
    pub fn endpoint(mut self, ep: EndpointDef) -> Self {
        self.endpoints.push(ep);
        self
    }
}

/// Resolved outgoing call (service name interned).
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedCall {
    /// Callee service.
    pub service: ServiceId,
    /// Callee endpoint name (version-resolved at request time).
    pub endpoint: String,
    /// Call probability.
    pub probability: f64,
}

/// A deployed endpoint with its resolved call list.
#[derive(Debug, Clone, PartialEq)]
pub struct Endpoint {
    /// Owning version.
    pub version: VersionId,
    /// Endpoint name.
    pub name: String,
    /// Own latency model.
    pub latency: LatencyModel,
    /// Intrinsic error rate.
    pub error_rate: f64,
    /// Resolved outgoing calls.
    pub calls: Vec<ResolvedCall>,
}

/// A deployed service version.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceVersion {
    /// Owning service.
    pub service: ServiceId,
    /// Version label.
    pub label: String,
    /// Capacity in requests per second.
    pub capacity_rps: f64,
    /// Load sensitivity.
    pub load_sensitivity: f64,
    /// Conversion probability on user-facing requests.
    pub conversion_rate: f64,
    /// Concurrency cap under the event core (`None` = unlimited).
    pub concurrency_limit: Option<u32>,
    /// Admission-queue depth (`None` = unbounded).
    pub queue_capacity: Option<u32>,
    /// Availability-zone label, when the version was placed in one.
    pub zone: Option<String>,
    /// Endpoint ids, sorted by endpoint name.
    pub endpoints: Vec<EndpointId>,
}

/// The immutable application: interned services, versions, endpoints.
///
/// Build with [`Application::builder`]; extend a built application with
/// [`Application::deploy`] (experiments deploy new versions at runtime).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Application {
    service_names: Vec<String>,
    versions: Vec<ServiceVersion>,
    endpoints: Vec<Endpoint>,
    /// `versions_of[service.0]` lists deployed versions, in deploy order —
    /// the first one is the service's stable/baseline version.
    versions_of: Vec<Vec<VersionId>>,
}

impl Application {
    /// Starts building an application.
    pub fn builder() -> AppBuilder {
        AppBuilder { specs: Vec::new() }
    }

    /// Number of services.
    pub fn service_count(&self) -> usize {
        self.service_names.len()
    }

    /// Number of deployed versions across all services.
    pub fn version_count(&self) -> usize {
        self.versions.len()
    }

    /// Number of endpoints across all versions.
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Resolves a service name.
    pub fn service_id(&self, name: &str) -> Result<ServiceId, SimError> {
        self.service_names
            .iter()
            .position(|n| n == name)
            .map(ServiceId)
            .ok_or_else(|| SimError::UnknownService(name.to_string()))
    }

    /// The name of a service.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn service_name(&self, id: ServiceId) -> &str {
        &self.service_names[id.0]
    }

    /// All deployed versions of a service, in deploy order.
    pub fn versions_of(&self, service: ServiceId) -> &[VersionId] {
        &self.versions_of[service.0]
    }

    /// The stable (first-deployed) version of a service.
    ///
    /// # Panics
    ///
    /// Panics if the service has no versions (impossible for a built app).
    pub fn baseline_of(&self, service: ServiceId) -> VersionId {
        self.versions_of[service.0][0]
    }

    /// Resolves a `(service, label)` pair to a version.
    pub fn version_id(&self, service: &str, label: &str) -> Result<VersionId, SimError> {
        let sid = self.service_id(service)?;
        self.versions_of[sid.0]
            .iter()
            .copied()
            .find(|v| self.versions[v.0].label == label)
            .ok_or_else(|| SimError::UnknownVersion {
                service: service.to_string(),
                version: label.to_string(),
            })
    }

    /// The version record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn version(&self, id: VersionId) -> &ServiceVersion {
        &self.versions[id.0]
    }

    /// The endpoint record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn endpoint(&self, id: EndpointId) -> &Endpoint {
        &self.endpoints[id.0]
    }

    /// Looks up the endpoint named `name` on version `version`.
    pub fn endpoint_of(&self, version: VersionId, name: &str) -> Result<EndpointId, SimError> {
        let v = &self.versions[version.0];
        v.endpoints.iter().copied().find(|e| self.endpoints[e.0].name == name).ok_or_else(|| {
            SimError::UnknownEndpoint {
                service: self.service_names[v.service.0].clone(),
                endpoint: name.to_string(),
            }
        })
    }

    /// Iterates over all services.
    pub fn services(&self) -> impl Iterator<Item = (ServiceId, &str)> {
        self.service_names.iter().enumerate().map(|(i, n)| (ServiceId(i), n.as_str()))
    }

    /// Iterates over all deployed versions.
    pub fn versions(&self) -> impl Iterator<Item = (VersionId, &ServiceVersion)> {
        self.versions.iter().enumerate().map(|(i, v)| (VersionId(i), v))
    }

    /// Human-readable `service@label` description of a version.
    pub fn version_label(&self, id: VersionId) -> String {
        let v = &self.versions[id.0];
        format!("{}@{}", self.service_names[v.service.0], v.label)
    }

    /// Distinct availability-zone labels across deployed versions, sorted.
    pub fn zones(&self) -> Vec<&str> {
        let mut zones: Vec<&str> = self.versions.iter().filter_map(|v| v.zone.as_deref()).collect();
        zones.sort_unstable();
        zones.dedup();
        zones
    }

    /// All versions placed in `zone`, in deployment order — the blast
    /// radius of a correlated zone fault.
    pub fn versions_in_zone(&self, zone: &str) -> Vec<VersionId> {
        (0..self.versions.len())
            .map(VersionId)
            .filter(|v| self.versions[v.0].zone.as_deref() == Some(zone))
            .collect()
    }

    /// Deploys an additional version into a built application, as an
    /// experiment would at runtime.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the spec is invalid (duplicate version,
    /// unknown callee, bad probabilities).
    pub fn deploy(&mut self, spec: VersionSpec) -> Result<VersionId, SimError> {
        // Create the service on first use.
        let sid = match self.service_id(&spec.service) {
            Ok(id) => id,
            Err(_) => {
                self.service_names.push(spec.service.clone());
                self.versions_of.push(Vec::new());
                ServiceId(self.service_names.len() - 1)
            }
        };
        if self.versions_of[sid.0].iter().any(|v| self.versions[v.0].label == spec.version) {
            return Err(SimError::BadApplication(format!(
                "version {} of service {} already deployed",
                spec.version, spec.service
            )));
        }
        validate_spec(&spec)?;
        let vid = VersionId(self.versions.len());
        let mut endpoint_ids = Vec::with_capacity(spec.endpoints.len());
        for ep in &spec.endpoints {
            let mut calls = Vec::with_capacity(ep.calls.len());
            for call in &ep.calls {
                // Callee services may be deployed later; intern eagerly.
                let callee = match self.service_id(&call.service) {
                    Ok(id) => id,
                    Err(_) => {
                        self.service_names.push(call.service.clone());
                        self.versions_of.push(Vec::new());
                        ServiceId(self.service_names.len() - 1)
                    }
                };
                calls.push(ResolvedCall {
                    service: callee,
                    endpoint: call.endpoint.clone(),
                    probability: call.probability,
                });
            }
            let eid = EndpointId(self.endpoints.len());
            self.endpoints.push(Endpoint {
                version: vid,
                name: ep.name.clone(),
                latency: ep.latency,
                error_rate: ep.error_rate,
                calls,
            });
            endpoint_ids.push(eid);
        }
        self.versions.push(ServiceVersion {
            service: sid,
            label: spec.version.clone(),
            capacity_rps: spec.capacity_rps,
            load_sensitivity: spec.load_sensitivity,
            conversion_rate: spec.conversion_rate,
            concurrency_limit: spec.concurrency_limit,
            queue_capacity: spec.queue_capacity,
            zone: spec.zone.clone(),
            endpoints: endpoint_ids,
        });
        self.versions_of[sid.0].push(vid);
        Ok(vid)
    }

    /// Verifies that every call target resolves on at least one deployed
    /// version of the callee, and that every service has at least one
    /// version. Called by [`AppBuilder::build`]; callable again after
    /// [`Application::deploy`].
    pub fn validate(&self) -> Result<(), SimError> {
        for (sid, versions) in self.versions_of.iter().enumerate() {
            if versions.is_empty() {
                return Err(SimError::BadApplication(format!(
                    "service {} referenced but never deployed",
                    self.service_names[sid]
                )));
            }
        }
        for ep in &self.endpoints {
            for call in &ep.calls {
                let found = self.versions_of[call.service.0].iter().any(|v| {
                    self.versions[v.0]
                        .endpoints
                        .iter()
                        .any(|e| self.endpoints[e.0].name == call.endpoint)
                });
                if !found {
                    return Err(SimError::UnknownEndpoint {
                        service: self.service_names[call.service.0].clone(),
                        endpoint: call.endpoint.clone(),
                    });
                }
            }
        }
        Ok(())
    }
}

fn validate_spec(spec: &VersionSpec) -> Result<(), SimError> {
    if spec.endpoints.is_empty() {
        return Err(SimError::BadApplication(format!(
            "version {}@{} has no endpoints",
            spec.service, spec.version
        )));
    }
    if spec.capacity_rps <= 0.0 || spec.capacity_rps.is_nan() {
        return Err(SimError::BadApplication("capacity must be positive".into()));
    }
    if !(0.0..=1.0).contains(&spec.conversion_rate) {
        return Err(SimError::BadApplication("conversion rate must be in 0.0..=1.0".into()));
    }
    if spec.concurrency_limit == Some(0) {
        return Err(SimError::BadApplication("concurrency limit must be at least 1".into()));
    }
    let mut seen = HashMap::new();
    for ep in &spec.endpoints {
        if seen.insert(ep.name.clone(), ()).is_some() {
            return Err(SimError::BadApplication(format!(
                "duplicate endpoint {} on {}@{}",
                ep.name, spec.service, spec.version
            )));
        }
        if !(0.0..=1.0).contains(&ep.error_rate) {
            return Err(SimError::BadApplication(format!(
                "error rate {} out of range on endpoint {}",
                ep.error_rate, ep.name
            )));
        }
        for call in &ep.calls {
            if !(0.0..=1.0).contains(&call.probability) {
                return Err(SimError::BadApplication(format!(
                    "call probability {} out of range on endpoint {}",
                    call.probability, ep.name
                )));
            }
            if call.service == spec.service {
                return Err(SimError::BadApplication(format!(
                    "endpoint {} calls its own service; self-calls are not supported",
                    ep.name
                )));
            }
        }
    }
    Ok(())
}

/// Builder accumulating [`VersionSpec`]s and producing a validated
/// [`Application`].
#[derive(Debug, Clone, Default)]
pub struct AppBuilder {
    specs: Vec<VersionSpec>,
}

impl AppBuilder {
    /// Adds a version to deploy.
    pub fn version(&mut self, spec: VersionSpec) -> &mut Self {
        self.specs.push(spec);
        self
    }

    /// Builds and validates the application.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for structural problems: duplicate versions,
    /// unresolvable call targets, invalid rates/probabilities, services
    /// that are referenced but never deployed.
    pub fn build(&self) -> Result<Application, SimError> {
        let mut app = Application::default();
        for spec in &self.specs {
            app.deploy(spec.clone())?;
        }
        app.validate()?;
        Ok(app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tier() -> Application {
        let mut b = Application::builder();
        b.version(
            VersionSpec::new("frontend", "1.0.0").endpoint(
                EndpointDef::new("home", LatencyModel::Constant { ms: 5.0 })
                    .call(CallDef::always("backend", "api")),
            ),
        );
        b.version(
            VersionSpec::new("backend", "1.0.0")
                .endpoint(EndpointDef::new("api", LatencyModel::Constant { ms: 10.0 })),
        );
        b.build().unwrap()
    }

    #[test]
    fn build_and_lookup() {
        let app = two_tier();
        assert_eq!(app.service_count(), 2);
        assert_eq!(app.version_count(), 2);
        assert_eq!(app.endpoint_count(), 2);
        let fe = app.service_id("frontend").unwrap();
        assert_eq!(app.service_name(fe), "frontend");
        let v = app.version_id("frontend", "1.0.0").unwrap();
        assert_eq!(app.baseline_of(fe), v);
        assert_eq!(app.version_label(v), "frontend@1.0.0");
        let ep = app.endpoint_of(v, "home").unwrap();
        assert_eq!(app.endpoint(ep).calls.len(), 1);
    }

    #[test]
    fn unknown_names_error() {
        let app = two_tier();
        assert!(matches!(app.service_id("db"), Err(SimError::UnknownService(_))));
        assert!(matches!(
            app.version_id("frontend", "9.9.9"),
            Err(SimError::UnknownVersion { .. })
        ));
        let v = app.version_id("frontend", "1.0.0").unwrap();
        assert!(matches!(app.endpoint_of(v, "nope"), Err(SimError::UnknownEndpoint { .. })));
    }

    #[test]
    fn duplicate_version_rejected() {
        let mut app = two_tier();
        let err = app
            .deploy(
                VersionSpec::new("backend", "1.0.0")
                    .endpoint(EndpointDef::new("api", LatencyModel::default())),
            )
            .unwrap_err();
        assert!(matches!(err, SimError::BadApplication(_)));
    }

    #[test]
    fn deploy_adds_candidate_version() {
        let mut app = two_tier();
        let vid = app
            .deploy(
                VersionSpec::new("backend", "1.1.0")
                    .endpoint(EndpointDef::new("api", LatencyModel::Constant { ms: 8.0 })),
            )
            .unwrap();
        let be = app.service_id("backend").unwrap();
        assert_eq!(app.versions_of(be).len(), 2);
        assert_ne!(app.baseline_of(be), vid);
        app.validate().unwrap();
    }

    #[test]
    fn dangling_callee_fails_validation() {
        let mut b = Application::builder();
        b.version(VersionSpec::new("frontend", "1.0.0").endpoint(
            EndpointDef::new("home", LatencyModel::default()).call(CallDef::always("ghost", "api")),
        ));
        assert!(b.build().is_err());
    }

    #[test]
    fn missing_callee_endpoint_fails_validation() {
        let mut b = Application::builder();
        b.version(
            VersionSpec::new("frontend", "1.0.0").endpoint(
                EndpointDef::new("home", LatencyModel::default())
                    .call(CallDef::always("backend", "missing")),
            ),
        );
        b.version(
            VersionSpec::new("backend", "1.0.0")
                .endpoint(EndpointDef::new("api", LatencyModel::default())),
        );
        let err = b.build().unwrap_err();
        assert!(matches!(err, SimError::UnknownEndpoint { .. }));
    }

    #[test]
    fn bad_rates_rejected() {
        let mut b = Application::builder();
        b.version(
            VersionSpec::new("a", "1")
                .endpoint(EndpointDef::new("e", LatencyModel::default()).error_rate(1.5)),
        );
        assert!(b.build().is_err());

        let mut b = Application::builder();
        b.version(
            VersionSpec::new("a", "1")
                .capacity(0.0)
                .endpoint(EndpointDef::new("e", LatencyModel::default())),
        );
        assert!(b.build().is_err());
    }

    #[test]
    fn self_call_rejected() {
        let mut b = Application::builder();
        b.version(VersionSpec::new("a", "1").endpoint(
            EndpointDef::new("e", LatencyModel::default()).call(CallDef::always("a", "e")),
        ));
        assert!(b.build().is_err());
    }

    #[test]
    fn duplicate_endpoint_rejected() {
        let mut b = Application::builder();
        b.version(
            VersionSpec::new("a", "1")
                .endpoint(EndpointDef::new("e", LatencyModel::default()))
                .endpoint(EndpointDef::new("e", LatencyModel::default())),
        );
        assert!(b.build().is_err());
    }

    #[test]
    fn empty_version_rejected() {
        let mut b = Application::builder();
        b.version(VersionSpec::new("a", "1"));
        assert!(b.build().is_err());
    }
}
