//! Fault injection: controlled degradation windows.
//!
//! The evaluation scenarios of Chapter 5 "introduced sub-scenarios
//! involving simulated performance issues" (Section 1.4.3), and testing
//! Bifrost's fallback behaviour requires failures that strike *mid-
//! experiment*. A [`FaultPlan`] schedules per-version degradation windows
//! — latency spikes, error bursts, outages — that the request executor
//! applies on top of the normal latency/error models.
//!
//! # Lookup cost
//!
//! [`FaultPlan::effects`] runs on every hop of every request, so a plan
//! with many windows must not pay for the inactive ones. Windows are
//! kept per version, sorted by start time, behind a time cursor that
//! skips everything already expired: for the (near-)monotone query
//! streams the executor produces, a lookup touches only the windows that
//! are active or about to start, independent of how many have expired.

use crate::app::VersionId;
use cex_core::simtime::SimTime;
use std::cell::Cell;

/// What kind of degradation a fault inflicts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Service times multiplied by this factor.
    LatencySpike {
        /// Latency multiplier (> 1).
        multiplier: f64,
    },
    /// Additional failure probability on every hop.
    ErrorBurst {
        /// Extra error rate in `0.0..=1.0`.
        extra_error_rate: f64,
    },
    /// Every request to the version fails.
    Outage,
}

/// One scheduled fault window on one deployed version.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// The afflicted version.
    pub version: VersionId,
    /// Degradation kind.
    pub kind: FaultKind,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

/// Combined fault effects at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEffects {
    /// Multiplier applied to sampled service times.
    pub latency_multiplier: f64,
    /// Extra failure probability added to the endpoint's own error rate.
    /// Overlapping bursts and outages *sum*, so this can exceed `1.0`;
    /// the executor clamps the combined probability once at the point of
    /// use (see `exec.rs`).
    pub extra_error_rate: f64,
}

impl FaultEffects {
    /// No fault active.
    pub const NONE: FaultEffects = FaultEffects { latency_multiplier: 1.0, extra_error_rate: 0.0 };
}

/// The windows afflicting one version, sorted by start time, with a
/// cursor marking how many leading windows have already expired.
///
/// The cursor is interior-mutable cache state: advancing it during a
/// read does not change what `effects` returns, only how fast it gets
/// there, so lookups can stay `&self`.
#[derive(Debug, Clone, Default)]
struct VersionWindows {
    /// Sorted by `from` (ties keep insertion order).
    windows: Vec<Fault>,
    /// `prefix_max_until[i]` = max `until` over `windows[..=i]`; monotone
    /// non-decreasing, so "everything before the cursor has expired" is
    /// exactly `prefix_max_until[cursor - 1] <= now`.
    prefix_max_until: Vec<SimTime>,
    /// Every index below the cursor has `until <= now` for the last
    /// queried `now`.
    cursor: Cell<usize>,
}

impl VersionWindows {
    fn insert(&mut self, fault: Fault) {
        let at = self.windows.partition_point(|w| w.from <= fault.from);
        self.windows.insert(at, fault);
        self.prefix_max_until.clear();
        let mut max = SimTime::ZERO;
        for w in &self.windows {
            max = max.max(w.until);
            self.prefix_max_until.push(max);
        }
        // The new window may start before the cursor's notion of "all
        // expired"; restart from the front (queries re-advance cheaply).
        self.cursor.set(0);
    }

    fn apply(&self, now: SimTime, effects: &mut FaultEffects) {
        // The executor's query times are *mostly* monotone but not
        // strictly so (a later request's shallow hop can predate an
        // earlier request's deep subtree), so first rewind the cursor
        // while its invariant (everything before it has expired) is
        // violated, then advance it over newly expired windows. The
        // prefix maximum makes the rewind exact: a long window hiding
        // behind later, already-expired short ones is still found.
        let mut cursor = self.cursor.get();
        while cursor > 0 && self.prefix_max_until[cursor - 1] > now {
            cursor -= 1;
        }
        while cursor < self.windows.len() && self.windows[cursor].until <= now {
            cursor += 1;
        }
        self.cursor.set(cursor);
        // Windows are sorted by start: stop at the first one that has
        // not started yet. Expired windows inside the scan range (long
        // window before short window) are filtered by the `until` check.
        for fault in self.windows[cursor..].iter().take_while(|f| f.from <= now) {
            if now >= fault.until {
                continue;
            }
            match fault.kind {
                FaultKind::LatencySpike { multiplier } => {
                    effects.latency_multiplier *= multiplier;
                }
                FaultKind::ErrorBurst { extra_error_rate } => {
                    effects.extra_error_rate += extra_error_rate;
                }
                FaultKind::Outage => {
                    effects.extra_error_rate += 1.0;
                }
            }
        }
    }
}

/// A schedule of fault windows.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    /// Indexed by `VersionId`; the same windows as `faults`, grouped and
    /// sorted for O(active) lookup.
    by_version: Vec<VersionWindows>,
}

/// Plans are equal when they schedule the same faults; the per-version
/// index and its cursors are derived cache state.
impl PartialEq for FaultPlan {
    fn eq(&self, other: &Self) -> bool {
        self.faults == other.faults
    }
}

impl FaultPlan {
    /// An empty plan (no faults ever).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault window.
    ///
    /// # Panics
    ///
    /// Panics when the window is empty (`until <= from`) or a multiplier/
    /// rate is out of domain.
    pub fn inject(&mut self, fault: Fault) -> &mut Self {
        assert!(fault.from < fault.until, "fault window must be non-empty");
        match fault.kind {
            FaultKind::LatencySpike { multiplier } => {
                assert!(multiplier >= 1.0, "latency spike must not speed things up")
            }
            FaultKind::ErrorBurst { extra_error_rate } => {
                assert!((0.0..=1.0).contains(&extra_error_rate), "error rate in 0..=1")
            }
            FaultKind::Outage => {}
        }
        self.faults.push(fault);
        if self.by_version.len() <= fault.version.0 {
            self.by_version.resize_with(fault.version.0 + 1, VersionWindows::default);
        }
        self.by_version[fault.version.0].insert(fault);
        self
    }

    /// All scheduled faults, in injection order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// `true` when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The combined effects on `version` at time `now`. Overlapping
    /// windows compose: latency multipliers multiply, error rates add
    /// *without* capping — the executor clamps the final combined
    /// probability once at the point of use.
    pub fn effects(&self, version: VersionId, now: SimTime) -> FaultEffects {
        let mut effects = FaultEffects::NONE;
        if let Some(windows) = self.by_version.get(version.0) {
            windows.apply(now, &mut effects);
        }
        effects
    }
}

/// Correlated fault: every version in `versions` suffers a full outage
/// over the same `[from, until)` window — the blast radius of losing an
/// availability zone. Returns one [`Fault`] per version, in input order.
///
/// # Panics
///
/// Panics when the window is empty (`until <= from`).
pub fn zone_outage(versions: &[VersionId], from: SimTime, until: SimTime) -> Vec<Fault> {
    assert!(from < until, "fault window must be non-empty");
    versions
        .iter()
        .map(|&version| Fault { version, kind: FaultKind::Outage, from, until })
        .collect()
}

/// Correlated fault: a cascading latency-spike storm across `versions`.
/// The first version's spike starts at `from`; each subsequent version
/// joins one stagger step later (the slowdown propagating through the
/// zone); every window ends together at `until`. The stagger is
/// `(until - from) / (2 * versions.len())`, so even the last victim
/// suffers at least half the window.
///
/// # Panics
///
/// Panics when the window is empty or `multiplier < 1`.
pub fn latency_storm(
    versions: &[VersionId],
    multiplier: f64,
    from: SimTime,
    until: SimTime,
) -> Vec<Fault> {
    assert!(from < until, "fault window must be non-empty");
    assert!(multiplier >= 1.0, "latency spike must not speed things up");
    let window = until.saturating_since(from);
    let stagger = window.mul_f64(1.0 / (2 * versions.len().max(1)) as f64);
    versions
        .iter()
        .enumerate()
        .map(|(i, &version)| Fault {
            version,
            kind: FaultKind::LatencySpike { multiplier },
            from: from + stagger.mul_f64(i as f64),
            until,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cex_core::rng::SplitMix64;

    fn window(from_s: u64, until_s: u64, kind: FaultKind) -> Fault {
        Fault {
            version: VersionId(0),
            kind,
            from: SimTime::from_secs(from_s),
            until: SimTime::from_secs(until_s),
        }
    }

    /// The original O(all-faults) scan `effects` is checked against.
    fn naive_effects(plan: &FaultPlan, version: VersionId, now: SimTime) -> FaultEffects {
        let mut effects = FaultEffects::NONE;
        for fault in plan.faults() {
            if fault.version != version || now < fault.from || now >= fault.until {
                continue;
            }
            match fault.kind {
                FaultKind::LatencySpike { multiplier } => effects.latency_multiplier *= multiplier,
                FaultKind::ErrorBurst { extra_error_rate } => {
                    effects.extra_error_rate += extra_error_rate
                }
                FaultKind::Outage => effects.extra_error_rate += 1.0,
            }
        }
        effects
    }

    #[test]
    fn effects_respect_window_bounds() {
        let mut plan = FaultPlan::none();
        plan.inject(window(10, 20, FaultKind::LatencySpike { multiplier: 3.0 }));
        assert_eq!(plan.effects(VersionId(0), SimTime::from_secs(9)), FaultEffects::NONE);
        let active = plan.effects(VersionId(0), SimTime::from_secs(10));
        assert_eq!(active.latency_multiplier, 3.0);
        assert_eq!(plan.effects(VersionId(0), SimTime::from_secs(20)), FaultEffects::NONE);
    }

    #[test]
    fn effects_are_per_version() {
        let mut plan = FaultPlan::none();
        plan.inject(window(0, 100, FaultKind::Outage));
        assert_eq!(plan.effects(VersionId(1), SimTime::from_secs(5)), FaultEffects::NONE);
        assert_eq!(plan.effects(VersionId(0), SimTime::from_secs(5)).extra_error_rate, 1.0);
    }

    #[test]
    fn overlapping_faults_compose() {
        let mut plan = FaultPlan::none();
        plan.inject(window(0, 100, FaultKind::LatencySpike { multiplier: 2.0 }))
            .inject(window(0, 100, FaultKind::LatencySpike { multiplier: 3.0 }))
            .inject(window(0, 100, FaultKind::ErrorBurst { extra_error_rate: 0.6 }))
            .inject(window(0, 100, FaultKind::ErrorBurst { extra_error_rate: 0.7 }));
        let e = plan.effects(VersionId(0), SimTime::from_secs(1));
        assert_eq!(e.latency_multiplier, 6.0);
        // Rates sum uncapped; the executor clamps the final probability.
        assert!((e.extra_error_rate - 1.3).abs() < 1e-12);
    }

    #[test]
    fn cursor_handles_non_monotone_queries() {
        // The executor can query an earlier time after a later one (deep
        // subtree of request N finishing after request N+1 arrives).
        let mut plan = FaultPlan::none();
        plan.inject(window(10, 20, FaultKind::LatencySpike { multiplier: 2.0 })).inject(window(
            30,
            40,
            FaultKind::LatencySpike { multiplier: 3.0 },
        ));
        assert_eq!(plan.effects(VersionId(0), SimTime::from_secs(35)).latency_multiplier, 3.0);
        // Going back in time must still see the first window.
        assert_eq!(plan.effects(VersionId(0), SimTime::from_secs(15)).latency_multiplier, 2.0);
        assert_eq!(plan.effects(VersionId(0), SimTime::from_secs(35)).latency_multiplier, 3.0);
    }

    #[test]
    fn long_window_shadowed_by_expired_short_one() {
        // A long window inserted before a short one: once the short one
        // expires the cursor may sit past it; the long one must still
        // apply.
        let mut plan = FaultPlan::none();
        plan.inject(window(0, 100, FaultKind::LatencySpike { multiplier: 2.0 })).inject(window(
            1,
            2,
            FaultKind::LatencySpike { multiplier: 5.0 },
        ));
        assert_eq!(plan.effects(VersionId(0), SimTime::from_secs(1)).latency_multiplier, 10.0);
        assert_eq!(plan.effects(VersionId(0), SimTime::from_secs(50)).latency_multiplier, 2.0);
    }

    #[test]
    fn injection_after_queries_resets_the_cursor() {
        let mut plan = FaultPlan::none();
        plan.inject(window(0, 10, FaultKind::LatencySpike { multiplier: 2.0 }));
        // Advance the cursor past the only window.
        assert_eq!(plan.effects(VersionId(0), SimTime::from_secs(50)), FaultEffects::NONE);
        // A newly injected overlapping window must be visible.
        plan.inject(window(40, 60, FaultKind::LatencySpike { multiplier: 4.0 }));
        assert_eq!(plan.effects(VersionId(0), SimTime::from_secs(50)).latency_multiplier, 4.0);
    }

    #[test]
    fn indexed_effects_match_naive_scan_differentially() {
        // Randomized plans and query orders: the indexed lookup must
        // agree with the original linear scan everywhere.
        let mut rng = SplitMix64::new(0xFA417);
        for _ in 0..50 {
            let mut plan = FaultPlan::none();
            let n_faults = 1 + rng.next_index(20);
            for _ in 0..n_faults {
                let version = VersionId(rng.next_index(3));
                let from = rng.next_below(200);
                let len = 1 + rng.next_below(80);
                let kind = match rng.next_index(3) {
                    0 => FaultKind::LatencySpike { multiplier: 1.0 + rng.next_f64() * 4.0 },
                    1 => FaultKind::ErrorBurst { extra_error_rate: rng.next_f64() },
                    _ => FaultKind::Outage,
                };
                plan.inject(Fault {
                    version,
                    kind,
                    from: SimTime::from_secs(from),
                    until: SimTime::from_secs(from + len),
                });
            }
            // Mostly-monotone query stream with occasional backwards
            // jumps, mirroring the executor's access pattern.
            let mut now = 0u64;
            for _ in 0..200 {
                now = if rng.next_index(10) == 0 {
                    now.saturating_sub(rng.next_below(40))
                } else {
                    now + rng.next_below(5)
                };
                for v in 0..3 {
                    let version = VersionId(v);
                    let t = SimTime::from_secs(now);
                    let indexed = plan.effects(version, t);
                    let naive = naive_effects(&plan, version, t);
                    // The indexed lookup applies windows in sorted order,
                    // the naive scan in insertion order; float products
                    // can differ in the last ulp.
                    let lat_err = (indexed.latency_multiplier - naive.latency_multiplier).abs();
                    assert!(
                        lat_err <= 1e-9 * naive.latency_multiplier.abs(),
                        "{indexed:?} vs {naive:?}"
                    );
                    let rate_err = (indexed.extra_error_rate - naive.extra_error_rate).abs();
                    assert!(rate_err <= 1e-9, "{indexed:?} vs {naive:?}");
                }
            }
        }
    }

    #[test]
    fn plan_equality_ignores_cursor_state() {
        let mut a = FaultPlan::none();
        let mut b = FaultPlan::none();
        a.inject(window(0, 10, FaultKind::Outage));
        b.inject(window(0, 10, FaultKind::Outage));
        // Advance only a's cursor.
        a.effects(VersionId(0), SimTime::from_secs(50));
        assert_eq!(a, b);
    }

    #[test]
    fn zone_outage_covers_every_member_simultaneously() {
        let members = [VersionId(2), VersionId(5), VersionId(7)];
        let faults = zone_outage(&members, SimTime::from_secs(10), SimTime::from_secs(40));
        assert_eq!(faults.len(), 3);
        let mut plan = FaultPlan::none();
        for f in &faults {
            assert_eq!(f.kind, FaultKind::Outage);
            assert_eq!(f.from, SimTime::from_secs(10));
            assert_eq!(f.until, SimTime::from_secs(40));
            plan.inject(*f);
        }
        for v in members {
            assert_eq!(plan.effects(v, SimTime::from_secs(20)).extra_error_rate, 1.0);
            assert_eq!(plan.effects(v, SimTime::from_secs(5)), FaultEffects::NONE);
        }
        assert_eq!(plan.effects(VersionId(3), SimTime::from_secs(20)), FaultEffects::NONE);
    }

    #[test]
    fn latency_storm_cascades_and_ends_together() {
        let members = [VersionId(0), VersionId(1), VersionId(2)];
        let faults = latency_storm(&members, 4.0, SimTime::from_secs(0), SimTime::from_secs(60));
        // Stagger = 60s / (2*3) = 10s: starts at 0, 10, 20; all end at 60.
        let starts: Vec<_> = faults.iter().map(|f| f.from).collect();
        assert_eq!(starts, vec![SimTime::ZERO, SimTime::from_secs(10), SimTime::from_secs(20)]);
        assert!(faults.iter().all(|f| f.until == SimTime::from_secs(60)));
        let mut plan = FaultPlan::none();
        for f in &faults {
            plan.inject(*f);
        }
        // At t=5 only the first victim is degraded; by t=25 all are.
        assert_eq!(plan.effects(VersionId(0), SimTime::from_secs(5)).latency_multiplier, 4.0);
        assert_eq!(plan.effects(VersionId(1), SimTime::from_secs(5)).latency_multiplier, 1.0);
        for v in members {
            assert_eq!(plan.effects(v, SimTime::from_secs(25)).latency_multiplier, 4.0);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        FaultPlan::none().inject(window(10, 10, FaultKind::Outage));
    }

    #[test]
    #[should_panic(expected = "speed things up")]
    fn sub_unit_spike_rejected() {
        FaultPlan::none().inject(window(0, 1, FaultKind::LatencySpike { multiplier: 0.5 }));
    }
}
