//! Fault injection: controlled degradation windows.
//!
//! The evaluation scenarios of Chapter 5 "introduced sub-scenarios
//! involving simulated performance issues" (Section 1.4.3), and testing
//! Bifrost's fallback behaviour requires failures that strike *mid-
//! experiment*. A [`FaultPlan`] schedules per-version degradation windows
//! — latency spikes, error bursts, outages — that the request executor
//! applies on top of the normal latency/error models.

use crate::app::VersionId;
use cex_core::simtime::SimTime;

/// What kind of degradation a fault inflicts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Service times multiplied by this factor.
    LatencySpike {
        /// Latency multiplier (> 1).
        multiplier: f64,
    },
    /// Additional failure probability on every hop.
    ErrorBurst {
        /// Extra error rate in `0.0..=1.0`.
        extra_error_rate: f64,
    },
    /// Every request to the version fails.
    Outage,
}

/// One scheduled fault window on one deployed version.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// The afflicted version.
    pub version: VersionId,
    /// Degradation kind.
    pub kind: FaultKind,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

/// Combined fault effects at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEffects {
    /// Multiplier applied to sampled service times.
    pub latency_multiplier: f64,
    /// Extra failure probability added to the endpoint's own error rate.
    pub extra_error_rate: f64,
}

impl FaultEffects {
    /// No fault active.
    pub const NONE: FaultEffects = FaultEffects { latency_multiplier: 1.0, extra_error_rate: 0.0 };
}

/// A schedule of fault windows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (no faults ever).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault window.
    ///
    /// # Panics
    ///
    /// Panics when the window is empty (`until <= from`) or a multiplier/
    /// rate is out of domain.
    pub fn inject(&mut self, fault: Fault) -> &mut Self {
        assert!(fault.from < fault.until, "fault window must be non-empty");
        match fault.kind {
            FaultKind::LatencySpike { multiplier } => {
                assert!(multiplier >= 1.0, "latency spike must not speed things up")
            }
            FaultKind::ErrorBurst { extra_error_rate } => {
                assert!((0.0..=1.0).contains(&extra_error_rate), "error rate in 0..=1")
            }
            FaultKind::Outage => {}
        }
        self.faults.push(fault);
        self
    }

    /// All scheduled faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// `true` when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The combined effects on `version` at time `now`. Overlapping
    /// windows compose: latency multipliers multiply, error rates add
    /// (capped at 1).
    pub fn effects(&self, version: VersionId, now: SimTime) -> FaultEffects {
        let mut effects = FaultEffects::NONE;
        for fault in &self.faults {
            if fault.version != version || now < fault.from || now >= fault.until {
                continue;
            }
            match fault.kind {
                FaultKind::LatencySpike { multiplier } => {
                    effects.latency_multiplier *= multiplier;
                }
                FaultKind::ErrorBurst { extra_error_rate } => {
                    effects.extra_error_rate =
                        (effects.extra_error_rate + extra_error_rate).min(1.0);
                }
                FaultKind::Outage => {
                    effects.extra_error_rate = 1.0;
                }
            }
        }
        effects
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(from_s: u64, until_s: u64, kind: FaultKind) -> Fault {
        Fault {
            version: VersionId(0),
            kind,
            from: SimTime::from_secs(from_s),
            until: SimTime::from_secs(until_s),
        }
    }

    #[test]
    fn effects_respect_window_bounds() {
        let mut plan = FaultPlan::none();
        plan.inject(window(10, 20, FaultKind::LatencySpike { multiplier: 3.0 }));
        assert_eq!(plan.effects(VersionId(0), SimTime::from_secs(9)), FaultEffects::NONE);
        let active = plan.effects(VersionId(0), SimTime::from_secs(10));
        assert_eq!(active.latency_multiplier, 3.0);
        assert_eq!(plan.effects(VersionId(0), SimTime::from_secs(20)), FaultEffects::NONE);
    }

    #[test]
    fn effects_are_per_version() {
        let mut plan = FaultPlan::none();
        plan.inject(window(0, 100, FaultKind::Outage));
        assert_eq!(plan.effects(VersionId(1), SimTime::from_secs(5)), FaultEffects::NONE);
        assert_eq!(plan.effects(VersionId(0), SimTime::from_secs(5)).extra_error_rate, 1.0);
    }

    #[test]
    fn overlapping_faults_compose() {
        let mut plan = FaultPlan::none();
        plan.inject(window(0, 100, FaultKind::LatencySpike { multiplier: 2.0 }))
            .inject(window(0, 100, FaultKind::LatencySpike { multiplier: 3.0 }))
            .inject(window(0, 100, FaultKind::ErrorBurst { extra_error_rate: 0.6 }))
            .inject(window(0, 100, FaultKind::ErrorBurst { extra_error_rate: 0.7 }));
        let e = plan.effects(VersionId(0), SimTime::from_secs(1));
        assert_eq!(e.latency_multiplier, 6.0);
        assert_eq!(e.extra_error_rate, 1.0, "error rates cap at 1");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        FaultPlan::none().inject(window(10, 10, FaultKind::Outage));
    }

    #[test]
    #[should_panic(expected = "speed things up")]
    fn sub_unit_spike_rejected() {
        FaultPlan::none().inject(window(0, 1, FaultKind::LatencySpike { multiplier: 0.5 }));
    }
}
