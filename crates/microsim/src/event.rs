//! Event-driven simulation core with deterministic sharded parallel
//! execution.
//!
//! The recursive executor in [`crate::exec`] walks one request's call tree
//! to completion before the next request starts. That is simple, but it
//! cannot model *open-loop overload* (a slow service making concurrent
//! requests queue behind each other) and it cannot use more than one core.
//! This module rebuilds the same request semantics around a discrete-event
//! scheduler:
//!
//! - An in-flight request is a chain of **events** — `Call` (a hop is
//!   dispatched to a version), `Done` (a hop finished its own work and all
//!   child calls), `Reply` (a child's outcome reaches its caller) and
//!   `Timeout` (an attempt deadline expired) — ordered by a min-heap of
//!   [`EvKey`]s.
//! - Each hop is a **frame**: a small state machine holding the hop's
//!   private RNG stream, accumulated elapsed time, and the index of the
//!   next child call. Frames suspend while a child is outstanding and
//!   resume when its `Reply` (or `Timeout`) arrives, so thousands of
//!   requests interleave in simulated time.
//! - Per-version **concurrency limits and bounded admission queues**
//!   ([`OccupancyTable`]) act at frame dispatch: a frame either begins
//!   service immediately, parks in a FIFO queue until a slot frees, or is
//!   shed — queueing delay, backpressure and shed-on-full are first-class
//!   outcomes of the core, not post-hoc approximations.
//! - Resilience (attempt timeouts, retries with backoff, breakers,
//!   fallbacks) is re-expressed as scheduled events: a `Timeout` event
//!   races the attempt's `Reply`, and a generation counter on the caller
//!   frame discards whichever loses.
//!
//! # Sharding and determinism
//!
//! Services are sharded across worker threads (`shard = service % workers`)
//! and every piece of mutable state — frames, occupancy, load counters,
//! breakers (keyed by the *caller's* service) — is owned by exactly one
//! shard. Workers advance in **barrier-synchronised sub-rounds**: each
//! sub-round processes, in [`EvKey`] order, every event at the current
//! timestamp that existed when the sub-round began; events created during a
//! sub-round enter the heaps only at the exchange barrier, so the
//! round an event runs in is a pure function of the event graph, never of
//! the worker count. `Timeout` events carry a later-sorting phase and are
//! only processed in a dedicated sub-round once no normal events remain at
//! that timestamp — a timeout therefore fires iff the attempt's finish
//! time strictly exceeds the deadline, exactly the recursive core's
//! `duration > limit` rule.
//!
//! Every output record (metric sample, breaker transition, span, visit,
//! root outcome) is tagged with the [`EvKey`] of the event that produced
//! it; after the window drains, a single-threaded merge sorts the tags and
//! writes metric store, transition log and trace collector in one
//! canonical order. Same seed + same worker count, or same seed +
//! *different* worker count: byte-identical outputs either way.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

use crate::app::{Application, EndpointId, ServiceId, VersionId};
use crate::exec::{MetricSink, MAX_CALL_DEPTH};
use crate::faults::FaultPlan;
use crate::load::{Admission, LoadTracker, OccupancyTable};
use crate::resilience::{
    BreakerState, BreakerTransition, CallDecision, CallPolicy, ResiliencePlan, ResilienceState,
};
use crate::routing::{Router, UserId};
use crate::trace::{Span, SpanId, SpanStatus, Trace, TraceCollector, TraceId};
use cex_core::metrics::{MetricKind, OnlineStats};
use cex_core::obs::{PhaseStats, Profiler};
use cex_core::rng::SplitMix64;
use cex_core::simtime::{SimDuration, SimTime};

/// Normal events (calls, completions, replies).
const PHASE_NORMAL: u8 = 0;
/// Attempt-deadline events; deferred until no normal event remains at the
/// same timestamp, so `Reply` chains settle first.
const PHASE_TIMEOUT: u8 = 1;

/// Sibling-order rank of a breaker-shed event span under its caller.
const RANK_SHED: u8 = 0;
/// Sibling-order rank of an executed attempt subtree.
const RANK_ATTEMPT: u8 = 1;
/// Sibling-order rank of a fallback event span.
const RANK_FALLBACK: u8 = 2;
/// Sibling-order rank of a dark-launch mirror subtree.
const RANK_MIRROR: u8 = 3;

/// Total order over events. Time first, then phase (timeouts after all
/// normal work at the same instant), then request, then the creating
/// frame's identity and its per-lifetime emission counter. Keys are unique
/// because every frame numbers the events it creates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EvKey {
    time: u64,
    phase: u8,
    req: u32,
    ckey: u64,
    cseq: u32,
}

const KEY_ZERO: EvKey = EvKey { time: 0, phase: 0, req: 0, ckey: 0, cseq: 0 };

/// One hop dispatch: begin (or queue, or shed) a frame on `version`.
#[derive(Debug)]
struct CallEv {
    version: VersionId,
    endpoint: EndpointId,
    /// Caller frame + the generation expecting this child's reply. `None`
    /// for root arrivals and dark mirrors (their results go nowhere).
    parent: Option<(u64, u32)>,
    dark: bool,
    depth: u8,
    attempt: u8,
    seed: u64,
    /// Trace path when the request is sampled (empty = root span).
    path: Option<Vec<u32>>,
}

#[derive(Debug)]
enum Ev {
    Call(Box<CallEv>),
    Done { ident: u64 },
    Reply { parent: u64, gen: u32, ok: bool, duration_ms: u64 },
    Timeout { parent: u64, gen: u32 },
}

#[derive(Debug)]
struct HeapEv {
    key: EvKey,
    ev: Ev,
}

impl PartialEq for HeapEv {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for HeapEv {}
impl PartialOrd for HeapEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// What a suspended frame is waiting for.
#[derive(Debug)]
enum Pending {
    /// Transient state while the frame is being advanced.
    Advancing,
    /// An unguarded child call is outstanding.
    Plain,
    /// A resilience-guarded attempt is outstanding.
    Guarded {
        callee: VersionId,
        endpoint: EndpointId,
        policy: CallPolicy,
        /// Start of the whole guarded call (first attempt's dispatch).
        call_start_ms: u64,
        /// Caller-perceived wait accumulated over finished attempts and
        /// backoffs.
        waited_ms: u64,
        attempt: u32,
        attempt_start_ms: u64,
    },
    /// All calls done; the frame's `Done` event is scheduled.
    Finishing,
}

/// One in-flight hop. Mirrors the recursive executor's stack frame: the
/// hop's private RNG stream (same draw order: latency, own failure, then
/// per call probability/seeds, then retry backoff + reseed), accumulated
/// elapsed time and the next child call index.
#[derive(Debug)]
struct Frame {
    ident: u64,
    req: u32,
    version: VersionId,
    endpoint: EndpointId,
    /// When the hop was dispatched (arrival at the version).
    dispatch_ms: u64,
    /// When it was admitted to a slot and began service.
    start_ms: u64,
    hrng: SplitMix64,
    elapsed_ms: u64,
    ok: bool,
    dark: bool,
    depth: u8,
    attempt: u8,
    parent: Option<(u64, u32)>,
    path: Option<Vec<u32>>,
    call_idx: usize,
    /// Bumped whenever a new child/attempt is dispatched; stale replies
    /// and timeouts (older generation) are discarded.
    gen: u32,
    /// Per-lifetime counter numbering the events this frame creates.
    next_seq: u32,
    pending: Pending,
}

/// A dispatch waiting in a version's admission queue for a free slot.
#[derive(Debug)]
struct Parked {
    call: Box<CallEv>,
    req: u32,
    dispatch_ms: u64,
}

// ---- tagged output records (merged canonically after the window) ----

#[derive(Debug)]
struct TaggedSample {
    key: EvKey,
    seq: u32,
    version: VersionId,
    kind: MetricKind,
    time: SimTime,
    value: f64,
}

#[derive(Debug)]
struct TaggedTransition {
    key: EvKey,
    seq: u32,
    transition: BreakerTransition,
}

#[derive(Debug)]
struct VisitRec {
    key: EvKey,
    req: u32,
    version: VersionId,
}

#[derive(Debug)]
struct SpanRec {
    req: u32,
    path: Vec<u32>,
    version: VersionId,
    endpoint: EndpointId,
    start_ms: u64,
    duration_ms: u64,
    status: SpanStatus,
    attempt: u8,
    dark: bool,
}

#[derive(Debug)]
struct PatchRec {
    req: u32,
    path: Vec<u32>,
    perceived_ms: u64,
}

#[derive(Debug)]
struct RootRec {
    req: u32,
    ok: bool,
    duration_ms: u64,
}

#[derive(Debug, Default)]
struct ShardOut {
    samples: Vec<TaggedSample>,
    transitions: Vec<TaggedTransition>,
    visits: Vec<VisitRec>,
    spans: Vec<SpanRec>,
    patches: Vec<PatchRec>,
    roots: Vec<RootRec>,
}

/// Per-request metadata shared read-only by all shards.
#[derive(Debug)]
struct ReqMeta {
    user: UserId,
    time_ms: u64,
    trace: Option<TraceId>,
    conv_u: f64,
}

/// One pre-generated arrival handed to [`run_window`]. The trace decision
/// and the two per-request RNG draws happen in the caller (in arrival
/// order), so the recursive and event cores consume the simulation's
/// random streams identically.
#[derive(Debug)]
pub(crate) struct EventRequest {
    pub(crate) time: SimTime,
    pub(crate) user: UserId,
    pub(crate) service: ServiceId,
    pub(crate) endpoint: String,
    pub(crate) trace: Option<TraceId>,
    pub(crate) root_seed: u64,
    pub(crate) conv_u: f64,
}

/// Aggregate outcome of one event-core window.
#[derive(Debug)]
pub(crate) struct WindowStats {
    pub(crate) requests: u64,
    pub(crate) failures: u64,
    pub(crate) rt: OnlineStats,
    pub(crate) tally: WindowTally,
}

/// Deterministic event-core tallies for one window, folded across shards
/// at the merge. Every field is a pure function of the seed — an event is
/// processed by exactly one shard regardless of the worker count, and all
/// workers execute the same barrier-synchronised sub-round sequence — so
/// these values are safe to journal (see `cex_core::obs`).
#[derive(Debug, Default)]
pub(crate) struct WindowTally {
    /// Events popped off shard heaps (every created event is popped once).
    pub(crate) events_popped: u64,
    /// Events routed through the outbox exchange (all non-root events).
    pub(crate) events_sent: u64,
    /// Barrier-synchronised sub-rounds driven (identical on every worker;
    /// taken from one shard, not summed, so the value is worker-count
    /// invariant).
    pub(crate) sub_rounds: u64,
    /// Requests shed — admission-queue-full plus breaker sheds.
    pub(crate) sheds: u64,
}

/// Shard-local observability: deterministic tallies plus wall-clock phase
/// accumulators. Tallies fold into [`WindowTally`] at the merge; phase
/// timings fold into the profiler and are recorded only when profiling is
/// on (`timed`), keeping the disabled path free of clock reads. Even when
/// on, only 1-in-[`OBS_TIMING_SAMPLE`] sub-rounds are timed — the
/// accumulators hold sampled values that [`fold_sampled`] scales back up.
#[derive(Debug)]
struct ShardObs {
    timed: bool,
    events_popped: u64,
    /// `Cell` because [`Shard::send`] takes `&self`; shards are never
    /// shared across threads, only moved.
    events_sent: Cell<u64>,
    sub_rounds: u64,
    sheds: u64,
    pop: PhaseStats,
    dispatch: PhaseStats,
    barrier: PhaseStats,
    exchange: PhaseStats,
}

impl ShardObs {
    fn new(timed: bool) -> ShardObs {
        ShardObs {
            timed,
            events_popped: 0,
            events_sent: Cell::new(0),
            sub_rounds: 0,
            sheds: 0,
            pop: PhaseStats::new(),
            dispatch: PhaseStats::new(),
            barrier: PhaseStats::new(),
            exchange: PhaseStats::new(),
        }
    }
}

/// When profiling is on, only one sub-round in this many is actually
/// timed. A sub-round takes single-digit microseconds, so clock reads on
/// every round cost tens of percent of the whole window; sampling keeps
/// the per-sample distributions honest while cutting the clock reads by
/// this factor. At fold time the sampled totals and counts are scaled
/// back up ([`fold_sampled`]) so the profile tree shows unbiased
/// estimates of true phase totals.
const OBS_TIMING_SAMPLE: u64 = 256;

/// Starts a phase measurement iff timing is on (one branch otherwise).
fn mark(timed: bool) -> Option<Instant> {
    timed.then(Instant::now)
}

/// Completes a measurement opened by [`mark`].
fn lap(stats: &mut PhaseStats, started: Option<Instant>) {
    if let Some(t0) = started {
        stats.record(t0.elapsed());
    }
}

fn service_of_ident(ident: u64) -> usize {
    (ident >> 32) as usize
}

fn path_elem(call_idx: usize, rank: u8, sub: u32) -> u32 {
    ((call_idx as u32) << 16) | (u32::from(rank) << 8) | sub.min(0xFF)
}

fn child_path(parent: &[u32], call_idx: usize, rank: u8, sub: u32) -> Vec<u32> {
    let mut p = Vec::with_capacity(parent.len() + 1);
    p.extend_from_slice(parent);
    p.push(path_elem(call_idx, rank, sub));
    p
}

/// One worker's shard: the event heap plus every piece of mutable state
/// owned by the services assigned to it.
struct Shard<'a> {
    id: usize,
    workers: usize,
    heap: BinaryHeap<Reverse<HeapEv>>,
    frames: HashMap<u64, Frame>,
    parked: HashMap<u64, Parked>,
    /// Next frame serial per service (only this shard's services advance).
    serials: Vec<u32>,
    load: LoadTracker,
    occ: OccupancyTable,
    res: ResilienceState,
    faults: FaultPlan,
    scratch_transitions: Vec<BreakerTransition>,
    out: ShardOut,
    cur_key: EvKey,
    sample_seq: u32,
    transition_seq: u32,
    app: &'a Application,
    router: &'a Router,
    plan: &'a ResiliencePlan,
    reqs: &'a [ReqMeta],
    guard: bool,
    obs: ShardObs,
}

type Outboxes = [Mutex<Vec<HeapEv>>];

impl Shard<'_> {
    fn alloc_ident(&mut self, service: usize) -> u64 {
        // Serials start at 1 so a frame identity never collides with the
        // root-arrival creator key 0.
        self.serials[service] += 1;
        ((service as u64) << 32) | u64::from(self.serials[service])
    }

    fn send(&self, outboxes: &Outboxes, target_service: usize, key: EvKey, ev: Ev) {
        self.obs.events_sent.set(self.obs.events_sent.get() + 1);
        outboxes[target_service % self.workers]
            .lock()
            .expect("outbox poisoned")
            .push(HeapEv { key, ev });
    }

    fn key_from(&self, frame: &mut Frame, time_ms: u64, phase: u8) -> EvKey {
        let cseq = frame.next_seq;
        frame.next_seq += 1;
        EvKey { time: time_ms, phase, req: frame.req, ckey: frame.ident, cseq }
    }

    fn sample(&mut self, version: VersionId, kind: MetricKind, time_ms: u64, value: f64) {
        self.out.samples.push(TaggedSample {
            key: self.cur_key,
            seq: self.sample_seq,
            version,
            kind,
            time: SimTime::from_millis(time_ms),
            value,
        });
        self.sample_seq += 1;
    }

    fn process(&mut self, ev: HeapEv, outboxes: &Outboxes) {
        self.cur_key = ev.key;
        self.sample_seq = 0;
        self.transition_seq = 0;
        match ev.ev {
            Ev::Call(call) => self.on_call(ev.key, call, outboxes),
            Ev::Done { ident } => self.on_done(ident, ev.key.time, outboxes),
            Ev::Reply { parent, gen, ok, duration_ms } => {
                self.on_reply(parent, gen, ok, duration_ms, outboxes)
            }
            Ev::Timeout { parent, gen } => self.on_timeout(parent, gen, outboxes),
        }
        // Tag the breaker transitions this event caused so the merge can
        // replay them in global event order.
        let mut scratch = std::mem::take(&mut self.scratch_transitions);
        self.res.drain_transitions_into(&mut scratch);
        for t in &scratch {
            self.out.transitions.push(TaggedTransition {
                key: self.cur_key,
                seq: self.transition_seq,
                transition: *t,
            });
            self.transition_seq += 1;
        }
        self.scratch_transitions = scratch;
    }

    fn on_call(&mut self, key: EvKey, call: Box<CallEv>, outboxes: &Outboxes) {
        assert!(
            (call.depth as usize) <= MAX_CALL_DEPTH,
            "call tree exceeds MAX_CALL_DEPTH (cycle in the application definition)"
        );
        let t = key.time;
        let req = key.req;
        let version = call.version;
        // Offered load is recorded at dispatch regardless of admission
        // outcome: overload is visible in arrival rates even when shed.
        self.load.record_arrival(version, SimTime::from_millis(t));
        let ident = self.alloc_ident(self.app.version(version).service.0);
        match self.occ.try_admit(version, ident) {
            Admission::Immediate => {
                let frame = self.make_frame(ident, req, *call, t, t);
                self.begin(frame, outboxes);
            }
            Admission::Queued => {
                self.parked.insert(ident, Parked { call, req, dispatch_ms: t });
            }
            Admission::Shed => {
                self.obs.sheds += 1;
                self.sample(version, MetricKind::Shed, t, 1.0);
                if let Some(path) = &call.path {
                    self.out.spans.push(SpanRec {
                        req,
                        path: path.clone(),
                        version,
                        endpoint: call.endpoint,
                        start_ms: t,
                        duration_ms: 0,
                        status: SpanStatus::Shed,
                        attempt: call.attempt,
                        dark: call.dark,
                    });
                }
                match call.parent {
                    Some((parent, gen)) => {
                        let reply_key =
                            EvKey { time: t, phase: PHASE_NORMAL, req, ckey: ident, cseq: 0 };
                        self.send(
                            outboxes,
                            service_of_ident(parent),
                            reply_key,
                            Ev::Reply { parent, gen, ok: false, duration_ms: 0 },
                        );
                    }
                    None if !call.dark => {
                        self.out.roots.push(RootRec { req, ok: false, duration_ms: 0 });
                    }
                    None => {}
                }
            }
        }
    }

    fn make_frame(
        &mut self,
        ident: u64,
        req: u32,
        call: CallEv,
        dispatch_ms: u64,
        start_ms: u64,
    ) -> Frame {
        Frame {
            ident,
            req,
            version: call.version,
            endpoint: call.endpoint,
            dispatch_ms,
            start_ms,
            hrng: SplitMix64::new(call.seed),
            elapsed_ms: 0,
            ok: true,
            dark: call.dark,
            depth: call.depth,
            attempt: call.attempt,
            parent: call.parent,
            path: call.path,
            call_idx: 0,
            gen: 0,
            next_seq: 0,
            pending: Pending::Advancing,
        }
    }

    /// Admits a parked dispatch into the slot freed at `start_ms`.
    fn begin_queued(&mut self, ident: u64, start_ms: u64, outboxes: &Outboxes) {
        let parked = self.parked.remove(&ident).expect("released token is parked");
        self.sample(
            parked.call.version,
            MetricKind::QueueDelay,
            parked.dispatch_ms,
            (start_ms - parked.dispatch_ms) as f64,
        );
        let frame = self.make_frame(ident, parked.req, *parked.call, parked.dispatch_ms, start_ms);
        self.begin(frame, outboxes);
    }

    /// Samples the frame's own work (same draw order as the recursive
    /// hop: latency, then own failure) and starts its call sequence.
    fn begin(&mut self, mut frame: Frame, outboxes: &Outboxes) {
        let start = SimTime::from_millis(frame.start_ms);
        let fault = self.faults.effects(frame.version, start);
        let multiplier = self.load.multiplier(self.app, frame.version) * fault.latency_multiplier;
        let endpoint = self.app.endpoint(frame.endpoint);
        let own_latency = endpoint.latency.sample(&mut frame.hrng, multiplier);
        let failure_rate = (endpoint.error_rate + fault.extra_error_rate).clamp(0.0, 1.0);
        frame.ok = frame.hrng.next_f64() >= failure_rate;
        frame.elapsed_ms = (self.router.proxy_overhead() + own_latency).as_millis();
        if !frame.dark {
            self.out.visits.push(VisitRec {
                key: self.cur_key,
                req: frame.req,
                version: frame.version,
            });
        }
        self.advance(frame, outboxes);
    }

    /// Runs the frame forward: skips non-firing probabilistic calls,
    /// dispatches the next child (guarded or plain, plus its dark
    /// mirrors), and schedules `Done` when the call list is exhausted.
    fn advance(&mut self, mut frame: Frame, outboxes: &Outboxes) {
        loop {
            let endpoint = self.app.endpoint(frame.endpoint);
            if frame.call_idx >= endpoint.calls.len() {
                let finish = frame.start_ms + frame.elapsed_ms;
                let key = self.key_from(&mut frame, finish, PHASE_NORMAL);
                let svc = service_of_ident(frame.ident);
                let ident = frame.ident;
                frame.pending = Pending::Finishing;
                self.frames.insert(ident, frame);
                self.send(outboxes, svc, key, Ev::Done { ident });
                return;
            }
            let call = endpoint.calls[frame.call_idx].clone();
            if call.probability < 1.0 && frame.hrng.next_f64() >= call.probability {
                frame.call_idx += 1;
                continue;
            }
            // Child and mirror seeds are drawn before anything executes,
            // exactly as in the recursive walk.
            let child_seed = frame.hrng.next_u64();
            let mirrors = self.router.mirrors(call.service).to_vec();
            let mirror_seeds: Vec<u64> = mirrors.iter().map(|_| frame.hrng.next_u64()).collect();
            let child_start = frame.start_ms + frame.elapsed_ms;
            let user = self.reqs[frame.req as usize].user;

            let policy = if !frame.dark && self.guard {
                let caller_service = self.app.version(frame.version).service.0;
                self.plan.policy_for(caller_service, call.service.0).copied()
            } else {
                None
            };
            let callee = self.router.resolve(self.app, call.service, user);
            let callee_ep = self
                .app
                .endpoint_of(callee, &call.endpoint)
                .expect("call graph references a valid endpoint");

            if let Some(policy) = policy {
                if let Some(bp) = policy.breaker {
                    let decision = self.res.decide(
                        frame.version,
                        callee,
                        &bp,
                        SimTime::from_millis(child_start),
                    );
                    if decision == CallDecision::Shed {
                        self.obs.sheds += 1;
                        self.sample(callee, MetricKind::Shed, child_start, 1.0);
                        if let Some(p) = &frame.path {
                            self.out.spans.push(SpanRec {
                                req: frame.req,
                                path: child_path(p, frame.call_idx, RANK_SHED, 0),
                                version: callee,
                                endpoint: callee_ep,
                                start_ms: child_start,
                                duration_ms: 0,
                                status: SpanStatus::Shed,
                                attempt: 0,
                                dark: false,
                            });
                        }
                        let (dur, ok) = self.resolve_fallback(
                            &mut frame,
                            &policy,
                            callee,
                            callee_ep,
                            child_start,
                            0,
                        );
                        frame.elapsed_ms += dur;
                        frame.ok &= ok;
                        self.dispatch_mirrors(
                            &mut frame,
                            &mirrors,
                            &mirror_seeds,
                            &call.endpoint,
                            child_start,
                            outboxes,
                        );
                        frame.call_idx += 1;
                        continue;
                    }
                }
                frame.gen += 1;
                let gen = frame.gen;
                let apath =
                    frame.path.as_ref().map(|p| child_path(p, frame.call_idx, RANK_ATTEMPT, 0));
                let key = self.key_from(&mut frame, child_start, PHASE_NORMAL);
                self.send(
                    outboxes,
                    call.service.0,
                    key,
                    Ev::Call(Box::new(CallEv {
                        version: callee,
                        endpoint: callee_ep,
                        parent: Some((frame.ident, gen)),
                        dark: false,
                        depth: frame.depth + 1,
                        attempt: 0,
                        seed: child_seed,
                        path: apath,
                    })),
                );
                if let Some(limit) = policy.attempt_timeout {
                    let tkey =
                        self.key_from(&mut frame, child_start + limit.as_millis(), PHASE_TIMEOUT);
                    self.send(
                        outboxes,
                        service_of_ident(frame.ident),
                        tkey,
                        Ev::Timeout { parent: frame.ident, gen },
                    );
                }
                frame.pending = Pending::Guarded {
                    callee,
                    endpoint: callee_ep,
                    policy,
                    call_start_ms: child_start,
                    waited_ms: 0,
                    attempt: 0,
                    attempt_start_ms: child_start,
                };
            } else {
                frame.gen += 1;
                let gen = frame.gen;
                let cpath =
                    frame.path.as_ref().map(|p| child_path(p, frame.call_idx, RANK_ATTEMPT, 0));
                let key = self.key_from(&mut frame, child_start, PHASE_NORMAL);
                self.send(
                    outboxes,
                    call.service.0,
                    key,
                    Ev::Call(Box::new(CallEv {
                        version: callee,
                        endpoint: callee_ep,
                        parent: Some((frame.ident, gen)),
                        dark: frame.dark,
                        depth: frame.depth + 1,
                        attempt: 0,
                        seed: child_seed,
                        path: cpath,
                    })),
                );
                frame.pending = Pending::Plain;
            }
            self.dispatch_mirrors(
                &mut frame,
                &mirrors,
                &mirror_seeds,
                &call.endpoint,
                child_start,
                outboxes,
            );
            let ident = frame.ident;
            self.frames.insert(ident, frame);
            return;
        }
    }

    /// Spawns dark-launch mirror subtrees at the dispatch instant with
    /// their pre-drawn seeds. Mirrors never reply: their latency is off
    /// the user path, but their load and telemetry are real.
    fn dispatch_mirrors(
        &mut self,
        frame: &mut Frame,
        mirrors: &[VersionId],
        mirror_seeds: &[u64],
        endpoint_name: &str,
        child_start: u64,
        outboxes: &Outboxes,
    ) {
        for (mi, (mirror, mseed)) in mirrors.iter().zip(mirror_seeds).enumerate() {
            let ep = self
                .app
                .endpoint_of(*mirror, endpoint_name)
                .expect("mirror references a valid endpoint");
            let mpath =
                frame.path.as_ref().map(|p| child_path(p, frame.call_idx, RANK_MIRROR, mi as u32));
            let key = self.key_from(frame, child_start, PHASE_NORMAL);
            let svc = self.app.version(*mirror).service.0;
            self.send(
                outboxes,
                svc,
                key,
                Ev::Call(Box::new(CallEv {
                    version: *mirror,
                    endpoint: ep,
                    parent: None,
                    dark: true,
                    depth: frame.depth + 1,
                    attempt: 0,
                    seed: *mseed,
                    path: mpath,
                })),
            );
        }
    }

    /// Resolves an exhausted or shed guarded call: fallback when the
    /// policy has one, plain failure otherwise.
    fn resolve_fallback(
        &mut self,
        frame: &mut Frame,
        policy: &CallPolicy,
        callee: VersionId,
        callee_ep: EndpointId,
        call_start_ms: u64,
        waited_ms: u64,
    ) -> (u64, bool) {
        if policy.fallback {
            let at = call_start_ms + waited_ms;
            self.sample(callee, MetricKind::FallbackServed, at, 1.0);
            if let Some(p) = &frame.path {
                self.out.spans.push(SpanRec {
                    req: frame.req,
                    path: child_path(p, frame.call_idx, RANK_FALLBACK, 0),
                    version: callee,
                    endpoint: callee_ep,
                    start_ms: at,
                    duration_ms: policy.fallback_latency.as_millis(),
                    status: SpanStatus::Fallback,
                    attempt: 0,
                    dark: false,
                });
            }
            (waited_ms + policy.fallback_latency.as_millis(), true)
        } else {
            (waited_ms, false)
        }
    }

    fn on_done(&mut self, ident: u64, finish_ms: u64, outboxes: &Outboxes) {
        let mut frame = self.frames.remove(&ident).expect("Done targets a live frame");
        debug_assert!(matches!(frame.pending, Pending::Finishing));
        let duration_ms = finish_ms - frame.dispatch_ms;
        self.sample(frame.version, MetricKind::ResponseTime, frame.dispatch_ms, duration_ms as f64);
        self.sample(
            frame.version,
            MetricKind::ErrorRate,
            frame.dispatch_ms,
            if frame.ok { 0.0 } else { 1.0 },
        );
        if let Some(path) = frame.path.take() {
            self.out.spans.push(SpanRec {
                req: frame.req,
                path,
                version: frame.version,
                endpoint: frame.endpoint,
                start_ms: frame.dispatch_ms,
                duration_ms,
                status: if frame.ok { SpanStatus::Ok } else { SpanStatus::Failed },
                attempt: frame.attempt,
                dark: frame.dark,
            });
        }
        // Free the slot; the longest-waiting queued dispatch (same
        // version, hence same shard) begins service right now.
        if let Some(token) = self.occ.release(frame.version) {
            self.begin_queued(token, finish_ms, outboxes);
        }
        match frame.parent {
            Some((parent, gen)) => {
                let key = self.key_from(&mut frame, finish_ms, PHASE_NORMAL);
                self.send(
                    outboxes,
                    service_of_ident(parent),
                    key,
                    Ev::Reply { parent, gen, ok: frame.ok, duration_ms },
                );
            }
            None if !frame.dark => {
                self.out.roots.push(RootRec { req: frame.req, ok: frame.ok, duration_ms });
            }
            None => {}
        }
    }

    fn on_reply(&mut self, parent: u64, gen: u32, ok: bool, duration_ms: u64, outboxes: &Outboxes) {
        let live = self.frames.get(&parent).is_some_and(|f| {
            f.gen == gen && matches!(f.pending, Pending::Plain | Pending::Guarded { .. })
        });
        if !live {
            // Stale: the attempt timed out (generation moved on) or the
            // caller already finished. The child's work still happened and
            // was recorded — only its result is discarded.
            return;
        }
        let mut frame = self.frames.remove(&parent).expect("checked above");
        match std::mem::replace(&mut frame.pending, Pending::Advancing) {
            Pending::Plain => {
                frame.elapsed_ms += duration_ms;
                frame.ok &= ok;
                frame.call_idx += 1;
                self.advance(frame, outboxes);
            }
            Pending::Guarded {
                callee,
                endpoint,
                policy,
                call_start_ms,
                waited_ms,
                attempt,
                attempt_start_ms,
            } => {
                // A reply that arrives is never timed out: the deadline
                // event would have fired in an earlier (or deferred-later)
                // round and bumped the generation first.
                self.settle_attempt(
                    frame,
                    callee,
                    endpoint,
                    policy,
                    call_start_ms,
                    waited_ms + duration_ms,
                    attempt,
                    attempt_start_ms,
                    duration_ms,
                    ok,
                    false,
                    outboxes,
                );
            }
            _ => unreachable!("validated pending state"),
        }
    }

    fn on_timeout(&mut self, parent: u64, gen: u32, outboxes: &Outboxes) {
        let live = self
            .frames
            .get(&parent)
            .is_some_and(|f| f.gen == gen && matches!(f.pending, Pending::Guarded { .. }));
        if !live {
            return; // the attempt settled at or before the deadline
        }
        let mut frame = self.frames.remove(&parent).expect("checked above");
        let Pending::Guarded {
            callee,
            endpoint,
            policy,
            call_start_ms,
            waited_ms,
            attempt,
            attempt_start_ms,
        } = std::mem::replace(&mut frame.pending, Pending::Advancing)
        else {
            unreachable!("validated pending state")
        };
        let limit = policy.attempt_timeout.expect("timeout armed only with a deadline").as_millis();
        // Abandon the attempt: its late reply will carry this generation
        // and be discarded.
        frame.gen += 1;
        self.settle_attempt(
            frame,
            callee,
            endpoint,
            policy,
            call_start_ms,
            waited_ms + limit,
            attempt,
            attempt_start_ms,
            limit,
            false,
            true,
            outboxes,
        );
    }

    /// Folds one finished (or timed-out) attempt into the guarded call:
    /// breaker feedback, retry with backoff, fallback, or success.
    #[allow(clippy::too_many_arguments)]
    fn settle_attempt(
        &mut self,
        mut frame: Frame,
        callee: VersionId,
        endpoint: EndpointId,
        policy: CallPolicy,
        call_start_ms: u64,
        mut waited_ms: u64,
        attempt: u32,
        attempt_start_ms: u64,
        perceived_ms: u64,
        child_ok: bool,
        timed_out: bool,
        outboxes: &Outboxes,
    ) {
        let ok = child_ok && !timed_out;
        if timed_out {
            self.sample(callee, MetricKind::Timeout, attempt_start_ms, 1.0);
            if let Some(p) = &frame.path {
                // Re-status the attempt's span with the caller-observed
                // wait once it materialises (the subtree is still
                // running); the merge applies this patch by path.
                self.out.patches.push(PatchRec {
                    req: frame.req,
                    path: child_path(p, frame.call_idx, RANK_ATTEMPT, attempt),
                    perceived_ms,
                });
            }
        }
        let mut opened = false;
        if let Some(bp) = policy.breaker {
            let outcome_at = attempt_start_ms + perceived_ms;
            if let Some((_, to)) = self.res.on_outcome(
                frame.version,
                callee,
                &bp,
                SimTime::from_millis(outcome_at),
                !ok,
            ) {
                if to == BreakerState::Open {
                    self.sample(callee, MetricKind::BreakerOpen, outcome_at, 1.0);
                    opened = true;
                }
            }
        }
        if ok {
            frame.elapsed_ms += waited_ms;
            frame.call_idx += 1;
            self.advance(frame, outboxes);
            return;
        }
        if !opened && attempt < policy.max_retries {
            waited_ms += policy.backoff_delay(attempt, &mut frame.hrng).as_millis();
            self.sample(callee, MetricKind::Retry, call_start_ms + waited_ms, 1.0);
            let attempt_seed = frame.hrng.next_u64();
            let next_attempt = attempt + 1;
            let attempt_start = call_start_ms + waited_ms;
            frame.gen += 1;
            let gen = frame.gen;
            let apath = frame
                .path
                .as_ref()
                .map(|p| child_path(p, frame.call_idx, RANK_ATTEMPT, next_attempt));
            let key = self.key_from(&mut frame, attempt_start, PHASE_NORMAL);
            let svc = self.app.version(callee).service.0;
            self.send(
                outboxes,
                svc,
                key,
                Ev::Call(Box::new(CallEv {
                    version: callee,
                    endpoint,
                    parent: Some((frame.ident, gen)),
                    dark: false,
                    depth: frame.depth + 1,
                    attempt: u8::try_from(next_attempt).unwrap_or(u8::MAX),
                    seed: attempt_seed,
                    path: apath,
                })),
            );
            if let Some(limit) = policy.attempt_timeout {
                let tkey =
                    self.key_from(&mut frame, attempt_start + limit.as_millis(), PHASE_TIMEOUT);
                self.send(
                    outboxes,
                    service_of_ident(frame.ident),
                    tkey,
                    Ev::Timeout { parent: frame.ident, gen },
                );
            }
            frame.pending = Pending::Guarded {
                callee,
                endpoint,
                policy,
                call_start_ms,
                waited_ms,
                attempt: next_attempt,
                attempt_start_ms: attempt_start,
            };
            let ident = frame.ident;
            self.frames.insert(ident, frame);
            return;
        }
        // Exhausted, or the breaker opened on this very outcome.
        let (dur, ok2) =
            self.resolve_fallback(&mut frame, &policy, callee, endpoint, call_start_ms, waited_ms);
        frame.elapsed_ms += dur;
        frame.ok &= ok2;
        frame.call_idx += 1;
        self.advance(frame, outboxes);
    }
}

/// One worker's drive loop. All workers execute the same barrier
/// sequence per sub-round:
///
/// 1. leader resets the shared minimum-time and phase flags;
/// 2. every worker publishes its heap's minimum timestamp (`fetch_min`);
/// 3. every worker reads the global timestamp `t` (all exit together when
///    the heaps are globally empty) and flags whether it holds *normal*
///    events at `t`;
/// 4. every worker pops and processes its events at `(t, phase)` in key
///    order — `phase` is normal if any shard has normal work at `t`,
///    otherwise the deferred timeout phase — appending created events to
///    the target shards' outboxes;
/// 5. every worker drains its inbox into its heap.
///
/// Because created events only enter heaps at step 5, sub-round
/// membership (and hence all state-mutation order) is independent of how
/// services are spread over workers.
fn drive(
    shard: &mut Shard<'_>,
    barrier: &Barrier,
    outboxes: &Outboxes,
    min_time: &AtomicU64,
    any_normal: &AtomicBool,
) {
    // Events at the sub-round's (t, phase) front are popped into this
    // scratch before any is processed. Safe because created events only
    // ever travel through the outboxes (`Shard::send`), never straight
    // into the local heap — and it lets pop and dispatch be timed as two
    // phases without a clock read per event.
    let mut front: Vec<HeapEv> = Vec::new();
    let mut round: u64 = 0;
    loop {
        // Time 1-in-`OBS_TIMING_SAMPLE` rounds; see the constant's doc.
        let timed = shard.obs.timed && round.is_multiple_of(OBS_TIMING_SAMPLE);
        round += 1;
        let t0 = mark(timed);
        if barrier.wait().is_leader() {
            min_time.store(u64::MAX, Ordering::SeqCst);
            any_normal.store(false, Ordering::SeqCst);
        }
        barrier.wait();
        lap(&mut shard.obs.barrier, t0);
        if let Some(Reverse(top)) = shard.heap.peek() {
            min_time.fetch_min(top.key.time, Ordering::SeqCst);
        }
        let t0 = mark(timed);
        barrier.wait();
        lap(&mut shard.obs.barrier, t0);
        let t = min_time.load(Ordering::SeqCst);
        if t == u64::MAX {
            break;
        }
        shard.obs.sub_rounds += 1;
        if shard
            .heap
            .peek()
            .is_some_and(|Reverse(e)| e.key.time == t && e.key.phase == PHASE_NORMAL)
        {
            any_normal.store(true, Ordering::SeqCst);
        }
        let t0 = mark(timed);
        barrier.wait();
        lap(&mut shard.obs.barrier, t0);
        let phase = if any_normal.load(Ordering::SeqCst) { PHASE_NORMAL } else { PHASE_TIMEOUT };
        let t0 = mark(timed);
        while shard.heap.peek().is_some_and(|Reverse(e)| e.key.time == t && e.key.phase == phase) {
            let Reverse(ev) = shard.heap.pop().expect("peeked");
            front.push(ev);
        }
        shard.obs.events_popped += front.len() as u64;
        lap(&mut shard.obs.pop, t0);
        let t0 = mark(timed);
        for ev in front.drain(..) {
            shard.process(ev, outboxes);
        }
        lap(&mut shard.obs.dispatch, t0);
        let t0 = mark(timed);
        barrier.wait();
        {
            let mut inbox = outboxes[shard.id].lock().expect("inbox poisoned");
            for ev in inbox.drain(..) {
                shard.heap.push(Reverse(ev));
            }
        }
        lap(&mut shard.obs.exchange, t0);
    }
}

/// Runs one window of pre-generated arrivals through the event core and
/// merges all outputs canonically into the caller's store/collector/state.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_window(
    app: &Application,
    router: &Router,
    load: &mut LoadTracker,
    occupancy: &mut OccupancyTable,
    faults: &FaultPlan,
    plan: &ResiliencePlan,
    state: &mut ResilienceState,
    sink: &mut MetricSink<'_>,
    collector: &mut TraceCollector,
    requests: Vec<EventRequest>,
    workers: usize,
    profiler: &Profiler,
) -> WindowStats {
    let workers = workers.clamp(1, app.service_count().max(1));
    let reqs: Vec<ReqMeta> = requests
        .iter()
        .map(|r| ReqMeta {
            user: r.user,
            time_ms: r.time.as_millis(),
            trace: r.trace,
            conv_u: r.conv_u,
        })
        .collect();

    // Partition breaker state by the caller's service shard: every
    // breaker is touched by exactly one shard during the window.
    let mut shard_breakers: Vec<BTreeMap<(VersionId, VersionId), _>> =
        (0..workers).map(|_| BTreeMap::new()).collect();
    for ((caller, callee), breaker) in state.take_breakers() {
        let shard = app.version(caller).service.0 % workers;
        shard_breakers[shard].insert((caller, callee), breaker);
    }

    let mut shards: Vec<Shard<'_>> = shard_breakers
        .into_iter()
        .enumerate()
        .map(|(id, breakers)| {
            let mut res = ResilienceState::new();
            res.absorb_breakers(breakers);
            Shard {
                id,
                workers,
                heap: BinaryHeap::new(),
                frames: HashMap::new(),
                parked: HashMap::new(),
                serials: vec![0; app.service_count()],
                load: load.clone(),
                occ: occupancy.clone(),
                res,
                faults: faults.clone(),
                scratch_transitions: Vec::new(),
                out: ShardOut::default(),
                cur_key: KEY_ZERO,
                sample_seq: 0,
                transition_seq: 0,
                app,
                router,
                plan,
                reqs: &reqs,
                guard: !plan.is_empty(),
                obs: ShardObs::new(profiler.enabled()),
            }
        })
        .collect();

    // Seed root arrivals. Entry version and endpoint resolve up front, in
    // arrival order, matching the recursive facade's behaviour (and its
    // panic on a misconfigured workload).
    for (i, r) in requests.iter().enumerate() {
        let version = router.resolve(app, r.service, r.user);
        let endpoint =
            app.endpoint_of(version, &r.endpoint).expect("workload references a valid entry point");
        let key = EvKey {
            time: r.time.as_millis(),
            phase: PHASE_NORMAL,
            req: i as u32,
            ckey: 0,
            cseq: i as u32,
        };
        let path = r.trace.map(|_| Vec::new());
        shards[r.service.0 % workers].heap.push(Reverse(HeapEv {
            key,
            ev: Ev::Call(Box::new(CallEv {
                version,
                endpoint,
                parent: None,
                dark: false,
                depth: 0,
                attempt: 0,
                seed: r.root_seed,
                path,
            })),
        }));
    }

    let barrier = Barrier::new(workers);
    let outboxes: Vec<Mutex<Vec<HeapEv>>> = (0..workers).map(|_| Mutex::new(Vec::new())).collect();
    let min_time = AtomicU64::new(u64::MAX);
    let any_normal = AtomicBool::new(false);

    if workers == 1 {
        drive(&mut shards[0], &barrier, &outboxes, &min_time, &any_normal);
    } else {
        let barrier = &barrier;
        let outboxes = &outboxes[..];
        let min_time = &min_time;
        let any_normal = &any_normal;
        std::thread::scope(|s| {
            for shard in &mut shards {
                s.spawn(move || drive(shard, barrier, outboxes, min_time, any_normal));
            }
        });
    }

    cex_core::span!(profiler, "sim.event.merge");
    merge(app, load, occupancy, state, sink, collector, &reqs, shards, profiler)
}

/// Folds a 1-in-[`OBS_TIMING_SAMPLE`] sampled phase accumulator into the
/// profiler: the sampled durations go in as-is (so means and quantiles
/// stay per-sub-round facts), then the total and count are topped up by
/// the sampling factor so the tree's totals estimate true wall time.
fn fold_sampled(profiler: &Profiler, path: &str, stats: &PhaseStats) {
    profiler.fold(path, stats);
    let total_ns = stats.total().as_nanos() as u64;
    profiler.fold_bulk(
        path,
        total_ns * (OBS_TIMING_SAMPLE - 1),
        stats.count() * (OBS_TIMING_SAMPLE - 1),
    );
}

/// Single-threaded canonical merge: writes every shard's tagged outputs
/// into the shared store/collector/state in global event order, then the
/// per-request (end-to-end, conversion, trace) outputs in arrival order.
#[allow(clippy::too_many_arguments)]
fn merge(
    app: &Application,
    load: &mut LoadTracker,
    occupancy: &mut OccupancyTable,
    state: &mut ResilienceState,
    sink: &mut MetricSink<'_>,
    collector: &mut TraceCollector,
    reqs: &[ReqMeta],
    mut shards: Vec<Shard<'_>>,
    profiler: &Profiler,
) -> WindowStats {
    let workers = shards.len();
    // Each version's load counters (and queue high-water mark) are owned
    // by its service's shard.
    for v in 0..app.version_count() {
        let vid = VersionId(v);
        let shard = app.version(vid).service.0 % workers;
        load.adopt_version_from(&shards[shard].load, vid);
        occupancy.raise_queue_hwm(vid, shards[shard].occ.queue_hwm(vid));
    }

    // Fold observability: deterministic tallies into the window tally
    // (summed per shard — each event is processed exactly once globally,
    // so sums are worker-count invariant; sub-rounds are identical on
    // every worker and taken from shard 0), wall-clock phase timings into
    // the profiler (aggregated, plus per-worker barrier-wait nodes).
    let mut tally = WindowTally::default();
    for (si, shard) in shards.iter().enumerate() {
        tally.events_popped += shard.obs.events_popped;
        tally.events_sent += shard.obs.events_sent.get();
        tally.sheds += shard.obs.sheds;
        if si == 0 {
            tally.sub_rounds = shard.obs.sub_rounds;
        }
        fold_sampled(profiler, "sim.event.pop", &shard.obs.pop);
        fold_sampled(profiler, "sim.event.dispatch", &shard.obs.dispatch);
        fold_sampled(profiler, "sim.event.exchange", &shard.obs.exchange);
        fold_sampled(profiler, &format!("sim.event.barrier.w{si}"), &shard.obs.barrier);
    }
    for shard in &mut shards {
        state.absorb_breakers(shard.res.take_breakers());
        debug_assert_eq!(shard.parked.len(), 0, "admission queues drain within the window");
        debug_assert_eq!(shard.frames.len(), 0, "all frames complete within the window");
    }

    let mut transitions: Vec<TaggedTransition> =
        shards.iter_mut().flat_map(|s| s.out.transitions.drain(..)).collect();
    transitions.sort_unstable_by_key(|t| (t.key, t.seq));
    for t in transitions {
        state.record_transition(t.transition);
    }

    let mut samples: Vec<TaggedSample> =
        shards.iter_mut().flat_map(|s| s.out.samples.drain(..)).collect();
    samples.sort_unstable_by_key(|s| (s.key, s.seq));
    for s in &samples {
        sink.record_version(s.version, s.kind, s.time, s.value);
    }

    let n = reqs.len();
    let mut roots: Vec<Option<RootRec>> = (0..n).map(|_| None).collect();
    let mut visits: Vec<Vec<(EvKey, VersionId)>> = vec![Vec::new(); n];
    let mut spans: Vec<Vec<SpanRec>> = (0..n).map(|_| Vec::new()).collect();
    let mut patches: Vec<Vec<PatchRec>> = (0..n).map(|_| Vec::new()).collect();
    for shard in &mut shards {
        for r in shard.out.roots.drain(..) {
            let idx = r.req as usize;
            roots[idx] = Some(r);
        }
        for v in shard.out.visits.drain(..) {
            visits[v.req as usize].push((v.key, v.version));
        }
        for s in shard.out.spans.drain(..) {
            spans[s.req as usize].push(s);
        }
        for p in shard.out.patches.drain(..) {
            patches[p.req as usize].push(p);
        }
    }

    let mut stats = WindowStats { requests: 0, failures: 0, rt: OnlineStats::new(), tally };
    for (i, meta) in reqs.iter().enumerate() {
        let root = roots[i].take().expect("every request completes within the window");
        stats.requests += 1;
        if !root.ok {
            stats.failures += 1;
        }
        let at = SimTime::from_millis(meta.time_ms);
        let ms = root.duration_ms as f64;
        stats.rt.push(ms);
        sink.record_app(MetricKind::ResponseTime, at, ms);
        sink.record_app(MetricKind::ErrorRate, at, if root.ok { 0.0 } else { 1.0 });

        // Conversion attribution over the distinct primary-path versions,
        // ordered by first service-begin (the recursive walk's visit
        // order collapses to the same *set*, so the blended rate and the
        // 0/1 outcome are identical).
        let mut reqs_visits = std::mem::take(&mut visits[i]);
        if !reqs_visits.is_empty() {
            reqs_visits.sort_unstable_by_key(|(k, _)| *k);
            let mut seen: Vec<VersionId> = Vec::new();
            for (_, v) in reqs_visits {
                if !seen.contains(&v) {
                    seen.push(v);
                }
            }
            let mean = seen.iter().map(|v| app.version(*v).conversion_rate).sum::<f64>()
                / seen.len() as f64;
            let converted = root.ok && meta.conv_u < mean;
            let value = if converted { 1.0 } else { 0.0 };
            for v in &seen {
                sink.record_version(*v, MetricKind::ConversionRate, at, value);
            }
        }

        if let Some(trace_id) = meta.trace {
            let trace = assemble_trace(
                app,
                trace_id,
                std::mem::take(&mut spans[i]),
                std::mem::take(&mut patches[i]),
            );
            collector.record(trace);
        }
    }
    stats
}

/// Rebuilds one sampled request's trace from its span records: timeout
/// patches are applied by path, spans sort into pre-order DFS (the paths
/// are the tree addresses, with sibling ranks matching the recursive
/// walk's push order), and ids/parents are renumbered positionally.
fn assemble_trace(
    app: &Application,
    trace_id: TraceId,
    mut spans: Vec<SpanRec>,
    patches: Vec<PatchRec>,
) -> Trace {
    for p in patches {
        if let Some(s) = spans.iter_mut().find(|s| s.path == p.path) {
            s.duration_ms = p.perceived_ms;
            s.status = SpanStatus::TimedOut;
        }
    }
    spans.sort_by(|a, b| a.path.cmp(&b.path));
    let out = spans
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let parent = if s.path.is_empty() {
                None
            } else {
                let parent_path = &s.path[..s.path.len() - 1];
                let idx = spans
                    .binary_search_by(|cand| cand.path.as_slice().cmp(parent_path))
                    .expect("parent span exists");
                Some(SpanId(idx as u32))
            };
            Span {
                trace: trace_id,
                span: SpanId(i as u32),
                parent,
                service: app.version(s.version).service,
                version: s.version,
                endpoint: s.endpoint,
                start: SimTime::from_millis(s.start_ms),
                duration: SimDuration::from_millis(s.duration_ms),
                status: s.status,
                attempt: s.attempt,
                dark: s.dark,
            }
        })
        .collect();
    Trace::new(trace_id, out)
}

#[cfg(test)]
mod tests {
    use crate::app::{Application, CallDef, EndpointDef, VersionSpec};
    use crate::faults::{Fault, FaultKind};
    use crate::latency::LatencyModel;
    use crate::resilience::{BreakerPolicy, BreakerTransition, CallPolicy};
    use crate::sim::{ExecMode, RunReport, Simulation};
    use crate::topologies::{random_app, RandomAppParams};
    use crate::trace::{SpanStatus, Trace};
    use cex_core::metrics::{MetricKind, Summary};
    use cex_core::simtime::{SimDuration, SimTime};

    /// Full value-level dump of the metric store: per sorted scope, per
    /// kind, the sample count and the whole-run summary.
    fn store_fingerprint(sim: &Simulation) -> Vec<(String, MetricKind, usize, Summary)> {
        let mut scopes = sim.store().scopes();
        scopes.sort();
        let mut out = Vec::new();
        let horizon = SimTime::from_secs(100_000);
        for scope in scopes {
            for kind in MetricKind::all() {
                let count = sim.store().count(&scope, kind);
                let summary = sim.store().summary_between(&scope, kind, SimTime::ZERO, horizon);
                out.push((scope.clone(), kind, count, summary));
            }
        }
        out
    }

    /// Frontend → backend, optionally with a probabilistic side call, no
    /// load sensitivity (the recursive core feeds the load tracker in
    /// request order, the event core in time order — with sensitivity 0
    /// the latency multiplier is 1 either way).
    fn two_tier(probabilistic: bool) -> Application {
        let mut b = Application::builder();
        let mut front = EndpointDef::new("home", LatencyModel::Constant { ms: 5.0 })
            .call(CallDef::always("backend", "api"));
        if probabilistic {
            front = front.call(CallDef::with_probability("backend", "api", 0.6));
        }
        b.version(
            VersionSpec::new("frontend", "1.0.0")
                .capacity(1_000.0)
                .load_sensitivity(0.0)
                .endpoint(front),
        );
        b.version(
            VersionSpec::new("backend", "1.0.0")
                .capacity(1_000.0)
                .load_sensitivity(0.0)
                .endpoint(EndpointDef::new("api", LatencyModel::web(10.0))),
        );
        b.build().unwrap()
    }

    type RunDump = (Vec<RunReport>, Vec<(String, MetricKind, usize, Summary)>, Vec<Trace>);

    /// Cross-core store comparison: the two cores record the same sample
    /// multiset but feed the running-moment accumulators in different
    /// orders (request order vs time order), so mean/std_dev may differ in
    /// the last ulps. Counts and extrema must match bitwise.
    fn assert_stores_equivalent(
        rec: &[(String, MetricKind, usize, Summary)],
        ev: &[(String, MetricKind, usize, Summary)],
    ) {
        assert_eq!(rec.len(), ev.len());
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
        for (r, e) in rec.iter().zip(ev) {
            assert_eq!((&r.0, r.1, r.2), (&e.0, e.1, e.2), "scope/kind/count");
            assert_eq!(r.3.count, e.3.count, "{}/{:?} count", r.0, r.1);
            assert_eq!(r.3.min, e.3.min, "{}/{:?} min", r.0, r.1);
            assert_eq!(r.3.max, e.3.max, "{}/{:?} max", r.0, r.1);
            assert!(
                close(r.3.mean, e.3.mean),
                "{}/{:?} mean {} vs {}",
                r.0,
                r.1,
                r.3.mean,
                e.3.mean
            );
            assert!(
                close(r.3.std_dev, e.3.std_dev),
                "{}/{:?} std_dev {} vs {}",
                r.0,
                r.1,
                r.3.std_dev,
                e.3.std_dev
            );
        }
    }

    fn run_windows(
        app: Application,
        seed: u64,
        mode: ExecMode,
        setup: impl Fn(&mut Simulation),
    ) -> RunDump {
        let mut sim = Simulation::new(app, seed);
        sim.set_exec_mode(mode);
        sim.set_trace_sampling(1.0);
        setup(&mut sim);
        let reports = (0..3).map(|_| sim.run(SimDuration::from_secs(10), 40.0)).collect::<Vec<_>>();
        let fingerprint = store_fingerprint(&sim);
        let traces = sim.drain_traces();
        (reports, fingerprint, traces)
    }

    #[test]
    fn event_core_is_the_default() {
        let sim = Simulation::new(two_tier(false), 1);
        assert_eq!(sim.exec_mode(), ExecMode::Event);
        assert_eq!(sim.workers(), 1);
    }

    #[test]
    fn event_core_matches_recursive_closed_loop() {
        // Infinite concurrency, empty queues: the event core must
        // reproduce the recursive core's per-request outcomes exactly —
        // reports, every metric sample, and every trace.
        let rec = run_windows(two_tier(true), 42, ExecMode::Recursive, |_| {});
        let ev = run_windows(two_tier(true), 42, ExecMode::Event, |_| {});
        assert_eq!(rec.0, ev.0, "per-window reports");
        assert_stores_equivalent(&rec.1, &ev.1);
        assert_eq!(rec.2, ev.2, "collected traces");
        assert!(!ev.2.is_empty());
    }

    fn guard_policy() -> CallPolicy {
        CallPolicy {
            attempt_timeout: Some(SimDuration::from_millis(14)),
            max_retries: 2,
            backoff_base: SimDuration::from_millis(4),
            backoff_multiplier: 2.0,
            jitter: 0.5,
            breaker: None,
            fallback: true,
            fallback_latency: SimDuration::from_millis(1),
        }
    }

    #[test]
    fn event_core_matches_recursive_with_timeouts_retries_fallbacks() {
        // Same as above but through the guarded path (no breaker: the
        // recursive core feeds breaker outcomes in call order rather than
        // outcome-time order, so breakers are only equivalent in effect,
        // not byte-for-byte). An error burst forces retries and fallbacks.
        let setup = |sim: &mut Simulation| {
            sim.set_call_policy(guard_policy());
            let backend = sim.app().version_id("backend", "1.0.0").unwrap();
            sim.inject_fault(Fault {
                version: backend,
                kind: FaultKind::ErrorBurst { extra_error_rate: 0.4 },
                from: SimTime::from_secs(10),
                until: SimTime::from_secs(20),
            });
        };
        let rec = run_windows(two_tier(true), 7, ExecMode::Recursive, setup);
        let ev = run_windows(two_tier(true), 7, ExecMode::Event, setup);
        assert_eq!(rec.0, ev.0, "per-window reports");
        assert_stores_equivalent(&rec.1, &ev.1);
        assert_eq!(rec.2, ev.2, "collected traces");
        let timeouts: usize =
            rec.1.iter().filter(|(_, k, ..)| *k == MetricKind::Timeout).map(|(.., c, _)| c).sum();
        let retries: usize =
            rec.1.iter().filter(|(_, k, ..)| *k == MetricKind::Retry).map(|(.., c, _)| c).sum();
        assert!(timeouts > 0, "the burst actually produced timeouts");
        assert!(retries > 0, "the burst actually produced retries");
    }

    #[test]
    fn event_core_matches_recursive_with_overlapping_fault_windows() {
        // Overlapping bursts *sum* without capping in FaultPlan::effects
        // (0.7 + 0.6 = 1.3) and the executor clamps the combined
        // probability exactly once (faults.rs / exec.rs). Both cores must
        // clamp identically: same failure draws, same reports, same
        // traces. A latency spike overlaps the bursts so composed
        // latency multipliers are covered on the same windows too.
        let setup = |sim: &mut Simulation| {
            let backend = sim.app().version_id("backend", "1.0.0").unwrap();
            for (from_s, until_s, kind) in [
                (5, 20, FaultKind::ErrorBurst { extra_error_rate: 0.7 }),
                (10, 25, FaultKind::ErrorBurst { extra_error_rate: 0.6 }),
                (12, 18, FaultKind::LatencySpike { multiplier: 3.0 }),
            ] {
                sim.inject_fault(Fault {
                    version: backend,
                    kind,
                    from: SimTime::from_secs(from_s),
                    until: SimTime::from_secs(until_s),
                });
            }
        };
        let rec = run_windows(two_tier(true), 13, ExecMode::Recursive, setup);
        let ev = run_windows(two_tier(true), 13, ExecMode::Event, setup);
        assert_eq!(rec.0, ev.0, "per-window reports");
        assert_stores_equivalent(&rec.1, &ev.1);
        assert_eq!(rec.2, ev.2, "collected traces");
        // While the summed rate exceeds 1.0 (10 s..20 s) every backend
        // call must fail in both cores — the clamp actually bit.
        let saturated = rec
            .2
            .iter()
            .flat_map(|t| t.spans.iter())
            .filter(|s| {
                s.attempt == 0
                    && s.start >= SimTime::from_secs(10)
                    && s.start < SimTime::from_secs(20)
                    && !matches!(s.status, SpanStatus::Shed | SpanStatus::Fallback)
                    && s.parent.is_some()
            })
            .collect::<Vec<_>>();
        assert!(!saturated.is_empty(), "requests hit the saturated window");
        assert!(
            saturated.iter().all(|s| s.status == SpanStatus::Failed),
            "combined probability must clamp to exactly 1.0"
        );
    }

    #[test]
    fn timeout_fires_only_when_strictly_late() {
        // Child hop takes exactly 10 ms (constant latency, no proxy
        // overhead). A 10 ms deadline must NOT fire — the recursive rule
        // is `duration > limit` — while 9 ms must.
        let app = || {
            let mut b = Application::builder();
            b.version(
                VersionSpec::new("frontend", "1.0.0")
                    .capacity(1_000.0)
                    .load_sensitivity(0.0)
                    .endpoint(
                        EndpointDef::new("home", LatencyModel::Constant { ms: 1.0 })
                            .call(CallDef::always("backend", "api")),
                    ),
            );
            b.version(
                VersionSpec::new("backend", "1.0.0")
                    .capacity(1_000.0)
                    .load_sensitivity(0.0)
                    .endpoint(EndpointDef::new("api", LatencyModel::Constant { ms: 10.0 })),
            );
            b.build().unwrap()
        };
        let run = |deadline_ms: u64| {
            let mut sim = Simulation::new(app(), 5);
            sim.set_call_policy(CallPolicy {
                attempt_timeout: Some(SimDuration::from_millis(deadline_ms)),
                ..CallPolicy::default()
            });
            let report = sim.run(SimDuration::from_secs(5), 20.0);
            (report, sim.store().count("backend@1.0.0", MetricKind::Timeout))
        };
        let (exact, exact_timeouts) = run(10);
        assert_eq!(exact_timeouts, 0, "deadline == duration must not fire");
        assert_eq!(exact.failures, 0);
        let (late, late_timeouts) = run(9);
        assert_eq!(late_timeouts as u64, late.requests, "every attempt exceeds 9 ms");
        assert_eq!(late.failures, late.requests, "no retry, no fallback");
    }

    fn limited_app(queue: Option<u32>) -> Application {
        let mut b = Application::builder();
        let mut spec = VersionSpec::new("worker", "1.0.0")
            .capacity(1_000.0)
            .load_sensitivity(0.0)
            .concurrency_limit(1)
            .endpoint(EndpointDef::new("job", LatencyModel::Constant { ms: 40.0 }));
        if let Some(depth) = queue {
            spec = spec.queue_capacity(depth);
        }
        b.version(spec);
        b.build().unwrap()
    }

    #[test]
    fn open_loop_overload_builds_growing_queue_delay() {
        // One slot, 40 ms service time → 25 rps capacity; offered 50 rps.
        // With an unbounded queue nothing is shed and the queueing delay
        // grows throughout the window.
        let mut sim = Simulation::new(limited_app(None), 11);
        let report = sim.run(SimDuration::from_secs(10), 50.0);
        assert_eq!(report.failures, 0);
        let store = sim.store();
        let early = store.summary_between(
            "worker@1.0.0",
            MetricKind::QueueDelay,
            SimTime::ZERO,
            SimTime::from_secs(5),
        );
        let late = store.summary_between(
            "worker@1.0.0",
            MetricKind::QueueDelay,
            SimTime::from_secs(5),
            SimTime::from_secs(10),
        );
        assert!(early.count > 0 && late.count > 0);
        assert!(
            late.mean > 2.0 * early.mean,
            "queue delay keeps growing under 2× overload: early {} late {}",
            early.mean,
            late.mean
        );
        assert_eq!(store.count("worker@1.0.0", MetricKind::Shed), 0);
        // The backlog still drains: every admitted request completes and
        // reports an end-to-end outcome.
        assert_eq!(store.count("worker@1.0.0", MetricKind::ResponseTime) as u64, report.requests);
    }

    #[test]
    fn open_loop_overload_sheds_when_the_queue_is_full() {
        let mut sim = Simulation::new(limited_app(Some(2)), 11);
        let report = sim.run(SimDuration::from_secs(10), 50.0);
        let sheds = sim.store().count("worker@1.0.0", MetricKind::Shed) as u64;
        assert!(sheds > 0, "2× overload with queue depth 2 must shed");
        assert_eq!(report.failures, sheds, "every shed surfaces as a failed request");
        // Bounded queue bounds the wait: max delay ≤ depth × service time.
        let delay = sim.store().summary_between(
            "worker@1.0.0",
            MetricKind::QueueDelay,
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        assert!(delay.max <= 80.0, "delay bounded by the queue: {}", delay.max);
    }

    #[test]
    fn outputs_are_byte_identical_across_worker_counts() {
        // Property: over seeded random topologies, with resilience,
        // breakers, faults and tracing all active, every observable output
        // is identical at 1, 2 and 8 workers.
        for seed in [3_u64, 17] {
            let run = |workers: usize| -> (RunDump, Vec<BreakerTransition>) {
                let params =
                    RandomAppParams { services: 12, layers: 3, ..RandomAppParams::default() };
                let app = random_app(&params, seed);
                let fault_target = app.version_id("svc-0001", "1.0.0").unwrap();
                let mut sim = Simulation::new(app, seed ^ 0x9e37_79b9);
                sim.set_workers(workers);
                sim.set_trace_sampling(0.3);
                sim.set_call_policy(CallPolicy {
                    attempt_timeout: Some(SimDuration::from_millis(60)),
                    max_retries: 1,
                    backoff_base: SimDuration::from_millis(5),
                    backoff_multiplier: 2.0,
                    jitter: 0.5,
                    breaker: Some(BreakerPolicy {
                        error_threshold: 0.5,
                        min_calls: 10,
                        window: 40,
                        cooldown: SimDuration::from_secs(5),
                        half_open_probes: 3,
                    }),
                    fallback: true,
                    fallback_latency: SimDuration::from_millis(1),
                });
                sim.inject_fault(Fault {
                    version: fault_target,
                    kind: FaultKind::Outage,
                    from: SimTime::from_secs(10),
                    until: SimTime::from_secs(20),
                });
                let reports =
                    (0..3).map(|_| sim.run(SimDuration::from_secs(10), 40.0)).collect::<Vec<_>>();
                let fingerprint = store_fingerprint(&sim);
                let traces = sim.drain_traces();
                let transitions = sim.drain_breaker_transitions();
                ((reports, fingerprint, traces), transitions)
            };
            let w1 = run(1);
            let w2 = run(2);
            let w8 = run(8);
            assert_eq!(w1.0 .0, w2.0 .0, "reports w1 vs w2 (seed {seed})");
            assert_eq!(w1.0 .0, w8.0 .0, "reports w1 vs w8 (seed {seed})");
            assert_eq!(w1.0 .1, w2.0 .1, "store w1 vs w2 (seed {seed})");
            assert_eq!(w1.0 .1, w8.0 .1, "store w1 vs w8 (seed {seed})");
            assert_eq!(w1.0 .2, w2.0 .2, "traces w1 vs w2 (seed {seed})");
            assert_eq!(w1.0 .2, w8.0 .2, "traces w1 vs w8 (seed {seed})");
            assert_eq!(w1.1, w2.1, "transitions w1 vs w2 (seed {seed})");
            assert_eq!(w1.1, w8.1, "transitions w1 vs w8 (seed {seed})");
            assert!(!w1.0 .2.is_empty(), "traces were actually collected");
            assert!(!w1.1.is_empty(), "the outage actually tripped a breaker");
        }
    }

    #[test]
    fn obs_counters_are_identical_across_worker_counts() {
        // Property: the unified counter registry is a pure function of the
        // seed. Over seeded random topologies with faults, breakers and
        // tracing active, every counter and gauge (events popped/sent,
        // sub-rounds, sheds, store flushes, trace sampling tallies, queue
        // high-water marks) is identical at 1, 2 and 8 workers.
        let mut any_sheds = false;
        for seed in [7_u64, 23, 41] {
            let run = |workers: usize| {
                let params =
                    RandomAppParams { services: 12, layers: 3, ..RandomAppParams::default() };
                let app = random_app(&params, seed);
                let fault_target = app.version_id("svc-0001", "1.0.0").unwrap();
                let mut sim = Simulation::new(app, seed.wrapping_mul(0x9e37_79b9));
                sim.set_workers(workers);
                sim.set_trace_sampling(0.4);
                sim.set_call_policy(CallPolicy {
                    attempt_timeout: Some(SimDuration::from_millis(60)),
                    max_retries: 1,
                    backoff_base: SimDuration::from_millis(5),
                    backoff_multiplier: 2.0,
                    jitter: 0.5,
                    breaker: Some(BreakerPolicy {
                        error_threshold: 0.5,
                        min_calls: 10,
                        window: 40,
                        cooldown: SimDuration::from_secs(5),
                        half_open_probes: 3,
                    }),
                    fallback: true,
                    fallback_latency: SimDuration::from_millis(1),
                });
                sim.inject_fault(Fault {
                    version: fault_target,
                    kind: FaultKind::Outage,
                    from: SimTime::from_secs(5),
                    until: SimTime::from_secs(15),
                });
                for _ in 0..2 {
                    sim.run(SimDuration::from_secs(10), 40.0);
                }
                sim.counters()
            };
            let w1 = run(1);
            let w2 = run(2);
            let w8 = run(8);
            assert_eq!(w1, w2, "counters w1 vs w2 (seed {seed})");
            assert_eq!(w1, w8, "counters w1 vs w8 (seed {seed})");
            assert!(w1.count("sim.events.popped") > 0, "events were processed (seed {seed})");
            any_sheds |= w1.count("sim.sheds") > 0;
        }
        assert!(any_sheds, "at least one topology exercised the shed counter");
    }

    #[test]
    fn queue_hwm_gauge_tracks_bounded_queue_depth() {
        // One slot, 40 ms service, bounded queue of 4, offered 2× capacity:
        // the queue saturates, so the high-water gauge must reach the bound
        // and shed counts must be visible in the registry.
        let mut sim = Simulation::new(limited_app(Some(4)), 11);
        sim.run(SimDuration::from_secs(10), 50.0);
        let counters = sim.counters();
        assert_eq!(counters.gauge("sim.queue_hwm.worker"), 4, "queue filled to its bound");
        assert!(counters.count("sim.sheds") > 0, "overflow beyond the bound is shed");
    }

    #[test]
    fn tail_sampling_is_byte_identical_across_worker_counts() {
        // Property: with tail-based sampling active, retained traces
        // (ids, spans, weights), sampling counters and the sketch-backed
        // health report are identical at 1, 2 and 8 workers — sampling
        // decisions depend only on the deterministic offer order.
        use crate::health::{HealthAccumulator, HealthReport};
        use crate::trace::TailSamplingConfig;
        let run = |workers: usize| {
            let params = RandomAppParams { services: 12, layers: 3, ..RandomAppParams::default() };
            let app = random_app(&params, 29);
            let fault_target = app.version_id("svc-0001", "1.0.0").unwrap();
            let baseline = fault_target;
            let mut sim = Simulation::new(app, 0x5eed);
            sim.set_workers(workers);
            sim.set_trace_sampling(0.5);
            sim.set_tail_sampling(Some(TailSamplingConfig {
                healthy_keep_one_in: 5,
                slow_quantile: 0.9,
                warmup: 64,
            }));
            sim.inject_fault(Fault {
                version: fault_target,
                kind: FaultKind::ErrorBurst { extra_error_rate: 0.3 },
                from: SimTime::from_secs(5),
                until: SimTime::from_secs(15),
            });
            sim.run(SimDuration::from_secs(20), 30.0);
            let book = sim.span_book();
            let stats = sim.trace_collector().sampling_stats();
            let traces = sim.drain_traces();
            let mut acc = HealthAccumulator::new();
            acc.observe_all(&traces);
            let render =
                HealthReport::build(&acc, &book, baseline, baseline).with_sampling(stats).render();
            (traces, stats, render)
        };
        let w1 = run(1);
        let w2 = run(2);
        let w8 = run(8);
        assert_eq!(w1.0, w2.0, "retained traces w1 vs w2");
        assert_eq!(w1.0, w8.0, "retained traces w1 vs w8");
        assert_eq!(w1.1, w2.1, "sampling stats w1 vs w2");
        assert_eq!(w1.1, w8.1, "sampling stats w1 vs w8");
        assert_eq!(w1.2, w2.2, "health render w1 vs w2");
        assert_eq!(w1.2, w8.2, "health render w1 vs w8");
        assert!(w1.1.tail_kept > 0, "the fault produced tail-kept traces");
        assert!(w1.1.healthy_dropped > 0, "healthy traces were downsampled");
        assert!(w1.0.iter().any(|t| t.weight > 1), "a weighted representative survived");
        assert!(w1.2.contains("sampling: recorded"), "render discloses sampling");
    }

    #[test]
    fn queued_requests_drain_across_the_window_boundary() {
        // Requests admitted near the window end finish after `to`; their
        // samples must still land (the report covers every arrival).
        let mut sim = Simulation::new(limited_app(None), 23);
        let r1 = sim.run(SimDuration::from_secs(2), 50.0);
        let r2 = sim.run(SimDuration::from_secs(2), 50.0);
        assert!(r1.requests > 0 && r2.requests > 0);
        assert_eq!(
            sim.store().count("worker@1.0.0", MetricKind::ResponseTime) as u64,
            r1.requests + r2.requests
        );
    }
}
