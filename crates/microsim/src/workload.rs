//! Open-loop workload generation.
//!
//! Continuous experimentation "does not mimic user behavior, it rather uses
//! real users' interactions with the system" (Chapter 1). The simulator's
//! stand-in for real users is an open-loop arrival process: requests arrive
//! with exponential gaps (Poisson process) at a configurable rate, each
//! issued by a user drawn from a [`Population`] and entering the
//! application at a weighted entry endpoint.

use crate::app::ServiceId;
use crate::routing::UserId;
use cex_core::rng::SplitMix64;
use cex_core::simtime::{SimDuration, SimTime};
use cex_core::users::{GroupId, Population};

/// A weighted entry point into the application.
#[derive(Debug, Clone, PartialEq)]
pub struct EntryPoint {
    /// Entry service.
    pub service: ServiceId,
    /// Entry endpoint name.
    pub endpoint: String,
    /// Relative weight among all entry points.
    pub weight: f64,
}

/// Workload description: who calls what, how often.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// The user population issuing requests.
    pub population: Population,
    /// Mean arrival rate in requests per second.
    pub rate_rps: f64,
    /// Weighted entry points (must be non-empty; weights need not sum to 1).
    pub entries: Vec<EntryPoint>,
}

impl Workload {
    /// A single-entry workload over a single anonymous user group.
    pub fn simple(service: ServiceId, endpoint: impl Into<String>, rate_rps: f64) -> Self {
        Workload {
            population: Population::single("all", 10_000),
            rate_rps,
            entries: vec![EntryPoint { service, endpoint: endpoint.into(), weight: 1.0 }],
        }
    }
}

/// One generated request arrival.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Virtual arrival time.
    pub time: SimTime,
    /// The issuing user.
    pub user: UserId,
    /// The user's group.
    pub group: GroupId,
    /// Entry service.
    pub service: ServiceId,
    /// Entry endpoint name.
    pub endpoint: String,
}

/// Generates Poisson arrivals for a [`Workload`] over a time window.
///
/// User ids are laid out in contiguous per-group ranges so a
/// [`UserId`] can be mapped back to its group with
/// [`ArrivalProcess::group_of`].
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    workload: Workload,
    group_bases: Vec<u64>,
    cumulative_entry_weights: Vec<f64>,
    rng: SplitMix64,
    now: SimTime,
}

impl ArrivalProcess {
    /// Creates a process starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics when the workload has no entries or a non-positive rate.
    pub fn new(workload: Workload, start: SimTime, seed: u64) -> Self {
        assert!(!workload.entries.is_empty(), "workload needs at least one entry point");
        assert!(workload.rate_rps > 0.0, "arrival rate must be positive");
        let mut group_bases = Vec::with_capacity(workload.population.len());
        let mut base = 0u64;
        for (_, g) in workload.population.iter() {
            group_bases.push(base);
            base += g.size().max(1);
        }
        let total_weight: f64 = workload.entries.iter().map(|e| e.weight).sum();
        assert!(total_weight > 0.0, "entry weights must sum to a positive value");
        let mut acc = 0.0;
        let cumulative_entry_weights = workload
            .entries
            .iter()
            .map(|e| {
                acc += e.weight / total_weight;
                acc
            })
            .collect();
        ArrivalProcess {
            workload,
            group_bases,
            cumulative_entry_weights,
            rng: SplitMix64::new(seed),
            now: start,
        }
    }

    /// The next arrival (advances virtual time).
    pub fn next_arrival(&mut self) -> Arrival {
        // Exponential inter-arrival gap.
        let u = self.rng.next_f64().max(f64::MIN_POSITIVE);
        let gap_ms = (-u.ln() / self.workload.rate_rps * 1_000.0).round().max(0.0) as u64;
        self.now += SimDuration::from_millis(gap_ms);

        // Draw a user: group by size weight, then uniform within group.
        let total_users = self.workload.population.total_users().max(1);
        let pick = (self.rng.next_f64() * total_users as f64) as u64;
        let mut group = GroupId(0);
        let mut seen = 0u64;
        for (gid, g) in self.workload.population.iter() {
            seen += g.size();
            if pick < seen {
                group = gid;
                break;
            }
            group = gid;
        }
        let gsize = self.workload.population.group(group).size().max(1);
        let user = UserId(self.group_bases[group.0] + (self.rng.next_f64() * gsize as f64) as u64);

        // Draw an entry point.
        let x = self.rng.next_f64();
        let idx = self
            .cumulative_entry_weights
            .iter()
            .position(|w| x < *w)
            .unwrap_or(self.workload.entries.len() - 1);
        let entry = &self.workload.entries[idx];
        Arrival {
            time: self.now,
            user,
            group,
            service: entry.service,
            endpoint: entry.endpoint.clone(),
        }
    }

    /// All arrivals strictly before `end`.
    pub fn arrivals_until(&mut self, end: SimTime) -> Vec<Arrival> {
        let mut out = Vec::new();
        loop {
            let a = self.next_arrival();
            if a.time >= end {
                // The overshooting arrival is dropped; open-loop processes
                // are memoryless so this does not bias the next window.
                self.now = end;
                break;
            }
            out.push(a);
        }
        out
    }

    /// Maps a user id back to its group.
    pub fn group_of(&self, user: UserId) -> GroupId {
        let mut group = GroupId(0);
        for (i, base) in self.group_bases.iter().enumerate() {
            if user.0 >= *base {
                group = GroupId(i);
            }
        }
        group
    }

    /// Current virtual time of the process.
    pub fn now(&self) -> SimTime {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cex_core::users::UserGroup;

    fn workload(rate: f64) -> Workload {
        Workload {
            population: Population::new(vec![
                UserGroup::new("eu", 6_000),
                UserGroup::new("us", 4_000),
            ])
            .unwrap(),
            rate_rps: rate,
            entries: vec![
                EntryPoint { service: ServiceId(0), endpoint: "home".into(), weight: 3.0 },
                EntryPoint { service: ServiceId(0), endpoint: "product".into(), weight: 1.0 },
            ],
        }
    }

    #[test]
    fn arrival_rate_matches_target() {
        let mut p = ArrivalProcess::new(workload(100.0), SimTime::ZERO, 42);
        let arrivals = p.arrivals_until(SimTime::from_secs(60));
        let rate = arrivals.len() as f64 / 60.0;
        assert!((rate - 100.0).abs() < 5.0, "rate {rate}");
    }

    #[test]
    fn arrivals_are_time_ordered_and_bounded() {
        let mut p = ArrivalProcess::new(workload(50.0), SimTime::from_secs(5), 1);
        let end = SimTime::from_secs(15);
        let arrivals = p.arrivals_until(end);
        assert!(arrivals.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(arrivals.iter().all(|a| a.time < end && a.time >= SimTime::from_secs(5)));
        assert_eq!(p.now(), end);
    }

    #[test]
    fn entry_weights_respected() {
        let mut p = ArrivalProcess::new(workload(200.0), SimTime::ZERO, 7);
        let arrivals = p.arrivals_until(SimTime::from_secs(120));
        let home = arrivals.iter().filter(|a| a.endpoint == "home").count() as f64;
        let share = home / arrivals.len() as f64;
        assert!((share - 0.75).abs() < 0.03, "home share {share}");
    }

    #[test]
    fn group_shares_follow_population() {
        let mut p = ArrivalProcess::new(workload(200.0), SimTime::ZERO, 3);
        let arrivals = p.arrivals_until(SimTime::from_secs(120));
        let eu = arrivals.iter().filter(|a| a.group == GroupId(0)).count() as f64;
        let share = eu / arrivals.len() as f64;
        assert!((share - 0.6).abs() < 0.03, "eu share {share}");
    }

    #[test]
    fn group_of_inverts_user_layout() {
        let mut p = ArrivalProcess::new(workload(100.0), SimTime::ZERO, 11);
        for _ in 0..1_000 {
            let a = p.next_arrival();
            assert_eq!(p.group_of(a.user), a.group);
        }
    }

    #[test]
    fn determinism() {
        let mut a = ArrivalProcess::new(workload(100.0), SimTime::ZERO, 5);
        let mut b = ArrivalProcess::new(workload(100.0), SimTime::ZERO, 5);
        for _ in 0..100 {
            assert_eq!(a.next_arrival(), b.next_arrival());
        }
    }

    #[test]
    #[should_panic(expected = "at least one entry point")]
    fn empty_entries_panics() {
        let w =
            Workload { population: Population::single("all", 10), rate_rps: 1.0, entries: vec![] };
        ArrivalProcess::new(w, SimTime::ZERO, 1);
    }
}
