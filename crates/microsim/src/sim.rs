//! The simulation facade: application + router + monitoring + tracing on a
//! virtual clock.
//!
//! [`Simulation`] owns all moving parts and exposes the operations Bifrost
//! and the evaluation harnesses need: advance virtual time under a
//! workload, mutate routing between windows, deploy new versions, and read
//! the metric store and trace collector.

use crate::app::{Application, VersionId, VersionSpec};
use crate::error::SimError;
use crate::event::{self, EventRequest};
use crate::exec::{execute_request, MetricSink};
use crate::faults::{Fault, FaultPlan};
use crate::load::{LoadTracker, OccupancyTable};
use crate::monitor::{MetricStore, ScopeId};
use crate::resilience::{
    BreakerState, BreakerTransition, CallPolicy, Resilience, ResiliencePlan, ResilienceState,
};
use crate::routing::Router;
use crate::trace::{Trace, TraceCollector};
use crate::workload::{ArrivalProcess, Workload};
use cex_core::metrics::{MetricKind, OnlineStats, Summary};
use cex_core::obs::{Counters, ObsConfig, ProfileSnapshot, Profiler};
use cex_core::rng::{sub_seed, SplitMix64};
use cex_core::simtime::{SimDuration, SimTime};

/// Scope under which end-to-end (user-perceived) metrics are recorded.
pub const APP_SCOPE: &str = "app";

/// Which request-execution core a window runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// The original depth-first walk ([`crate::exec`]): one request's call
    /// tree completes before the next request starts. Kept as the
    /// semantic reference; cannot model queueing or use multiple cores.
    Recursive,
    /// The discrete-event scheduler ([`crate::event`]): requests interleave
    /// in simulated time, per-version concurrency limits and admission
    /// queues apply, and execution shards across worker threads with
    /// byte-identical output at any worker count. The default.
    Event,
}

/// Aggregate outcome of one simulated window.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Window start.
    pub from: SimTime,
    /// Window end.
    pub to: SimTime,
    /// Requests executed (primary traffic only).
    pub requests: u64,
    /// Requests that failed.
    pub failures: u64,
    /// End-to-end response-time summary in milliseconds.
    pub response_time: Summary,
}

impl RunReport {
    /// Achieved throughput in requests per second.
    pub fn throughput_rps(&self) -> f64 {
        let secs = (self.to - self.from).as_millis() as f64 / 1_000.0;
        if secs > 0.0 {
            self.requests as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of failed requests.
    pub fn error_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.failures as f64 / self.requests as f64
        }
    }
}

/// The simulation facade.
#[derive(Debug)]
pub struct Simulation {
    app: Application,
    router: Router,
    load: LoadTracker,
    occupancy: OccupancyTable,
    exec_mode: ExecMode,
    workers: usize,
    store: MetricStore,
    /// `service@version` scope ids indexed by `VersionId`, kept in sync
    /// with deployments so the request loop records without formatting or
    /// interning.
    version_scopes: Vec<ScopeId>,
    app_scope: ScopeId,
    collector: TraceCollector,
    clock: SimTime,
    rng: SplitMix64,
    workload_seed: u64,
    windows_run: u64,
    faults: FaultPlan,
    resilience_plan: ResiliencePlan,
    resilience_state: ResilienceState,
    /// Wall-clock phase tree (`sim.window`, event-core phases, …). The
    /// `sim.window` node is recorded unconditionally and backs
    /// [`Simulation::sim_busy`]; sub-phase spans honour the obs config.
    profiler: Profiler,
    /// Running deterministic event-core tallies, accumulated across
    /// windows at each canonical merge.
    event_tally: event::WindowTally,
}

impl Simulation {
    /// Creates a simulation over `app` with baseline routing, light
    /// default trace sampling (fraction 0.05) and the clock at zero.
    pub fn new(app: Application, seed: u64) -> Self {
        let load = LoadTracker::new(&app);
        let occupancy = OccupancyTable::new(&app);
        let store = MetricStore::new();
        let version_scopes = store.intern_version_scopes(&app);
        let app_scope = store.intern(APP_SCOPE);
        Simulation {
            app,
            router: Router::new(),
            load,
            occupancy,
            exec_mode: ExecMode::Event,
            workers: 1,
            store,
            version_scopes,
            app_scope,
            collector: TraceCollector::sampled(0.05),
            clock: SimTime::ZERO,
            rng: SplitMix64::new(sub_seed(seed, 0)),
            workload_seed: sub_seed(seed, 1),
            windows_run: 0,
            faults: FaultPlan::none(),
            resilience_plan: ResiliencePlan::none(),
            resilience_state: ResilienceState::new(),
            profiler: Profiler::default(),
            event_tally: event::WindowTally::default(),
        }
    }

    /// Reconfigures the self-observability layer: replaces the profiler
    /// (discarding recorded phases) and arms or disarms the metric
    /// store's wall-clock probes. Deterministic counters are unaffected —
    /// they are pure functions of the seed and always collected.
    pub fn set_obs(&mut self, config: ObsConfig) {
        self.profiler = Profiler::new(config);
        self.store.set_probes_armed(config.profile);
    }

    /// The wall-clock phase profiler (sidecar report only — timings never
    /// enter deterministic outputs).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// A profile snapshot including the metric store's probe totals
    /// (`store.flush`, `store.window_query`) folded in.
    pub fn profile(&self) -> ProfileSnapshot {
        let p = self.profiler.clone();
        self.fold_probes_into(&p);
        p.snapshot()
    }

    /// Folds the metric store's wall-probe totals (`store.flush`,
    /// `store.window_query`) into `target` — for callers assembling a
    /// combined phase tree across subsystems.
    pub fn fold_probes_into(&self, target: &Profiler) {
        let flush = self.store.flush_probe();
        target.fold_bulk("store.flush", flush.total_ns(), flush.count());
        let query = self.store.query_probe();
        target.fold_bulk("store.window_query", query.total_ns(), query.count());
    }

    /// Deterministic counter-registry snapshot: event-core tallies,
    /// metric-store and trace-collector accounting, and per-service
    /// queue-depth high-water gauges. Every value is a pure function of
    /// the seed — identical across runs and worker counts — and safe to
    /// journal (see [`cex_core::obs`]).
    pub fn counters(&self) -> Counters {
        let mut c = Counters::new();
        c.add("sim.windows", self.windows_run);
        c.add("sim.events.popped", self.event_tally.events_popped);
        c.add("sim.events.sent", self.event_tally.events_sent);
        c.add("sim.events.subrounds", self.event_tally.sub_rounds);
        c.add("sim.sheds", self.event_tally.sheds);
        c.add("store.window_reads", self.store.window_reads());
        c.add("store.batch_flushes", self.store.batch_flushes());
        c.hwm("store.interner.scopes", self.store.interned_scopes());
        let stats = self.collector.sampling_stats();
        c.add("trace.recorded", stats.recorded);
        c.add("trace.evicted", stats.evicted);
        c.add("trace.tail.kept", stats.tail_kept);
        c.add("trace.tail.downsampled_kept", stats.downsampled_kept);
        c.add("trace.tail.healthy_dropped", stats.healthy_dropped);
        c.add("trace.tail.sketch_collapses", self.collector.tail_sketch_collapses());
        for (sid, name) in self.app.services() {
            let hwm = self
                .app
                .versions_of(sid)
                .iter()
                .map(|v| self.occupancy.queue_hwm(*v))
                .max()
                .unwrap_or(0);
            if hwm > 0 {
                c.hwm(&format!("sim.queue_hwm.{name}"), hwm);
            }
        }
        c
    }

    /// Schedules a fault window (see [`crate::faults`]).
    ///
    /// # Panics
    ///
    /// Panics when the fault window is malformed.
    pub fn inject_fault(&mut self, fault: Fault) {
        self.faults.inject(fault);
    }

    /// The active fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Applies one [`CallPolicy`] to every service edge (see
    /// [`crate::resilience`]). Breaker state carries over: changing the
    /// policy mid-run does not reset open breakers.
    ///
    /// # Panics
    ///
    /// Panics when the policy is out of domain.
    pub fn set_call_policy(&mut self, policy: CallPolicy) {
        self.resilience_plan = ResiliencePlan::with_default(policy);
    }

    /// Replaces the whole resilience plan (per-edge policies).
    pub fn set_resilience_plan(&mut self, plan: ResiliencePlan) {
        self.resilience_plan = plan;
    }

    /// The active resilience plan.
    pub fn resilience_plan(&self) -> &ResiliencePlan {
        &self.resilience_plan
    }

    /// Current state of the breaker on `caller → callee`, or `None` when
    /// that version edge has never seen a guarded call.
    pub fn breaker_state(&self, caller: VersionId, callee: VersionId) -> Option<BreakerState> {
        self.resilience_state.breaker_state(caller, callee)
    }

    /// Drains breaker transitions accumulated since the last drain, in
    /// occurrence order (the Bifrost engine journals these per tick).
    pub fn drain_breaker_transitions(&mut self) -> Vec<BreakerTransition> {
        self.resilience_state.drain_transitions()
    }

    /// Scratch-buffer variant of [`Simulation::drain_breaker_transitions`]:
    /// clears `out` and drains into it, so per-tick callers reuse one
    /// allocation.
    pub fn drain_breaker_transitions_into(&mut self, out: &mut Vec<BreakerTransition>) {
        self.resilience_state.drain_transitions_into(out);
    }

    /// Selects the execution core for subsequent windows (see
    /// [`ExecMode`]). Switching cores mid-run is allowed; each window runs
    /// entirely on one core.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
    }

    /// The active execution core.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Sets the worker-thread count for [`ExecMode::Event`] windows.
    /// Outputs are byte-identical at any worker count; this only trades
    /// wall-clock time. Ignored by [`ExecMode::Recursive`]. Clamped to at
    /// least 1 (and internally to the service count — extra workers would
    /// own no shard).
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// The configured event-core worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Replaces the router (e.g. to enable proxy-overhead modelling).
    pub fn set_router(&mut self, router: Router) {
        self.router = router;
    }

    /// Shared access to the router.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Mutable access to the router (Bifrost enacts phases through this).
    pub fn router_mut(&mut self) -> &mut Router {
        &mut self.router
    }

    /// Sets the trace sampling fraction. Collected traces, aggregates and
    /// the trace-id sequence are preserved — only the sampling rate of
    /// future requests changes.
    pub fn set_trace_sampling(&mut self, fraction: f64) {
        self.collector.set_sampling(fraction);
    }

    /// Caps how many traces the collector retains (oldest evicted first);
    /// see [`TraceCollector::set_capacity`].
    pub fn set_trace_retention(&mut self, capacity: usize) {
        self.collector.set_capacity(capacity);
    }

    /// Enables (or disables, with `None`) tail-based sampling on the
    /// trace collector; see [`TraceCollector::set_tail_sampling`].
    pub fn set_tail_sampling(&mut self, config: Option<crate::trace::TailSamplingConfig>) {
        self.collector.set_tail_sampling(config);
    }

    /// Read access to the trace collector (retention counters, streaming
    /// per-edge aggregates).
    pub fn trace_collector(&self) -> &TraceCollector {
        &self.collector
    }

    /// Resolves span ids back to names for the current application state.
    /// Rebuilt on demand: deploys after a snapshot will not be covered by
    /// an older book.
    pub fn span_book(&self) -> crate::trace::SpanBook {
        crate::trace::SpanBook::from_app(&self.app)
    }

    /// The application under simulation.
    pub fn app(&self) -> &Application {
        &self.app
    }

    /// Deploys a new version (experiments do this at runtime).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the spec is invalid.
    pub fn deploy(&mut self, spec: VersionSpec) -> Result<VersionId, SimError> {
        let id = self.app.deploy(spec)?;
        self.app.validate()?;
        self.load.resize_for(&self.app);
        self.occupancy.resize_for(&self.app);
        self.version_scopes = self.store.intern_version_scopes(&self.app);
        Ok(id)
    }

    /// The metric store.
    pub fn store(&self) -> &MetricStore {
        &self.store
    }

    /// Collected traces so far, oldest first.
    pub fn traces(&self) -> impl Iterator<Item = &Trace> {
        self.collector.traces()
    }

    /// Removes and returns collected traces.
    pub fn drain_traces(&mut self) -> Vec<Trace> {
        self.collector.drain()
    }

    /// Scratch-buffer variant of [`Simulation::drain_traces`]: clears
    /// `out` and drains into it, so per-tick callers reuse one allocation.
    pub fn drain_traces_into(&mut self, out: &mut Vec<Trace>) {
        self.collector.drain_into(out);
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Cumulative wall-clock time spent executing simulation windows
    /// ([`Simulation::run_with`]). The Bifrost engine subtracts this from
    /// total wall time to account its own processing cost separately from
    /// the application's. A thin read of the profiler's `sim.window`
    /// node, which is recorded regardless of the obs config.
    pub fn sim_busy(&self) -> std::time::Duration {
        self.profiler.total("sim.window")
    }

    /// Runs a window of `duration` under a simple single-entry workload at
    /// `rate_rps`, entering at the first endpoint of service 0's baseline.
    pub fn run(&mut self, duration: SimDuration, rate_rps: f64) -> RunReport {
        let entry_service = crate::app::ServiceId(0);
        let baseline = self.app.baseline_of(entry_service);
        let endpoint = self.app.endpoint(self.app.version(baseline).endpoints[0]).name.clone();
        let workload = Workload::simple(entry_service, endpoint, rate_rps);
        self.run_with(duration, &workload)
    }

    /// Runs a window of `duration` under `workload`, advancing the clock.
    ///
    /// Per-request, per-version metrics land in the store under
    /// `service@version` scopes; end-to-end metrics under [`APP_SCOPE`].
    ///
    /// # Panics
    ///
    /// Panics if the workload references unknown services/endpoints (a
    /// configuration error in the harness, not a runtime condition).
    pub fn run_with(&mut self, duration: SimDuration, workload: &Workload) -> RunReport {
        match self.exec_mode {
            ExecMode::Recursive => self.run_with_recursive(duration, workload),
            ExecMode::Event => self.run_with_event(duration, workload),
        }
    }

    /// [`ExecMode::Event`] window: pre-generate the arrivals (consuming the
    /// shared RNG in the same order the recursive core would), hand them to
    /// the event scheduler, and merge its canonical outputs.
    fn run_with_event(&mut self, duration: SimDuration, workload: &Workload) -> RunReport {
        let window_started = std::time::Instant::now();
        let from = self.clock;
        let to = from + duration;
        let window_seed = sub_seed(self.workload_seed, self.windows_run);
        self.windows_run += 1;
        let mut requests = Vec::new();
        {
            cex_core::span!(self.profiler, "sim.window.arrivals");
            let mut arrivals = ArrivalProcess::new(workload.clone(), from, window_seed);
            for arrival in arrivals.arrivals_until(to) {
                // Same per-request draw order as the recursive facade:
                // trace decision, root hop seed, conversion draw.
                let trace = self.collector.begin_trace();
                let root_seed = self.rng.next_u64();
                let conv_u = self.rng.next_f64();
                requests.push(EventRequest {
                    time: arrival.time,
                    user: arrival.user,
                    service: arrival.service,
                    endpoint: arrival.endpoint,
                    trace,
                    root_seed,
                    conv_u,
                });
            }
        }
        let mut sink = MetricSink::new(&self.store, &self.version_scopes, self.app_scope);
        let stats = event::run_window(
            &self.app,
            &self.router,
            &mut self.load,
            &mut self.occupancy,
            &self.faults,
            &self.resilience_plan,
            &mut self.resilience_state,
            &mut sink,
            &mut self.collector,
            requests,
            self.workers,
            &self.profiler,
        );
        let tally = &stats.tally;
        self.event_tally.events_popped += tally.events_popped;
        self.event_tally.events_sent += tally.events_sent;
        self.event_tally.sub_rounds += tally.sub_rounds;
        self.event_tally.sheds += tally.sheds;
        let secs = duration.as_millis() as f64 / 1_000.0;
        if secs > 0.0 {
            sink.record_app(MetricKind::Throughput, to, stats.requests as f64 / secs);
        }
        drop(sink); // window boundary: flush buffered samples
        self.clock = to;
        self.profiler.record("sim.window", window_started.elapsed());
        RunReport {
            from,
            to,
            requests: stats.requests,
            failures: stats.failures,
            response_time: stats.rt.summary(),
        }
    }

    /// [`ExecMode::Recursive`] window: the original one-request-at-a-time
    /// depth-first walk.
    fn run_with_recursive(&mut self, duration: SimDuration, workload: &Workload) -> RunReport {
        let window_started = std::time::Instant::now();
        let from = self.clock;
        let to = from + duration;
        let window_seed = sub_seed(self.workload_seed, self.windows_run);
        self.windows_run += 1;
        let mut arrivals = ArrivalProcess::new(workload.clone(), from, window_seed);

        let mut requests = 0u64;
        let mut failures = 0u64;
        let mut rt = OnlineStats::new();
        // One batched sink per window: samples flush at the window end (or
        // at the batch's internal size threshold), both deterministic
        // boundaries, so store contents never depend on wall-clock timing.
        let mut sink = MetricSink::new(&self.store, &self.version_scopes, self.app_scope);
        for arrival in arrivals.arrivals_until(to) {
            let trace_id = self.collector.begin_trace();
            let result = execute_request(
                &self.app,
                &self.router,
                &mut self.load,
                &mut self.rng,
                arrival.user,
                arrival.service,
                &arrival.endpoint,
                arrival.time,
                trace_id,
                Some(&mut sink),
                // An empty plan skips the guarded path entirely, keeping
                // the policy-free hot path identical to before.
                (!self.resilience_plan.is_empty()).then_some(Resilience {
                    plan: &self.resilience_plan,
                    state: &mut self.resilience_state,
                }),
                &self.faults,
            )
            .expect("workload references a valid entry point");
            requests += 1;
            if !result.ok {
                failures += 1;
            }
            let ms = result.response_time.as_millis_f64();
            rt.push(ms);
            sink.record_app(MetricKind::ResponseTime, arrival.time, ms);
            sink.record_app(MetricKind::ErrorRate, arrival.time, if result.ok { 0.0 } else { 1.0 });
            if let Some(trace) = result.trace {
                self.collector.record(trace);
            }
        }
        // One throughput sample per window.
        let secs = duration.as_millis() as f64 / 1_000.0;
        if secs > 0.0 {
            sink.record_app(MetricKind::Throughput, to, requests as f64 / secs);
        }
        drop(sink); // window boundary: flush buffered samples
        self.clock = to;
        self.profiler.record("sim.window", window_started.elapsed());
        RunReport { from, to, requests, failures, response_time: rt.summary() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{CallDef, EndpointDef};
    use crate::latency::LatencyModel;

    fn app() -> Application {
        let mut b = Application::builder();
        b.version(
            VersionSpec::new("frontend", "1.0.0").capacity(1_000.0).endpoint(
                EndpointDef::new("home", LatencyModel::Constant { ms: 5.0 })
                    .call(CallDef::always("backend", "api")),
            ),
        );
        b.version(
            VersionSpec::new("backend", "1.0.0")
                .capacity(1_000.0)
                .endpoint(EndpointDef::new("api", LatencyModel::Constant { ms: 10.0 })),
        );
        b.build().unwrap()
    }

    #[test]
    fn run_produces_consistent_report() {
        let mut sim = Simulation::new(app(), 42);
        let report = sim.run(SimDuration::from_secs(30), 20.0);
        assert!(report.requests > 400, "requests {}", report.requests);
        assert_eq!(report.failures, 0);
        assert!((report.response_time.mean - 15.0).abs() < 0.5);
        assert!((report.throughput_rps() - 20.0).abs() < 3.0);
        assert_eq!(report.error_rate(), 0.0);
        assert_eq!(sim.now(), SimTime::from_secs(30));
    }

    #[test]
    fn sim_busy_accumulates_across_windows() {
        let mut sim = Simulation::new(app(), 42);
        assert_eq!(sim.sim_busy(), std::time::Duration::ZERO);
        sim.run(SimDuration::from_secs(10), 20.0);
        let after_one = sim.sim_busy();
        assert!(after_one > std::time::Duration::ZERO);
        sim.run(SimDuration::from_secs(10), 20.0);
        assert!(sim.sim_busy() > after_one);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let mut a = Simulation::new(app(), 7);
        let mut b = Simulation::new(app(), 7);
        let ra = a.run(SimDuration::from_secs(10), 50.0);
        let rb = b.run(SimDuration::from_secs(10), 50.0);
        assert_eq!(ra, rb);
        let mut c = Simulation::new(app(), 8);
        let rc = c.run(SimDuration::from_secs(10), 50.0);
        assert_ne!(ra.requests, 0);
        assert!(ra != rc || ra.requests != rc.requests);
    }

    #[test]
    fn consecutive_windows_advance_clock_and_differ() {
        let mut sim = Simulation::new(app(), 1);
        let r1 = sim.run(SimDuration::from_secs(5), 30.0);
        let r2 = sim.run(SimDuration::from_secs(5), 30.0);
        assert_eq!(r1.to, r2.from);
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn metrics_and_traces_accumulate() {
        let mut sim = Simulation::new(app(), 3);
        sim.set_trace_sampling(0.5);
        let report = sim.run(SimDuration::from_secs(20), 20.0);
        assert!(sim.store().count(APP_SCOPE, MetricKind::ResponseTime) as u64 == report.requests);
        assert!(
            sim.store().count("frontend@1.0.0", MetricKind::ResponseTime) as u64 == report.requests
        );
        let traced = sim.traces().count() as f64 / report.requests as f64;
        assert!((traced - 0.5).abs() < 0.05, "trace share {traced}");
        let drained = sim.drain_traces();
        assert!(!drained.is_empty());
        assert_eq!(sim.traces().count(), 0);
        // Streaming aggregates survive the drain.
        assert!(!sim.trace_collector().edge_totals().is_empty());
    }

    #[test]
    fn deploy_and_route_to_candidate() {
        let mut sim = Simulation::new(app(), 5);
        let candidate = sim
            .deploy(
                VersionSpec::new("backend", "2.0.0")
                    .capacity(1_000.0)
                    .endpoint(EndpointDef::new("api", LatencyModel::Constant { ms: 50.0 })),
            )
            .unwrap();
        let backend = sim.app().service_id("backend").unwrap();
        let app_snapshot = sim.app().clone();
        sim.router_mut().set_split(&app_snapshot, backend, vec![(candidate, 1.0)]).unwrap();
        let report = sim.run(SimDuration::from_secs(10), 20.0);
        assert!(
            (report.response_time.mean - 55.0).abs() < 1.0,
            "mean {}",
            report.response_time.mean
        );
    }

    #[test]
    fn injected_faults_degrade_the_window() {
        use crate::faults::{Fault, FaultKind};
        let mut sim = Simulation::new(app(), 13);
        let backend = sim.app().version_id("backend", "1.0.0").unwrap();
        sim.inject_fault(Fault {
            version: backend,
            kind: FaultKind::LatencySpike { multiplier: 5.0 },
            from: SimTime::from_secs(10),
            until: SimTime::from_secs(20),
        });
        sim.inject_fault(Fault {
            version: backend,
            kind: FaultKind::ErrorBurst { extra_error_rate: 0.5 },
            from: SimTime::from_secs(10),
            until: SimTime::from_secs(20),
        });
        let healthy = sim.run(SimDuration::from_secs(10), 30.0);
        let faulty = sim.run(SimDuration::from_secs(10), 30.0);
        let recovered = sim.run(SimDuration::from_secs(10), 30.0);
        assert_eq!(healthy.failures, 0);
        assert!(faulty.error_rate() > 0.3, "error rate {}", faulty.error_rate());
        assert!(
            faulty.response_time.mean > 2.0 * healthy.response_time.mean,
            "faulty {} vs healthy {}",
            faulty.response_time.mean,
            healthy.response_time.mean
        );
        assert_eq!(recovered.failures, 0);
        assert!((recovered.response_time.mean - healthy.response_time.mean).abs() < 2.0);
        assert!(!sim.faults().is_empty());
    }

    fn outage_policy() -> CallPolicy {
        CallPolicy {
            max_retries: 1,
            backoff_base: SimDuration::from_millis(20),
            backoff_multiplier: 2.0,
            jitter: 0.5,
            breaker: Some(crate::resilience::BreakerPolicy {
                error_threshold: 0.5,
                min_calls: 10,
                window: 40,
                cooldown: SimDuration::from_secs(5),
                half_open_probes: 3,
            }),
            fallback: true,
            fallback_latency: SimDuration::from_millis(1),
            ..CallPolicy::default()
        }
    }

    #[test]
    fn resilience_contains_an_outage_and_breaker_recloses() {
        use crate::faults::{Fault, FaultKind};
        let mut sim = Simulation::new(app(), 21);
        sim.set_call_policy(outage_policy());
        let frontend = sim.app().version_id("frontend", "1.0.0").unwrap();
        let backend = sim.app().version_id("backend", "1.0.0").unwrap();
        sim.inject_fault(Fault {
            version: backend,
            kind: FaultKind::Outage,
            from: SimTime::from_secs(10),
            until: SimTime::from_secs(20),
        });
        let healthy = sim.run(SimDuration::from_secs(10), 50.0);
        let outage = sim.run(SimDuration::from_secs(10), 50.0);
        let recovered = sim.run(SimDuration::from_secs(10), 50.0);
        // Fallback keeps the app-visible error rate at zero throughout.
        assert_eq!(healthy.failures, 0);
        assert_eq!(outage.failures, 0, "fallback absorbs the outage");
        assert_eq!(recovered.failures, 0);
        // The breaker opened during the outage and re-closed afterwards.
        let transitions = sim.drain_breaker_transitions();
        assert!(transitions
            .iter()
            .any(|t| t.caller == frontend && t.callee == backend && t.to == BreakerState::Open));
        assert_eq!(sim.breaker_state(frontend, backend), Some(BreakerState::Closed));
        let reclosed_at = transitions
            .iter()
            .rfind(|t| t.to == BreakerState::Closed)
            .expect("breaker re-closes after the fault clears")
            .time;
        assert!(reclosed_at >= SimTime::from_secs(20));
        assert!(reclosed_at <= SimTime::from_secs(30), "re-close within the recovery window");
        // The callee's own telemetry still shows the outage (detection is
        // not masked by mitigation), and sheds/fallbacks were recorded.
        assert!(sim.store().count("backend@1.0.0", MetricKind::Shed) > 0);
        assert!(sim.store().count("backend@1.0.0", MetricKind::FallbackServed) > 0);
        assert!(sim.store().count("backend@1.0.0", MetricKind::BreakerOpen) >= 1);
    }

    #[test]
    fn resilience_enabled_runs_are_deterministic_per_seed() {
        use crate::faults::{Fault, FaultKind};
        let run_once = |seed: u64| {
            let mut sim = Simulation::new(app(), seed);
            sim.set_call_policy(outage_policy());
            let backend = sim.app().version_id("backend", "1.0.0").unwrap();
            sim.inject_fault(Fault {
                version: backend,
                kind: FaultKind::Outage,
                from: SimTime::from_secs(5),
                until: SimTime::from_secs(15),
            });
            let reports: Vec<RunReport> =
                (0..4).map(|_| sim.run(SimDuration::from_secs(5), 40.0)).collect();
            let transitions = sim.drain_breaker_transitions();
            let samples = sim.store().total_samples();
            (reports, transitions, samples)
        };
        let a = run_once(33);
        let b = run_once(33);
        assert_eq!(a.0, b.0, "same-seed reports identical");
        assert_eq!(a.1, b.1, "same-seed breaker transitions identical");
        assert_eq!(a.2, b.2, "same-seed sample counts identical");
        assert!(!a.1.is_empty(), "the outage actually tripped the breaker");
        let c = run_once(34);
        assert!(a.0 != c.0, "different seed, different trajectory");
    }

    #[test]
    fn proxy_overhead_shifts_end_to_end_mean() {
        let mut bare = Simulation::new(app(), 9);
        let base = bare.run(SimDuration::from_secs(10), 20.0);
        let mut proxied = Simulation::new(app(), 9);
        proxied.set_router(Router::with_proxy_overhead(SimDuration::from_millis(2)));
        let over = proxied.run(SimDuration::from_secs(10), 20.0);
        // Two hops × 2 ms = 4 ms extra.
        let delta = over.response_time.mean - base.response_time.mean;
        assert!((delta - 4.0).abs() < 0.5, "delta {delta}");
    }
}
