//! Per-version load tracking and latency inflation.
//!
//! The paper observed that dark launching "might drastically increase load
//! in parts of the system […] triggering cascading effects", while A/B
//! splits have the opposite, load-balancing effect (Section 1.2.3). To
//! reproduce those dynamics the simulator tracks each deployed version's
//! arrival rate and inflates its service times as utilization approaches
//! capacity.
//!
//! The estimator is a two-bucket sliding counter (one-second buckets): the
//! rate reported for the current instant is the completed previous bucket's
//! count, which is cheap, deterministic, and free of warm-up artifacts.

use crate::app::{Application, VersionId};
use cex_core::simtime::SimTime;
use std::collections::VecDeque;

/// Latency multipliers are capped here; beyond ~10× the system would be in
/// collapse and the experiment checks fire long before.
const MAX_MULTIPLIER: f64 = 10.0;

/// Width of a counting bucket in milliseconds.
const BUCKET_MS: u64 = 1_000;

#[derive(Debug, Clone, Copy, Default)]
struct VersionLoad {
    bucket_start_ms: u64,
    current_count: u64,
    prev_rate_rps: f64,
}

/// Tracks per-version arrival rates over simulated time.
#[derive(Debug, Clone, Default)]
pub struct LoadTracker {
    per_version: Vec<VersionLoad>,
}

impl LoadTracker {
    /// Creates a tracker for `app`'s deployed versions.
    pub fn new(app: &Application) -> Self {
        LoadTracker { per_version: vec![VersionLoad::default(); app.version_count()] }
    }

    /// Ensures the tracker covers versions deployed after construction.
    pub fn resize_for(&mut self, app: &Application) {
        if self.per_version.len() < app.version_count() {
            self.per_version.resize(app.version_count(), VersionLoad::default());
        }
    }

    /// Adopts `version`'s counters from `other` — used by the event core's
    /// merge to fold each shard's owned versions back into the shared
    /// tracker after a parallel window.
    pub(crate) fn adopt_version_from(&mut self, other: &LoadTracker, version: VersionId) {
        self.per_version[version.0] = other.per_version[version.0];
    }

    /// Records one request arriving at `version` at time `now`.
    pub fn record_arrival(&mut self, version: VersionId, now: SimTime) {
        let slot = &mut self.per_version[version.0];
        let bucket = now.as_millis() / BUCKET_MS * BUCKET_MS;
        match bucket.cmp(&slot.bucket_start_ms) {
            std::cmp::Ordering::Equal => slot.current_count += 1,
            std::cmp::Ordering::Greater => {
                // Finish the old bucket; if more than one bucket elapsed the
                // intermediate rate was zero.
                let gap_buckets = (bucket - slot.bucket_start_ms) / BUCKET_MS;
                slot.prev_rate_rps = if gap_buckets == 1 {
                    slot.current_count as f64 / (BUCKET_MS as f64 / 1_000.0)
                } else {
                    0.0
                };
                slot.bucket_start_ms = bucket;
                slot.current_count = 1;
            }
            std::cmp::Ordering::Less => {
                // Out-of-order arrival (can happen at bucket edges when the
                // caller batches); count it into the current bucket.
                slot.current_count += 1;
            }
        }
    }

    /// The most recent completed-bucket arrival rate of `version` in
    /// requests per second.
    pub fn rate_rps(&self, version: VersionId) -> f64 {
        self.per_version.get(version.0).map(|s| s.prev_rate_rps).unwrap_or(0.0)
    }

    /// Utilization of `version`: arrival rate over capacity.
    pub fn utilization(&self, app: &Application, version: VersionId) -> f64 {
        let capacity = app.version(version).capacity_rps;
        if capacity <= 0.0 {
            0.0
        } else {
            self.rate_rps(version) / capacity
        }
    }

    /// The latency multiplier currently applying to `version`:
    /// `1 + k·u²` with utilization `u` and the version's load sensitivity
    /// `k`, capped at 10×. At `u = 1` (fully loaded) latency is `1 + k`
    /// times the unloaded value.
    pub fn multiplier(&self, app: &Application, version: VersionId) -> f64 {
        let u = self.utilization(app, version);
        let k = app.version(version).load_sensitivity;
        (1.0 + k * u * u).min(MAX_MULTIPLIER)
    }
}

/// Outcome of asking a version for a concurrency slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// A slot was free; the request begins service immediately.
    Immediate,
    /// All slots are busy; the request was enqueued.
    Queued,
    /// Slots busy and the admission queue full; the request is shed.
    Shed,
}

#[derive(Debug, Clone, Default)]
struct VersionOccupancy {
    limit: Option<u32>,
    queue_capacity: Option<u32>,
    busy: u32,
    queue: VecDeque<u64>,
    /// Deepest the admission queue has ever been — a pure function of
    /// the seed (each version is owned by exactly one shard), surfaced
    /// as a high-water gauge in the observability counter registry.
    queue_hwm: u64,
}

/// Per-version concurrency slots and bounded FIFO admission queues — the
/// open-loop overload model of the event-driven core. A request holds a
/// slot from service begin until its frame finishes; releasing a slot
/// admits the longest-waiting queued request (identified by an opaque
/// caller-chosen token).
#[derive(Debug, Clone, Default)]
pub struct OccupancyTable {
    per_version: Vec<VersionOccupancy>,
}

impl OccupancyTable {
    /// Creates a table covering `app`'s deployed versions.
    pub fn new(app: &Application) -> Self {
        let mut t = OccupancyTable::default();
        t.resize_for(app);
        t
    }

    /// Ensures the table covers versions deployed after construction.
    pub fn resize_for(&mut self, app: &Application) {
        for idx in self.per_version.len()..app.version_count() {
            let v = app.version(VersionId(idx));
            self.per_version.push(VersionOccupancy {
                limit: v.concurrency_limit,
                queue_capacity: v.queue_capacity,
                busy: 0,
                queue: VecDeque::new(),
                queue_hwm: 0,
            });
        }
    }

    /// Requests a slot on `version` for the request identified by `token`.
    /// With no configured limit every admission is [`Admission::Immediate`].
    pub fn try_admit(&mut self, version: VersionId, token: u64) -> Admission {
        let slot = &mut self.per_version[version.0];
        match slot.limit {
            None => {
                slot.busy += 1;
                Admission::Immediate
            }
            Some(limit) if slot.busy < limit => {
                slot.busy += 1;
                Admission::Immediate
            }
            Some(_) => {
                if slot.queue_capacity.is_none_or(|cap| (slot.queue.len() as u32) < cap) {
                    slot.queue.push_back(token);
                    slot.queue_hwm = slot.queue_hwm.max(slot.queue.len() as u64);
                    Admission::Queued
                } else {
                    Admission::Shed
                }
            }
        }
    }

    /// Releases one slot on `version`. When a request is waiting, it takes
    /// the freed slot and its token is returned so the caller can resume it.
    ///
    /// # Panics
    ///
    /// Panics if no slot is held (release without matching admit).
    pub fn release(&mut self, version: VersionId) -> Option<u64> {
        let slot = &mut self.per_version[version.0];
        assert!(slot.busy > 0, "release without matching admission");
        match slot.queue.pop_front() {
            Some(token) => Some(token), // busy count transfers to the admitted request
            None => {
                slot.busy -= 1;
                None
            }
        }
    }

    /// Requests currently holding a slot on `version`.
    pub fn busy(&self, version: VersionId) -> u32 {
        self.per_version.get(version.0).map(|s| s.busy).unwrap_or(0)
    }

    /// Requests currently waiting in `version`'s admission queue.
    pub fn queue_len(&self, version: VersionId) -> usize {
        self.per_version.get(version.0).map(|s| s.queue.len()).unwrap_or(0)
    }

    /// Deepest `version`'s admission queue has ever been.
    pub fn queue_hwm(&self, version: VersionId) -> u64 {
        self.per_version.get(version.0).map(|s| s.queue_hwm).unwrap_or(0)
    }

    /// Raises `version`'s queue high-water mark to at least `hwm` — the
    /// merge path adopting a worker shard's observation.
    pub(crate) fn raise_queue_hwm(&mut self, version: VersionId, hwm: u64) {
        if let Some(slot) = self.per_version.get_mut(version.0) {
            slot.queue_hwm = slot.queue_hwm.max(hwm);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{EndpointDef, VersionSpec};
    use crate::latency::LatencyModel;

    fn one_service_app(capacity: f64, sensitivity: f64) -> Application {
        let mut b = Application::builder();
        b.version(
            VersionSpec::new("svc", "1")
                .capacity(capacity)
                .load_sensitivity(sensitivity)
                .endpoint(EndpointDef::new("api", LatencyModel::default())),
        );
        b.build().unwrap()
    }

    #[test]
    fn rate_reflects_previous_bucket() {
        let app = one_service_app(100.0, 1.0);
        let v = app.version_id("svc", "1").unwrap();
        let mut tracker = LoadTracker::new(&app);
        // 50 arrivals in second 0.
        for i in 0..50 {
            tracker.record_arrival(v, SimTime::from_millis(i * 20));
        }
        assert_eq!(tracker.rate_rps(v), 0.0, "bucket not yet complete");
        // First arrival of second 1 closes the bucket.
        tracker.record_arrival(v, SimTime::from_millis(1_000));
        assert!((tracker.rate_rps(v) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn idle_gap_resets_rate() {
        let app = one_service_app(100.0, 1.0);
        let v = app.version_id("svc", "1").unwrap();
        let mut tracker = LoadTracker::new(&app);
        tracker.record_arrival(v, SimTime::from_millis(0));
        // Next arrival three buckets later: the intermediate rate was zero.
        tracker.record_arrival(v, SimTime::from_millis(3_000));
        assert_eq!(tracker.rate_rps(v), 0.0);
    }

    #[test]
    fn multiplier_grows_with_load() {
        let app = one_service_app(100.0, 2.0);
        let v = app.version_id("svc", "1").unwrap();
        let mut tracker = LoadTracker::new(&app);
        assert_eq!(tracker.multiplier(&app, v), 1.0);
        // Run a full second at capacity.
        for i in 0..100 {
            tracker.record_arrival(v, SimTime::from_millis(i * 10));
        }
        tracker.record_arrival(v, SimTime::from_millis(1_000));
        let u = tracker.utilization(&app, v);
        assert!((u - 1.0).abs() < 0.05, "utilization {u}");
        let m = tracker.multiplier(&app, v);
        assert!((m - 3.0).abs() < 0.2, "multiplier {m} should be ≈ 1 + k at capacity");
    }

    #[test]
    fn multiplier_is_capped() {
        let app = one_service_app(1.0, 1000.0);
        let v = app.version_id("svc", "1").unwrap();
        let mut tracker = LoadTracker::new(&app);
        for i in 0..1_000 {
            tracker.record_arrival(v, SimTime::from_millis(i));
        }
        tracker.record_arrival(v, SimTime::from_millis(1_000));
        assert_eq!(tracker.multiplier(&app, v), MAX_MULTIPLIER);
    }

    #[test]
    fn zero_sensitivity_disables_inflation() {
        let app = one_service_app(1.0, 0.0);
        let v = app.version_id("svc", "1").unwrap();
        let mut tracker = LoadTracker::new(&app);
        for i in 0..1_000 {
            tracker.record_arrival(v, SimTime::from_millis(i));
        }
        tracker.record_arrival(v, SimTime::from_millis(1_000));
        assert_eq!(tracker.multiplier(&app, v), 1.0);
    }

    fn limited_app(slots: u32, depth: u32) -> Application {
        let mut b = Application::builder();
        b.version(
            VersionSpec::new("svc", "1")
                .concurrency_limit(slots)
                .queue_capacity(depth)
                .endpoint(EndpointDef::new("api", LatencyModel::default())),
        );
        b.build().unwrap()
    }

    #[test]
    fn unlimited_versions_always_admit() {
        let app = one_service_app(100.0, 1.0);
        let v = app.version_id("svc", "1").unwrap();
        let mut occ = OccupancyTable::new(&app);
        for token in 0..1_000 {
            assert_eq!(occ.try_admit(v, token), Admission::Immediate);
        }
        assert_eq!(occ.busy(v), 1_000);
        assert_eq!(occ.release(v), None);
        assert_eq!(occ.busy(v), 999);
    }

    #[test]
    fn queue_admits_fifo_and_sheds_on_full() {
        let app = limited_app(2, 2);
        let v = app.version_id("svc", "1").unwrap();
        let mut occ = OccupancyTable::new(&app);
        assert_eq!(occ.try_admit(v, 10), Admission::Immediate);
        assert_eq!(occ.try_admit(v, 11), Admission::Immediate);
        assert_eq!(occ.try_admit(v, 12), Admission::Queued);
        assert_eq!(occ.try_admit(v, 13), Admission::Queued);
        assert_eq!(occ.try_admit(v, 14), Admission::Shed);
        assert_eq!(occ.busy(v), 2);
        assert_eq!(occ.queue_len(v), 2);
        // Releases hand the slot to the longest-waiting request, in order.
        assert_eq!(occ.release(v), Some(12));
        assert_eq!(occ.release(v), Some(13));
        assert_eq!(occ.busy(v), 2, "queued admissions keep the slot busy");
        assert_eq!(occ.release(v), None);
        assert_eq!(occ.release(v), None);
        assert_eq!(occ.busy(v), 0);
    }

    #[test]
    #[should_panic(expected = "release without matching admission")]
    fn release_without_admit_panics() {
        let app = limited_app(1, 1);
        let v = app.version_id("svc", "1").unwrap();
        let mut occ = OccupancyTable::new(&app);
        occ.release(v);
    }

    #[test]
    fn occupancy_resize_covers_new_versions() {
        let mut app = one_service_app(10.0, 1.0);
        let mut occ = OccupancyTable::new(&app);
        let vid = app
            .deploy(
                VersionSpec::new("svc", "2")
                    .concurrency_limit(1)
                    .endpoint(EndpointDef::new("api", LatencyModel::default())),
            )
            .unwrap();
        occ.resize_for(&app);
        assert_eq!(occ.try_admit(vid, 1), Admission::Immediate);
        assert_eq!(occ.try_admit(vid, 2), Admission::Queued);
    }

    #[test]
    fn resize_covers_new_versions() {
        let mut app = one_service_app(10.0, 1.0);
        let mut tracker = LoadTracker::new(&app);
        let vid = app
            .deploy(
                VersionSpec::new("svc", "2")
                    .endpoint(EndpointDef::new("api", LatencyModel::default())),
            )
            .unwrap();
        tracker.resize_for(&app);
        tracker.record_arrival(vid, SimTime::from_millis(5));
        assert_eq!(tracker.rate_rps(vid), 0.0);
    }
}
