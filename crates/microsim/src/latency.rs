//! Per-endpoint latency models.
//!
//! Endpoint service times are sampled from a configurable distribution and
//! then inflated by the version's current load (see [`crate::load`]), which
//! reproduces the qualitative effects the paper observed: dark-launch
//! traffic duplication drives up load and thereby response times in parts
//! of the system, while A/B splits *reduce* per-version load.

use cex_core::rng::SplitMix64;
use cex_core::simtime::SimDuration;

/// A latency distribution for one endpoint's own service time
/// (excluding downstream calls).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Always exactly this many milliseconds.
    Constant {
        /// Service time in milliseconds.
        ms: f64,
    },
    /// Uniform in `lo..hi` milliseconds.
    Uniform {
        /// Lower bound (inclusive), milliseconds.
        lo: f64,
        /// Upper bound (exclusive), milliseconds.
        hi: f64,
    },
    /// Log-normal with the given median and shape — the standard model for
    /// web-service response times (long right tail).
    LogNormal {
        /// Median service time in milliseconds.
        median_ms: f64,
        /// Shape parameter σ of the underlying normal (0.3–0.7 is typical).
        sigma: f64,
    },
}

impl LatencyModel {
    /// A log-normal model with a typical web-service tail.
    pub fn web(median_ms: f64) -> LatencyModel {
        LatencyModel::LogNormal { median_ms, sigma: 0.4 }
    }

    /// Samples one service time in milliseconds.
    pub fn sample_ms(&self, rng: &mut SplitMix64) -> f64 {
        match *self {
            LatencyModel::Constant { ms } => ms,
            LatencyModel::Uniform { lo, hi } => lo + (hi - lo) * rng.next_f64(),
            LatencyModel::LogNormal { median_ms, sigma } => {
                let z = standard_normal(rng);
                median_ms * (sigma * z).exp()
            }
        }
    }

    /// Samples one service time as a [`SimDuration`] after applying a load
    /// multiplier (`1.0` = unloaded).
    pub fn sample(&self, rng: &mut SplitMix64, load_multiplier: f64) -> SimDuration {
        let ms = (self.sample_ms(rng) * load_multiplier).max(0.0);
        SimDuration::from_millis(ms.round() as u64)
    }

    /// The distribution mean in milliseconds (analytic), used by capacity
    /// planning in tests and the load model's sanity checks.
    pub fn mean_ms(&self) -> f64 {
        match *self {
            LatencyModel::Constant { ms } => ms,
            LatencyModel::Uniform { lo, hi } => (lo + hi) / 2.0,
            LatencyModel::LogNormal { median_ms, sigma } => median_ms * (sigma * sigma / 2.0).exp(),
        }
    }
}

impl Default for LatencyModel {
    /// A 10 ms median web endpoint.
    fn default() -> Self {
        LatencyModel::web(10.0)
    }
}

/// Samples a standard normal deviate via Box–Muller (one branch, no state).
fn standard_normal(rng: &mut SplitMix64) -> f64 {
    // Avoid ln(0).
    let u1 = (rng.next_f64()).max(f64::MIN_POSITIVE);
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(model: LatencyModel, n: usize) -> f64 {
        let mut rng = SplitMix64::new(12345);
        (0..n).map(|_| model.sample_ms(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::Constant { ms: 7.0 };
        let mut rng = SplitMix64::new(1);
        for _ in 0..10 {
            assert_eq!(m.sample_ms(&mut rng), 7.0);
        }
        assert_eq!(m.mean_ms(), 7.0);
    }

    #[test]
    fn uniform_stays_in_bounds_and_matches_mean() {
        let m = LatencyModel::Uniform { lo: 5.0, hi: 15.0 };
        let mut rng = SplitMix64::new(2);
        for _ in 0..1_000 {
            let v = m.sample_ms(&mut rng);
            assert!((5.0..15.0).contains(&v));
        }
        assert!((sample_mean(m, 100_000) - m.mean_ms()).abs() < 0.1);
    }

    #[test]
    fn lognormal_empirical_mean_matches_analytic() {
        let m = LatencyModel::web(20.0);
        let analytic = m.mean_ms();
        let empirical = sample_mean(m, 200_000);
        assert!(
            (empirical - analytic).abs() / analytic < 0.02,
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn lognormal_is_positive_and_right_tailed() {
        let m = LatencyModel::web(10.0);
        let mut rng = SplitMix64::new(3);
        let samples: Vec<f64> = (0..10_000).map(|_| m.sample_ms(&mut rng)).collect();
        assert!(samples.iter().all(|v| *v > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(mean > median, "log-normal must be right-skewed");
    }

    #[test]
    fn load_multiplier_scales_sample() {
        let m = LatencyModel::Constant { ms: 10.0 };
        let mut rng = SplitMix64::new(4);
        assert_eq!(m.sample(&mut rng, 1.0).as_millis(), 10);
        assert_eq!(m.sample(&mut rng, 2.5).as_millis(), 25);
    }
}
