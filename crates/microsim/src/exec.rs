//! Per-request execution: walking the call tree.
//!
//! One simulated request enters the application at an endpoint, the router
//! resolves which deployed version serves each hop, latencies are sampled
//! under current load, and the hop tree is emitted as a distributed trace.
//! Dark-launch mirrors execute the mirrored subtree *in addition to* the
//! primary one — its latency never reaches the user but its load does,
//! which is exactly the cascading-cost effect the paper reports for dark
//! launches (Section 1.2.3).

use crate::app::{Application, ServiceId, VersionId};
use crate::error::SimError;
use crate::faults::FaultPlan;
use crate::load::LoadTracker;
use crate::monitor::{MetricStore, SampleBatch, ScopeId};
use crate::routing::{Router, UserId};
use crate::trace::{Span, SpanId, Trace, TraceId};
use cex_core::metrics::MetricKind;
use cex_core::rng::SplitMix64;
use cex_core::simtime::{SimDuration, SimTime};

/// Maximum call-tree depth before assuming a cycle.
pub const MAX_CALL_DEPTH: usize = 32;

/// Batched, interned telemetry sink for the request hot path.
///
/// Wraps a [`SampleBatch`] with the pre-interned scope ids the executor
/// needs: one per deployed version (indexed by [`VersionId`]) plus the
/// end-to-end application scope. Recording a hop is an array index and a
/// buffered push — no string formatting, hashing, or locking. Drop (or
/// [`MetricSink::flush`]) writes the buffer through to the store; the
/// simulation flushes at window boundaries so store contents stay
/// deterministic.
#[derive(Debug)]
pub struct MetricSink<'a> {
    batch: SampleBatch<'a>,
    version_scopes: &'a [ScopeId],
    app_scope: ScopeId,
}

impl<'a> MetricSink<'a> {
    /// Creates a sink over `store`. `version_scopes` must be indexed by
    /// `VersionId` (see [`MetricStore::intern_version_scopes`]);
    /// `app_scope` receives end-to-end metrics.
    pub fn new(store: &'a MetricStore, version_scopes: &'a [ScopeId], app_scope: ScopeId) -> Self {
        MetricSink { batch: store.batch(), version_scopes, app_scope }
    }

    /// Records a per-version observation under its `service@version` scope.
    pub fn record_version(
        &mut self,
        version: VersionId,
        metric: MetricKind,
        time: SimTime,
        value: f64,
    ) {
        self.batch.record_value_id(self.version_scopes[version.0], metric, time, value);
    }

    /// Records an end-to-end (user-perceived) observation.
    pub fn record_app(&mut self, metric: MetricKind, time: SimTime, value: f64) {
        self.batch.record_value_id(self.app_scope, metric, time, value);
    }

    /// Writes all buffered samples through to the store.
    pub fn flush(&mut self) {
        self.batch.flush();
    }
}

/// Outcome of one executed request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestResult {
    /// User-perceived end-to-end response time (mirrored work excluded).
    pub response_time: SimDuration,
    /// `true` when the whole primary call tree succeeded.
    pub ok: bool,
    /// The trace, when sampled.
    pub trace: Option<Trace>,
}

/// Executes one request against the application.
///
/// * `user` — drives sticky routing decisions.
/// * `entry_service`/`entry_endpoint` — where the request enters.
/// * `now` — virtual arrival time.
/// * `trace_id` — `Some` when the trace collector sampled this request.
/// * `sink` — when present, per-hop response times and error indicators
///   are recorded under the `service@version` scope (batched; flushed by
///   the caller at deterministic boundaries).
/// * `faults` — active fault windows applied on top of the normal latency
///   and error models.
///
/// # Errors
///
/// Returns [`SimError`] when a name does not resolve or the call tree
/// exceeds [`MAX_CALL_DEPTH`] (a cycle in the application definition).
#[allow(clippy::too_many_arguments)]
pub fn execute_request(
    app: &Application,
    router: &Router,
    load: &mut LoadTracker,
    rng: &mut SplitMix64,
    user: UserId,
    entry_service: ServiceId,
    entry_endpoint: &str,
    now: SimTime,
    trace_id: Option<TraceId>,
    sink: Option<&mut MetricSink<'_>>,
    faults: &FaultPlan,
) -> Result<RequestResult, SimError> {
    let mut ctx = ExecCtx {
        app,
        router,
        load,
        rng,
        user,
        sink,
        faults,
        spans: Vec::new(),
        trace_id,
        next_span: 0,
        visited: Vec::new(),
    };
    let outcome = ctx.hop(entry_service, entry_endpoint, now, None, false, 0)?;
    // Conversion attribution: the request converts with a probability
    // blending all (primary-path) versions it touched, and the 0/1 outcome
    // is credited to each of them — how A/B variants are compared on
    // business metrics even when they sit deep in the call graph.
    if ctx.sink.is_some() && !ctx.visited.is_empty() {
        let mean_rate = ctx.visited.iter().map(|v| app.version(*v).conversion_rate).sum::<f64>()
            / ctx.visited.len() as f64;
        let converted = outcome.ok && ctx.rng.next_f64() < mean_rate;
        let value = if converted { 1.0 } else { 0.0 };
        if let Some(sink) = ctx.sink.as_deref_mut() {
            for version in &ctx.visited {
                sink.record_version(*version, MetricKind::ConversionRate, now, value);
            }
        }
    }
    let trace = trace_id.map(|id| Trace { id, spans: ctx.spans });
    Ok(RequestResult { response_time: outcome.duration, ok: outcome.ok, trace })
}

struct HopOutcome {
    duration: SimDuration,
    ok: bool,
}

struct ExecCtx<'a, 'b> {
    app: &'a Application,
    router: &'a Router,
    load: &'a mut LoadTracker,
    rng: &'a mut SplitMix64,
    user: UserId,
    sink: Option<&'a mut MetricSink<'b>>,
    faults: &'a FaultPlan,
    spans: Vec<Span>,
    trace_id: Option<TraceId>,
    next_span: u32,
    /// Distinct versions serving primary (non-dark) hops of this request.
    visited: Vec<VersionId>,
}

impl ExecCtx<'_, '_> {
    fn hop(
        &mut self,
        service: ServiceId,
        endpoint_name: &str,
        start: SimTime,
        parent: Option<SpanId>,
        dark: bool,
        depth: usize,
    ) -> Result<HopOutcome, SimError> {
        let version = self.router.resolve(self.app, service, self.user);
        self.hop_on_version(version, endpoint_name, start, parent, dark, depth)
    }

    fn hop_on_version(
        &mut self,
        version: VersionId,
        endpoint_name: &str,
        start: SimTime,
        parent: Option<SpanId>,
        dark: bool,
        depth: usize,
    ) -> Result<HopOutcome, SimError> {
        if depth > MAX_CALL_DEPTH {
            return Err(SimError::CallDepthExceeded { limit: MAX_CALL_DEPTH });
        }
        let endpoint_id = self.app.endpoint_of(version, endpoint_name)?;
        self.load.record_arrival(version, start);
        if !dark && !self.visited.contains(&version) {
            self.visited.push(version);
        }

        let span_id = SpanId(self.next_span);
        self.next_span += 1;

        let fault = self.faults.effects(version, start);
        let multiplier = self.load.multiplier(self.app, version) * fault.latency_multiplier;
        let endpoint = self.app.endpoint(endpoint_id);
        let own_latency = endpoint.latency.sample(self.rng, multiplier);
        let failure_rate = (endpoint.error_rate + fault.extra_error_rate).min(1.0);
        let own_ok = self.rng.next_f64() >= failure_rate;

        let mut elapsed = self.router.proxy_overhead() + own_latency;
        let mut ok = own_ok;

        // Clone the call list so the borrow of `self.app` does not pin the
        // whole context across the recursive calls.
        let calls = endpoint.calls.clone();
        for call in &calls {
            if call.probability < 1.0 && self.rng.next_f64() >= call.probability {
                continue;
            }
            let child_start = start + elapsed;
            // Primary call.
            let child = self.hop(
                call.service,
                &call.endpoint,
                child_start,
                Some(span_id),
                dark,
                depth + 1,
            )?;
            elapsed += child.duration;
            ok &= child.ok;
            // Dark-launch mirrors: execute on each mirror version without
            // contributing to user-perceived latency or success.
            for mirror in self.router.mirrors(call.service).to_vec() {
                let _ = self.hop_on_version(
                    mirror,
                    &call.endpoint,
                    child_start,
                    Some(span_id),
                    true,
                    depth + 1,
                )?;
            }
        }

        let svc = self.app.version(version).service;
        if let Some(sink) = self.sink.as_deref_mut() {
            // Record both primary and dark hops: the dark version's load and
            // latency are precisely what its health checks observe.
            sink.record_version(version, MetricKind::ResponseTime, start, elapsed.as_millis_f64());
            sink.record_version(version, MetricKind::ErrorRate, start, if ok { 0.0 } else { 1.0 });
        }

        if let Some(trace) = self.trace_id {
            let v = self.app.version(version);
            self.spans.push(Span {
                trace,
                span: span_id,
                parent,
                service: self.app.service_name(svc).to_string(),
                version: v.label.clone(),
                endpoint: endpoint_name.to_string(),
                start,
                duration: elapsed,
                ok,
                dark,
            });
        }

        Ok(HopOutcome { duration: elapsed, ok })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{CallDef, EndpointDef, VersionSpec};
    use crate::latency::LatencyModel;

    fn chain_app() -> Application {
        let mut b = Application::builder();
        b.version(
            VersionSpec::new("a", "1").endpoint(
                EndpointDef::new("entry", LatencyModel::Constant { ms: 5.0 })
                    .call(CallDef::always("b", "mid")),
            ),
        );
        b.version(
            VersionSpec::new("b", "1").endpoint(
                EndpointDef::new("mid", LatencyModel::Constant { ms: 10.0 })
                    .call(CallDef::always("c", "leaf")),
            ),
        );
        b.version(
            VersionSpec::new("c", "1")
                .endpoint(EndpointDef::new("leaf", LatencyModel::Constant { ms: 3.0 })),
        );
        b.build().unwrap()
    }

    fn run(app: &Application, router: &Router, traced: bool) -> RequestResult {
        let mut load = LoadTracker::new(app);
        let mut rng = SplitMix64::new(9);
        let entry = app.service_id("a").unwrap();
        execute_request(
            app,
            router,
            &mut load,
            &mut rng,
            UserId(1),
            entry,
            "entry",
            SimTime::from_secs(1),
            traced.then_some(TraceId(7)),
            None,
            &FaultPlan::none(),
        )
        .unwrap()
    }

    #[test]
    fn chain_latency_adds_up() {
        let app = chain_app();
        let result = run(&app, &Router::new(), false);
        assert_eq!(result.response_time.as_millis(), 18);
        assert!(result.ok);
        assert!(result.trace.is_none());
    }

    #[test]
    fn proxy_overhead_applies_per_hop() {
        let app = chain_app();
        let router = Router::with_proxy_overhead(SimDuration::from_millis(2));
        let result = run(&app, &router, false);
        // 18 ms service time + 3 hops × 2 ms.
        assert_eq!(result.response_time.as_millis(), 24);
    }

    #[test]
    fn trace_mirrors_call_tree() {
        let app = chain_app();
        let result = run(&app, &Router::new(), true);
        let trace = result.trace.unwrap();
        assert_eq!(trace.spans.len(), 3);
        let root = trace.root();
        assert_eq!(root.service, "a");
        assert_eq!(root.duration, result.response_time);
        // Parent chain a -> b -> c.
        let b = trace.spans.iter().find(|s| s.service == "b").unwrap();
        let c = trace.spans.iter().find(|s| s.service == "c").unwrap();
        assert_eq!(b.parent, Some(root.span));
        assert_eq!(c.parent, Some(b.span));
        // Child hops start after the parent's own work.
        assert!(b.start > root.start);
        assert!(c.start > b.start);
    }

    #[test]
    fn errors_propagate_to_root() {
        let mut b = Application::builder();
        b.version(
            VersionSpec::new("a", "1").endpoint(
                EndpointDef::new("entry", LatencyModel::Constant { ms: 1.0 })
                    .call(CallDef::always("b", "mid")),
            ),
        );
        b.version(
            VersionSpec::new("b", "1").endpoint(
                EndpointDef::new("mid", LatencyModel::Constant { ms: 1.0 }).error_rate(1.0),
            ),
        );
        let app = b.build().unwrap();
        let result = run(&app, &Router::new(), true);
        assert!(!result.ok);
        let trace = result.trace.unwrap();
        assert!(!trace.root().ok, "failure must propagate to the root span");
        assert!(!trace.spans.iter().find(|s| s.service == "b").unwrap().ok);
    }

    #[test]
    fn probabilistic_calls_fire_proportionally() {
        let mut b = Application::builder();
        b.version(
            VersionSpec::new("a", "1").endpoint(
                EndpointDef::new("entry", LatencyModel::Constant { ms: 1.0 })
                    .call(CallDef::with_probability("b", "mid", 0.3)),
            ),
        );
        b.version(
            VersionSpec::new("b", "1")
                .endpoint(EndpointDef::new("mid", LatencyModel::Constant { ms: 1.0 })),
        );
        let app = b.build().unwrap();
        let router = Router::new();
        let mut load = LoadTracker::new(&app);
        let mut rng = SplitMix64::new(11);
        let entry = app.service_id("a").unwrap();
        let mut fired = 0;
        let n = 10_000;
        for i in 0..n {
            let result = execute_request(
                &app,
                &router,
                &mut load,
                &mut rng,
                UserId(i),
                entry,
                "entry",
                SimTime::from_millis(i),
                Some(TraceId(i)),
                None,
                &FaultPlan::none(),
            )
            .unwrap();
            if result.trace.unwrap().spans.len() == 2 {
                fired += 1;
            }
        }
        let share = fired as f64 / n as f64;
        assert!((share - 0.3).abs() < 0.02, "call share {share}");
    }

    #[test]
    fn dark_mirror_excluded_from_latency_but_traced_and_loaded() {
        let mut app = chain_app();
        app.deploy(
            VersionSpec::new("b", "2").endpoint(
                EndpointDef::new("mid", LatencyModel::Constant { ms: 100.0 })
                    .call(CallDef::always("c", "leaf")),
            ),
        )
        .unwrap();
        let b_svc = app.service_id("b").unwrap();
        let dark = app.version_id("b", "2").unwrap();
        let mut router = Router::new();
        router.add_mirror(&app, b_svc, dark).unwrap();

        let mut load = LoadTracker::new(&app);
        let mut rng = SplitMix64::new(13);
        let entry = app.service_id("a").unwrap();
        let result = execute_request(
            &app,
            &router,
            &mut load,
            &mut rng,
            UserId(1),
            entry,
            "entry",
            SimTime::from_secs(1),
            Some(TraceId(1)),
            None,
            &FaultPlan::none(),
        )
        .unwrap();
        // Latency unchanged: dark work is not on the user path.
        assert_eq!(result.response_time.as_millis(), 18);
        let trace = result.trace.unwrap();
        // Primary a,b,c plus dark b@2 and its downstream c call.
        assert_eq!(trace.spans.len(), 5);
        let dark_spans: Vec<_> = trace.spans.iter().filter(|s| s.dark).collect();
        assert_eq!(dark_spans.len(), 2);
        assert!(dark_spans.iter().any(|s| s.version == "2"));
        // Dark leaf call doubled the load on c: flush c's bucket and check.
        let c = app.version_id("c", "1").unwrap();
        load.record_arrival(c, SimTime::from_secs(2));
        assert!((load.rate_rps(c) - 2.0).abs() < 1e-9, "c saw primary + dark arrival");
    }

    #[test]
    fn metrics_recorded_per_version_scope() {
        let app = chain_app();
        let store = MetricStore::new();
        let scopes = store.intern_version_scopes(&app);
        let app_scope = store.intern("app");
        let mut sink = MetricSink::new(&store, &scopes, app_scope);
        let mut load = LoadTracker::new(&app);
        let mut rng = SplitMix64::new(17);
        let entry = app.service_id("a").unwrap();
        execute_request(
            &app,
            &Router::new(),
            &mut load,
            &mut rng,
            UserId(1),
            entry,
            "entry",
            SimTime::from_secs(1),
            None,
            Some(&mut sink),
            &FaultPlan::none(),
        )
        .unwrap();
        drop(sink); // flush the batch
        assert_eq!(store.count("a@1", MetricKind::ResponseTime), 1);
        assert_eq!(store.count("b@1", MetricKind::ResponseTime), 1);
        assert_eq!(store.count("c@1", MetricKind::ErrorRate), 1);
    }

    #[test]
    fn unknown_entry_endpoint_errors() {
        let app = chain_app();
        let mut load = LoadTracker::new(&app);
        let mut rng = SplitMix64::new(1);
        let entry = app.service_id("a").unwrap();
        let err = execute_request(
            &app,
            &Router::new(),
            &mut load,
            &mut rng,
            UserId(1),
            entry,
            "nope",
            SimTime::ZERO,
            None,
            None,
            &FaultPlan::none(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::UnknownEndpoint { .. }));
    }
}
