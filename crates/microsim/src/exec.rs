//! Per-request execution: walking the call tree.
//!
//! One simulated request enters the application at an endpoint, the router
//! resolves which deployed version serves each hop, latencies are sampled
//! under current load, and the hop tree is emitted as a distributed trace.
//! Dark-launch mirrors execute the mirrored subtree *in addition to* the
//! primary one — its latency never reaches the user but its load does,
//! which is exactly the cascading-cost effect the paper reports for dark
//! launches (Section 1.2.3).
//!
//! Span bookkeeping is pre-order and allocation-free: every hop pushes an
//! interned placeholder span *before* recursing (so parents precede their
//! children and span ids equal positions) and patches duration/status on
//! the way out. The resilience layer is fully visible in traces: each
//! retry attempt is its own child span carrying its attempt number, a
//! timed-out attempt is re-statused [`SpanStatus::TimedOut`] with the
//! caller-observed wait, and breaker sheds / fallback responses emit
//! zero-work event spans — a trace of a degraded request shows *why* it
//! degraded.

use crate::app::{Application, EndpointId, ServiceId, VersionId};
use crate::error::SimError;
use crate::faults::FaultPlan;
use crate::load::LoadTracker;
use crate::monitor::{MetricStore, SampleBatch, ScopeId};
use crate::resilience::{BreakerState, CallDecision, CallPolicy, Resilience};
use crate::routing::{Router, UserId};
use crate::trace::{Span, SpanId, SpanStatus, Trace, TraceId};
use cex_core::metrics::MetricKind;
use cex_core::rng::SplitMix64;
use cex_core::simtime::{SimDuration, SimTime};

/// Maximum call-tree depth before assuming a cycle.
pub const MAX_CALL_DEPTH: usize = 32;

/// Batched, interned telemetry sink for the request hot path.
///
/// Wraps a [`SampleBatch`] with the pre-interned scope ids the executor
/// needs: one per deployed version (indexed by [`VersionId`]) plus the
/// end-to-end application scope. Recording a hop is an array index and a
/// buffered push — no string formatting, hashing, or locking. Drop (or
/// [`MetricSink::flush`]) writes the buffer through to the store; the
/// simulation flushes at window boundaries so store contents stay
/// deterministic.
#[derive(Debug)]
pub struct MetricSink<'a> {
    batch: SampleBatch<'a>,
    version_scopes: &'a [ScopeId],
    app_scope: ScopeId,
}

impl<'a> MetricSink<'a> {
    /// Creates a sink over `store`. `version_scopes` must be indexed by
    /// `VersionId` (see [`MetricStore::intern_version_scopes`]);
    /// `app_scope` receives end-to-end metrics.
    pub fn new(store: &'a MetricStore, version_scopes: &'a [ScopeId], app_scope: ScopeId) -> Self {
        MetricSink { batch: store.batch(), version_scopes, app_scope }
    }

    /// Records a per-version observation under its `service@version` scope.
    pub fn record_version(
        &mut self,
        version: VersionId,
        metric: MetricKind,
        time: SimTime,
        value: f64,
    ) {
        self.batch.record_value_id(self.version_scopes[version.0], metric, time, value);
    }

    /// Records an end-to-end (user-perceived) observation.
    pub fn record_app(&mut self, metric: MetricKind, time: SimTime, value: f64) {
        self.batch.record_value_id(self.app_scope, metric, time, value);
    }

    /// Writes all buffered samples through to the store.
    pub fn flush(&mut self) {
        self.batch.flush();
    }
}

/// Outcome of one executed request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestResult {
    /// User-perceived end-to-end response time (mirrored work excluded).
    pub response_time: SimDuration,
    /// `true` when the whole primary call tree succeeded.
    pub ok: bool,
    /// The trace, when sampled.
    pub trace: Option<Trace>,
}

/// Executes one request against the application.
///
/// * `user` — drives sticky routing decisions.
/// * `entry_service`/`entry_endpoint` — where the request enters.
/// * `rng` — the request's private random stream. Exactly two values are
///   drawn from it (the root hop's stream seed and the conversion draw);
///   every hop then derives its own [`SplitMix64`] stream from a seed
///   drawn in its caller's stream. This seed-chaining makes each hop's
///   randomness independent of sibling subtree shapes, which is what lets
///   the event-driven core (`crate::event`) reproduce the recursive
///   walk's outcomes from independently scheduled events.
/// * `now` — virtual arrival time.
/// * `trace_id` — `Some` when the trace collector sampled this request.
/// * `sink` — when present, per-hop response times and error indicators
///   are recorded under the `service@version` scope (batched; flushed by
///   the caller at deterministic boundaries).
/// * `resilience` — when present, primary child calls on edges with a
///   [`CallPolicy`] get timeouts, retries, circuit breaking, and
///   fallbacks; retries re-enter the latency/fault models at the shifted
///   attempt time and breaker state persists in the caller-owned
///   [`ResilienceState`](crate::resilience::ResilienceState).
/// * `faults` — active fault windows applied on top of the normal latency
///   and error models.
///
/// # Errors
///
/// Returns [`SimError`] when a name does not resolve or the call tree
/// exceeds [`MAX_CALL_DEPTH`] (a cycle in the application definition).
#[allow(clippy::too_many_arguments)]
pub fn execute_request(
    app: &Application,
    router: &Router,
    load: &mut LoadTracker,
    rng: &mut SplitMix64,
    user: UserId,
    entry_service: ServiceId,
    entry_endpoint: &str,
    now: SimTime,
    trace_id: Option<TraceId>,
    sink: Option<&mut MetricSink<'_>>,
    resilience: Option<Resilience<'_>>,
    faults: &FaultPlan,
) -> Result<RequestResult, SimError> {
    let root_seed = rng.next_u64();
    let conv_u = rng.next_f64();
    let mut ctx = ExecCtx {
        app,
        router,
        load,
        user,
        sink,
        resilience,
        faults,
        spans: Vec::new(),
        trace_id,
        next_span: 0,
        visited: Vec::new(),
    };
    let outcome = ctx.hop(entry_service, entry_endpoint, now, None, false, 0, 0, root_seed)?;
    // Conversion attribution: the request converts with a probability
    // blending all (primary-path) versions it touched, and the 0/1 outcome
    // is credited to each of them — how A/B variants are compared on
    // business metrics even when they sit deep in the call graph.
    if ctx.sink.is_some() && !ctx.visited.is_empty() {
        let mean_rate = ctx.visited.iter().map(|v| app.version(*v).conversion_rate).sum::<f64>()
            / ctx.visited.len() as f64;
        let converted = outcome.ok && conv_u < mean_rate;
        let value = if converted { 1.0 } else { 0.0 };
        if let Some(sink) = ctx.sink.as_deref_mut() {
            for version in &ctx.visited {
                sink.record_version(*version, MetricKind::ConversionRate, now, value);
            }
        }
    }
    let trace = trace_id.map(|id| Trace::new(id, ctx.spans));
    Ok(RequestResult { response_time: outcome.duration, ok: outcome.ok, trace })
}

struct HopOutcome {
    duration: SimDuration,
    ok: bool,
    /// Index of the hop's span in `ExecCtx::spans`, when tracing.
    span: Option<usize>,
}

struct ExecCtx<'a, 'b> {
    app: &'a Application,
    router: &'a Router,
    load: &'a mut LoadTracker,
    user: UserId,
    sink: Option<&'a mut MetricSink<'b>>,
    resilience: Option<Resilience<'a>>,
    faults: &'a FaultPlan,
    spans: Vec<Span>,
    trace_id: Option<TraceId>,
    next_span: u32,
    /// Distinct versions serving primary (non-dark) hops of this request.
    visited: Vec<VersionId>,
}

impl ExecCtx<'_, '_> {
    #[allow(clippy::too_many_arguments)]
    fn hop(
        &mut self,
        service: ServiceId,
        endpoint_name: &str,
        start: SimTime,
        parent: Option<SpanId>,
        dark: bool,
        depth: usize,
        attempt: u8,
        seed: u64,
    ) -> Result<HopOutcome, SimError> {
        let version = self.router.resolve(self.app, service, self.user);
        self.hop_on_version(version, endpoint_name, start, parent, dark, depth, attempt, seed)
    }

    #[allow(clippy::too_many_arguments)]
    fn hop_on_version(
        &mut self,
        version: VersionId,
        endpoint_name: &str,
        start: SimTime,
        parent: Option<SpanId>,
        dark: bool,
        depth: usize,
        attempt: u8,
        seed: u64,
    ) -> Result<HopOutcome, SimError> {
        if depth > MAX_CALL_DEPTH {
            return Err(SimError::CallDepthExceeded { limit: MAX_CALL_DEPTH });
        }
        let endpoint_id = self.app.endpoint_of(version, endpoint_name)?;
        self.load.record_arrival(version, start);
        if !dark && !self.visited.contains(&version) {
            self.visited.push(version);
        }

        let span_id = SpanId(self.next_span);
        self.next_span += 1;
        // Pre-order placeholder: push the hop's span *before* recursing so
        // parents precede children and `spans[i].span == SpanId(i)`;
        // duration/status are patched on the way out.
        let span_idx = self.trace_id.map(|trace| {
            let idx = self.spans.len();
            self.spans.push(Span {
                trace,
                span: span_id,
                parent,
                service: self.app.version(version).service,
                version,
                endpoint: endpoint_id,
                start,
                duration: SimDuration::ZERO,
                status: SpanStatus::Ok,
                attempt,
                dark,
            });
            idx
        });

        // The hop's private random stream, derived from a seed drawn in
        // the caller's stream: draw order inside one hop is fixed
        // (latency, own failure, then per call: probability, child seed,
        // mirror seeds) so the event core can replay it event by event.
        let mut hrng = SplitMix64::new(seed);
        let fault = self.faults.effects(version, start);
        let multiplier = self.load.multiplier(self.app, version) * fault.latency_multiplier;
        let endpoint = self.app.endpoint(endpoint_id);
        let own_latency = endpoint.latency.sample(&mut hrng, multiplier);
        // Combined failure probability, clamped exactly once at the point
        // of use: the endpoint's own rate and overlapping fault windows
        // each stay in domain individually but their *sum* may exceed 1
        // (e.g. 0.9 + 0.9), and `FaultPlan::effects` deliberately does
        // not cap so that no composition information is lost upstream.
        let failure_rate = (endpoint.error_rate + fault.extra_error_rate).clamp(0.0, 1.0);
        let own_ok = hrng.next_f64() >= failure_rate;

        let mut elapsed = self.router.proxy_overhead() + own_latency;
        let mut ok = own_ok;

        // Clone the call list so the borrow of `self.app` does not pin the
        // whole context across the recursive calls.
        let calls = endpoint.calls.clone();
        for call in &calls {
            if call.probability < 1.0 && hrng.next_f64() >= call.probability {
                continue;
            }
            // Child and mirror stream seeds are drawn *before* the child
            // executes, so the caller's stream state never depends on the
            // child subtree — the event core spawns mirrors at dispatch
            // time with these exact seeds.
            let child_seed = hrng.next_u64();
            let mirrors = self.router.mirrors(call.service).to_vec();
            let mirror_seeds: Vec<u64> = mirrors.iter().map(|_| hrng.next_u64()).collect();
            let child_start = start + elapsed;
            // Primary call, resilience-guarded when a policy covers this
            // edge. Dark traffic is never guarded: mirrors must see the
            // raw callee behaviour their health checks are judging.
            let child = if !dark && self.resilience.is_some() {
                self.guarded_call(
                    version,
                    call.service,
                    &call.endpoint,
                    child_start,
                    span_id,
                    depth + 1,
                    child_seed,
                    &mut hrng,
                )?
            } else {
                self.hop(
                    call.service,
                    &call.endpoint,
                    child_start,
                    Some(span_id),
                    dark,
                    depth + 1,
                    0,
                    child_seed,
                )?
            };
            elapsed += child.duration;
            ok &= child.ok;
            // Dark-launch mirrors: execute on each mirror version without
            // contributing to user-perceived latency or success.
            for (mirror, mirror_seed) in mirrors.iter().zip(&mirror_seeds) {
                let _ = self.hop_on_version(
                    *mirror,
                    &call.endpoint,
                    child_start,
                    Some(span_id),
                    true,
                    depth + 1,
                    0,
                    *mirror_seed,
                )?;
            }
        }

        if let Some(sink) = self.sink.as_deref_mut() {
            // Record both primary and dark hops: the dark version's load and
            // latency are precisely what its health checks observe.
            sink.record_version(version, MetricKind::ResponseTime, start, elapsed.as_millis_f64());
            sink.record_version(version, MetricKind::ErrorRate, start, if ok { 0.0 } else { 1.0 });
        }

        if let Some(idx) = span_idx {
            let span = &mut self.spans[idx];
            span.duration = elapsed;
            span.status = if ok { SpanStatus::Ok } else { SpanStatus::Failed };
        }

        Ok(HopOutcome { duration: elapsed, ok, span: span_idx })
    }

    /// Pushes a zero-work event span (breaker shed, fallback response) —
    /// visible resilience activity that never executed an endpoint.
    #[allow(clippy::too_many_arguments)]
    fn push_event_span(
        &mut self,
        parent: SpanId,
        version: VersionId,
        endpoint: EndpointId,
        start: SimTime,
        duration: SimDuration,
        status: SpanStatus,
    ) {
        if let Some(trace) = self.trace_id {
            let span_id = SpanId(self.next_span);
            self.next_span += 1;
            self.spans.push(Span {
                trace,
                span: span_id,
                parent: Some(parent),
                service: self.app.version(version).service,
                version,
                endpoint,
                start,
                duration,
                status,
                attempt: 0,
                dark: false,
            });
        }
    }

    /// One resilience-guarded child call: breaker admission, attempt
    /// loop with timeout + backoff-with-jitter retries, fallback.
    ///
    /// The callee version is resolved once up front — sticky routing is
    /// deterministic per user, so retries land on the same version, and
    /// the breaker key `(caller version, callee version)` is stable for
    /// the whole attempt sequence. Each attempt re-enters the normal
    /// latency and fault models at its shifted start time, so a fault
    /// window can expire between an attempt and its retry.
    #[allow(clippy::too_many_arguments)]
    fn guarded_call(
        &mut self,
        caller: VersionId,
        service: ServiceId,
        endpoint: &str,
        start: SimTime,
        parent: SpanId,
        depth: usize,
        first_seed: u64,
        hrng: &mut SplitMix64,
    ) -> Result<HopOutcome, SimError> {
        let caller_service = self.app.version(caller).service;
        let policy = match self
            .resilience
            .as_ref()
            .and_then(|r| r.plan.policy_for(caller_service.0, service.0))
        {
            Some(policy) => *policy,
            None => {
                return self.hop(
                    service,
                    endpoint,
                    start,
                    Some(parent),
                    false,
                    depth,
                    0,
                    first_seed,
                )
            }
        };
        let callee = self.router.resolve(self.app, service, self.user);
        // Resolved only when tracing: event spans (shed/fallback) need the
        // callee endpoint identity even though no endpoint work ran.
        let traced_endpoint = match self.trace_id {
            Some(_) => Some(self.app.endpoint_of(callee, endpoint)?),
            None => None,
        };

        if let Some(breaker) = policy.breaker {
            let state = &mut self.resilience.as_mut().expect("guarded only with resilience").state;
            if state.decide(caller, callee, &breaker, start) == CallDecision::Shed {
                self.record_resilience(callee, MetricKind::Shed, start);
                if let Some(ep) = traced_endpoint {
                    self.push_event_span(
                        parent,
                        callee,
                        ep,
                        start,
                        SimDuration::ZERO,
                        SpanStatus::Shed,
                    );
                }
                return Ok(self.fallback_or_fail(
                    &policy,
                    callee,
                    start,
                    SimDuration::ZERO,
                    parent,
                    traced_endpoint,
                ));
            }
        }

        let mut waited = SimDuration::ZERO;
        let mut attempt_seed = first_seed;
        for attempt in 0..=policy.max_retries {
            let attempt_start = start + waited;
            let attempt_no = u8::try_from(attempt).unwrap_or(u8::MAX);
            let child = self.hop_on_version(
                callee,
                endpoint,
                attempt_start,
                Some(parent),
                false,
                depth,
                attempt_no,
                attempt_seed,
            )?;
            // An attempt that overruns the deadline counts as a failure,
            // and the caller stops waiting at the deadline — the callee
            // subtree still did (and recorded) all its work.
            let timed_out = policy.attempt_timeout.is_some_and(|limit| child.duration > limit);
            let perceived =
                if timed_out { policy.attempt_timeout.expect("checked") } else { child.duration };
            waited += perceived;
            let ok = child.ok && !timed_out;
            if timed_out {
                self.record_resilience(callee, MetricKind::Timeout, attempt_start);
                // Re-status the attempt's span with the caller-observed
                // wait: the subtree below it keeps its real (longer)
                // durations — the documented nesting exception.
                if let Some(idx) = child.span {
                    let span = &mut self.spans[idx];
                    span.duration = perceived;
                    span.status = SpanStatus::TimedOut;
                }
            }
            let mut opened = false;
            if let Some(breaker) = policy.breaker {
                let outcome_at = attempt_start + perceived;
                let state =
                    &mut self.resilience.as_mut().expect("guarded only with resilience").state;
                if let Some((_, to)) = state.on_outcome(caller, callee, &breaker, outcome_at, !ok) {
                    if to == BreakerState::Open {
                        self.record_resilience(callee, MetricKind::BreakerOpen, outcome_at);
                        opened = true;
                    }
                }
            }
            if ok {
                return Ok(HopOutcome { duration: waited, ok: true, span: None });
            }
            if opened {
                // The breaker opened on this very outcome: retrying into
                // it would just be shed load.
                break;
            }
            if attempt < policy.max_retries {
                waited += policy.backoff_delay(attempt, hrng);
                self.record_resilience(callee, MetricKind::Retry, start + waited);
                attempt_seed = hrng.next_u64();
            }
        }
        Ok(self.fallback_or_fail(&policy, callee, start, waited, parent, traced_endpoint))
    }

    /// Resolves an exhausted or shed call: degraded-but-successful
    /// fallback when configured, plain failure otherwise. A served
    /// fallback is traced as a [`SpanStatus::Fallback`] event span so the
    /// degraded response stays attributable in the trace.
    fn fallback_or_fail(
        &mut self,
        policy: &CallPolicy,
        callee: VersionId,
        start: SimTime,
        waited: SimDuration,
        parent: SpanId,
        traced_endpoint: Option<EndpointId>,
    ) -> HopOutcome {
        if policy.fallback {
            self.record_resilience(callee, MetricKind::FallbackServed, start + waited);
            if let Some(ep) = traced_endpoint {
                self.push_event_span(
                    parent,
                    callee,
                    ep,
                    start + waited,
                    policy.fallback_latency,
                    SpanStatus::Fallback,
                );
            }
            HopOutcome { duration: waited + policy.fallback_latency, ok: true, span: None }
        } else {
            HopOutcome { duration: waited, ok: false, span: None }
        }
    }

    /// Records one resilience event (value `1.0`) under the callee's
    /// `service@version` scope.
    fn record_resilience(&mut self, callee: VersionId, metric: MetricKind, time: SimTime) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.record_version(callee, metric, time, 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{CallDef, EndpointDef, VersionSpec};
    use crate::latency::LatencyModel;

    fn chain_app() -> Application {
        let mut b = Application::builder();
        b.version(
            VersionSpec::new("a", "1").endpoint(
                EndpointDef::new("entry", LatencyModel::Constant { ms: 5.0 })
                    .call(CallDef::always("b", "mid")),
            ),
        );
        b.version(
            VersionSpec::new("b", "1").endpoint(
                EndpointDef::new("mid", LatencyModel::Constant { ms: 10.0 })
                    .call(CallDef::always("c", "leaf")),
            ),
        );
        b.version(
            VersionSpec::new("c", "1")
                .endpoint(EndpointDef::new("leaf", LatencyModel::Constant { ms: 3.0 })),
        );
        b.build().unwrap()
    }

    fn run(app: &Application, router: &Router, traced: bool) -> RequestResult {
        let mut load = LoadTracker::new(app);
        let mut rng = SplitMix64::new(9);
        let entry = app.service_id("a").unwrap();
        execute_request(
            app,
            router,
            &mut load,
            &mut rng,
            UserId(1),
            entry,
            "entry",
            SimTime::from_secs(1),
            traced.then_some(TraceId(7)),
            None,
            None,
            &FaultPlan::none(),
        )
        .unwrap()
    }

    #[test]
    fn chain_latency_adds_up() {
        let app = chain_app();
        let result = run(&app, &Router::new(), false);
        assert_eq!(result.response_time.as_millis(), 18);
        assert!(result.ok);
        assert!(result.trace.is_none());
    }

    #[test]
    fn proxy_overhead_applies_per_hop() {
        let app = chain_app();
        let router = Router::with_proxy_overhead(SimDuration::from_millis(2));
        let result = run(&app, &router, false);
        // 18 ms service time + 3 hops × 2 ms.
        assert_eq!(result.response_time.as_millis(), 24);
    }

    #[test]
    fn trace_mirrors_call_tree() {
        let app = chain_app();
        let result = run(&app, &Router::new(), true);
        let trace = result.trace.unwrap();
        assert_eq!(trace.spans.len(), 3);
        let root = trace.root();
        assert_eq!(root.service, app.service_id("a").unwrap());
        assert_eq!(root.duration, result.response_time);
        // Parent chain a -> b -> c, stored pre-order with ids == positions.
        let b_svc = app.service_id("b").unwrap();
        let c_svc = app.service_id("c").unwrap();
        let b = trace.spans.iter().find(|s| s.service == b_svc).unwrap();
        let c = trace.spans.iter().find(|s| s.service == c_svc).unwrap();
        assert_eq!(b.parent, Some(root.span));
        assert_eq!(c.parent, Some(b.span));
        for (i, s) in trace.spans.iter().enumerate() {
            assert_eq!(s.span, SpanId(i as u32), "span ids equal pre-order positions");
        }
        // Child hops start after the parent's own work and nest inside it.
        assert!(b.start > root.start);
        assert!(c.start > b.start);
        assert!(c.end() <= b.end() && b.end() <= root.end());
    }

    #[test]
    fn errors_propagate_to_root() {
        let mut b = Application::builder();
        b.version(
            VersionSpec::new("a", "1").endpoint(
                EndpointDef::new("entry", LatencyModel::Constant { ms: 1.0 })
                    .call(CallDef::always("b", "mid")),
            ),
        );
        b.version(
            VersionSpec::new("b", "1").endpoint(
                EndpointDef::new("mid", LatencyModel::Constant { ms: 1.0 }).error_rate(1.0),
            ),
        );
        let app = b.build().unwrap();
        let result = run(&app, &Router::new(), true);
        assert!(!result.ok);
        let trace = result.trace.unwrap();
        assert_eq!(trace.root().status, SpanStatus::Failed, "failure reaches the root span");
        assert!(!trace.ok());
        let b_svc = app.service_id("b").unwrap();
        let b_span = trace.spans.iter().find(|s| s.service == b_svc).unwrap();
        assert_eq!(b_span.status, SpanStatus::Failed);
    }

    #[test]
    fn probabilistic_calls_fire_proportionally() {
        let mut b = Application::builder();
        b.version(
            VersionSpec::new("a", "1").endpoint(
                EndpointDef::new("entry", LatencyModel::Constant { ms: 1.0 })
                    .call(CallDef::with_probability("b", "mid", 0.3)),
            ),
        );
        b.version(
            VersionSpec::new("b", "1")
                .endpoint(EndpointDef::new("mid", LatencyModel::Constant { ms: 1.0 })),
        );
        let app = b.build().unwrap();
        let router = Router::new();
        let mut load = LoadTracker::new(&app);
        let mut rng = SplitMix64::new(11);
        let entry = app.service_id("a").unwrap();
        let mut fired = 0;
        let n = 10_000;
        for i in 0..n {
            let result = execute_request(
                &app,
                &router,
                &mut load,
                &mut rng,
                UserId(i),
                entry,
                "entry",
                SimTime::from_millis(i),
                Some(TraceId(i)),
                None,
                None,
                &FaultPlan::none(),
            )
            .unwrap();
            if result.trace.unwrap().spans.len() == 2 {
                fired += 1;
            }
        }
        let share = fired as f64 / n as f64;
        assert!((share - 0.3).abs() < 0.02, "call share {share}");
    }

    #[test]
    fn dark_mirror_excluded_from_latency_but_traced_and_loaded() {
        let mut app = chain_app();
        app.deploy(
            VersionSpec::new("b", "2").endpoint(
                EndpointDef::new("mid", LatencyModel::Constant { ms: 100.0 })
                    .call(CallDef::always("c", "leaf")),
            ),
        )
        .unwrap();
        let b_svc = app.service_id("b").unwrap();
        let dark = app.version_id("b", "2").unwrap();
        let mut router = Router::new();
        router.add_mirror(&app, b_svc, dark).unwrap();

        let mut load = LoadTracker::new(&app);
        let mut rng = SplitMix64::new(13);
        let entry = app.service_id("a").unwrap();
        let result = execute_request(
            &app,
            &router,
            &mut load,
            &mut rng,
            UserId(1),
            entry,
            "entry",
            SimTime::from_secs(1),
            Some(TraceId(1)),
            None,
            None,
            &FaultPlan::none(),
        )
        .unwrap();
        // Latency unchanged: dark work is not on the user path.
        assert_eq!(result.response_time.as_millis(), 18);
        let trace = result.trace.unwrap();
        // Primary a,b,c plus dark b@2 and its downstream c call.
        assert_eq!(trace.spans.len(), 5);
        let dark_spans: Vec<_> = trace.spans.iter().filter(|s| s.dark).collect();
        assert_eq!(dark_spans.len(), 2);
        assert!(dark_spans.iter().any(|s| s.version == dark));
        // Dark leaf call doubled the load on c: flush c's bucket and check.
        let c = app.version_id("c", "1").unwrap();
        load.record_arrival(c, SimTime::from_secs(2));
        assert!((load.rate_rps(c) - 2.0).abs() < 1e-9, "c saw primary + dark arrival");
    }

    #[test]
    fn metrics_recorded_per_version_scope() {
        let app = chain_app();
        let store = MetricStore::new();
        let scopes = store.intern_version_scopes(&app);
        let app_scope = store.intern("app");
        let mut sink = MetricSink::new(&store, &scopes, app_scope);
        let mut load = LoadTracker::new(&app);
        let mut rng = SplitMix64::new(17);
        let entry = app.service_id("a").unwrap();
        execute_request(
            &app,
            &Router::new(),
            &mut load,
            &mut rng,
            UserId(1),
            entry,
            "entry",
            SimTime::from_secs(1),
            None,
            Some(&mut sink),
            None,
            &FaultPlan::none(),
        )
        .unwrap();
        drop(sink); // flush the batch
        assert_eq!(store.count("a@1", MetricKind::ResponseTime), 1);
        assert_eq!(store.count("b@1", MetricKind::ResponseTime), 1);
        assert_eq!(store.count("c@1", MetricKind::ErrorRate), 1);
    }

    /// Runs one guarded request entering `a`/`entry` at `now`, recording
    /// metrics into `store` and mutating the caller's breaker `state`.
    #[allow(clippy::too_many_arguments)]
    fn guarded_run(
        app: &Application,
        policy: &CallPolicy,
        faults: &FaultPlan,
        state: &mut crate::resilience::ResilienceState,
        store: &MetricStore,
        now: SimTime,
        user: u64,
    ) -> RequestResult {
        let plan = crate::resilience::ResiliencePlan::with_default(*policy);
        let scopes = store.intern_version_scopes(app);
        let app_scope = store.intern("app");
        let mut sink = MetricSink::new(store, &scopes, app_scope);
        let mut load = LoadTracker::new(app);
        let mut rng = SplitMix64::new(99);
        let entry = app.service_id("a").unwrap();
        let result = execute_request(
            app,
            &Router::new(),
            &mut load,
            &mut rng,
            UserId(user),
            entry,
            "entry",
            now,
            None,
            Some(&mut sink),
            Some(Resilience { plan: &plan, state: &mut *state }),
            faults,
        )
        .unwrap();
        drop(sink); // flush
        result
    }

    /// a (5 ms) → b (10 ms), with `b` failing at the given rate.
    fn two_tier(b_error_rate: f64) -> Application {
        let mut builder = Application::builder();
        builder.version(
            VersionSpec::new("a", "1").endpoint(
                EndpointDef::new("entry", LatencyModel::Constant { ms: 5.0 })
                    .call(CallDef::always("b", "mid")),
            ),
        );
        builder.version(VersionSpec::new("b", "1").endpoint(
            EndpointDef::new("mid", LatencyModel::Constant { ms: 10.0 }).error_rate(b_error_rate),
        ));
        builder.build().unwrap()
    }

    #[test]
    fn retry_succeeds_when_fault_expires_before_the_retry() {
        use crate::faults::{Fault, FaultKind};
        // Outage on b over [1000, 1016) ms. The request arrives at 995,
        // spends 5 ms in `a`, so attempt 1 hits `b` at exactly 1000 (the
        // inclusive window start) and fails. The retry fires at
        // 1000 + 10 (attempt) + 6 (backoff) = 1016 — exactly the
        // exclusive window end — and must succeed.
        let app = two_tier(0.0);
        let b = app.version_id("b", "1").unwrap();
        let mut faults = FaultPlan::none();
        faults.inject(Fault {
            version: b,
            kind: FaultKind::Outage,
            from: SimTime::from_millis(1000),
            until: SimTime::from_millis(1016),
        });
        let policy = CallPolicy {
            max_retries: 1,
            backoff_base: SimDuration::from_millis(6),
            backoff_multiplier: 1.0,
            ..CallPolicy::default()
        };
        let store = MetricStore::new();
        let mut state = crate::resilience::ResilienceState::new();
        let result =
            guarded_run(&app, &policy, &faults, &mut state, &store, SimTime::from_millis(995), 1);
        assert!(result.ok, "retry after the window must succeed");
        // 5 (a) + 10 (failed attempt) + 6 (backoff) + 10 (retry).
        assert_eq!(result.response_time.as_millis(), 31);
        assert_eq!(store.count("b@1", MetricKind::Retry), 1);
    }

    #[test]
    fn retry_fails_while_fault_window_still_covers_it() {
        use crate::faults::{Fault, FaultKind};
        // Same timeline, but the window runs one millisecond longer —
        // [1000, 1017) — so the retry at 1016 is still inside it.
        let app = two_tier(0.0);
        let b = app.version_id("b", "1").unwrap();
        let mut faults = FaultPlan::none();
        faults.inject(Fault {
            version: b,
            kind: FaultKind::Outage,
            from: SimTime::from_millis(1000),
            until: SimTime::from_millis(1017),
        });
        let policy = CallPolicy {
            max_retries: 1,
            backoff_base: SimDuration::from_millis(6),
            backoff_multiplier: 1.0,
            ..CallPolicy::default()
        };
        let store = MetricStore::new();
        let mut state = crate::resilience::ResilienceState::new();
        let result =
            guarded_run(&app, &policy, &faults, &mut state, &store, SimTime::from_millis(995), 1);
        assert!(!result.ok, "both attempts fall inside the window");
    }

    #[test]
    fn attempt_timeout_caps_perceived_latency_and_counts_as_failure() {
        let app = two_tier(0.0);
        let policy = CallPolicy {
            attempt_timeout: Some(SimDuration::from_millis(4)),
            ..CallPolicy::default()
        };
        let store = MetricStore::new();
        let mut state = crate::resilience::ResilienceState::new();
        let result = guarded_run(
            &app,
            &policy,
            &FaultPlan::none(),
            &mut state,
            &store,
            SimTime::from_secs(1),
            1,
        );
        assert!(!result.ok, "a timed-out call is a failure without fallback");
        // 5 (a) + 4 (wait capped at the deadline, not b's 10 ms).
        assert_eq!(result.response_time.as_millis(), 9);
        assert_eq!(store.count("b@1", MetricKind::Timeout), 1);
    }

    #[test]
    fn breaker_opens_then_sheds_and_fallback_keeps_requests_ok() {
        let app = two_tier(1.0);
        let policy = CallPolicy {
            breaker: Some(crate::resilience::BreakerPolicy {
                error_threshold: 0.5,
                min_calls: 4,
                window: 8,
                cooldown: SimDuration::from_secs(60),
                half_open_probes: 1,
            }),
            fallback: true,
            fallback_latency: SimDuration::from_millis(1),
            ..CallPolicy::default()
        };
        let store = MetricStore::new();
        let mut state = crate::resilience::ResilienceState::new();
        let a = app.version_id("a", "1").unwrap();
        let b = app.version_id("b", "1").unwrap();
        let mut times = Vec::new();
        for i in 0..8u64 {
            let result = guarded_run(
                &app,
                &policy,
                &FaultPlan::none(),
                &mut state,
                &store,
                SimTime::from_secs(1 + i),
                i,
            );
            assert!(result.ok, "fallback keeps every request successful");
            times.push(result.response_time.as_millis());
        }
        // Four failures open the breaker; later requests are shed and only
        // pay a + fallback latency (6 ms) instead of a + b + fallback (16).
        assert_eq!(state.current(a, b), crate::resilience::BreakerState::Open);
        assert_eq!(times[0], 16);
        assert_eq!(*times.last().unwrap(), 6);
        assert_eq!(store.count("b@1", MetricKind::BreakerOpen), 1);
        assert_eq!(store.count("b@1", MetricKind::Shed), 4);
        assert_eq!(store.count("b@1", MetricKind::FallbackServed), 8);
        // Shed calls never reach b: it saw only the 4 executed attempts.
        assert_eq!(store.count("b@1", MetricKind::ErrorRate), 4);
    }

    #[test]
    fn oversaturated_error_composition_clamps_instead_of_panicking() {
        use crate::faults::{Fault, FaultKind};
        // Endpoint error rate 0.9 + fault burst 0.9 sums to 1.8; the
        // executor must clamp to a certain failure, not panic.
        let app = two_tier(0.9);
        let b = app.version_id("b", "1").unwrap();
        let mut faults = FaultPlan::none();
        faults.inject(Fault {
            version: b,
            kind: FaultKind::ErrorBurst { extra_error_rate: 0.9 },
            from: SimTime::ZERO,
            until: SimTime::from_secs(1_000),
        });
        let mut load = LoadTracker::new(&app);
        let mut rng = SplitMix64::new(5);
        let entry = app.service_id("a").unwrap();
        for i in 0..200 {
            let result = execute_request(
                &app,
                &Router::new(),
                &mut load,
                &mut rng,
                UserId(i),
                entry,
                "entry",
                SimTime::from_millis(i),
                None,
                None,
                None,
                &faults,
            )
            .unwrap();
            assert!(!result.ok, "combined rate clamps to exactly 1.0");
        }
    }

    /// Checks every structural invariant the trace module documents:
    /// pre-order storage with span ids equal to positions, a single root,
    /// children starting inside their parent, synchronous-child interval
    /// nesting (with the documented dark and timed-out exceptions), and
    /// root duration equal to the user-perceived response time.
    fn assert_span_invariants(trace: &Trace, response_time: SimDuration) {
        assert!(!trace.spans.is_empty());
        for (i, s) in trace.spans.iter().enumerate() {
            assert_eq!(s.span, SpanId(i as u32), "span ids are pre-order positions");
            match s.parent {
                None => assert_eq!(i, 0, "only the root lacks a parent"),
                Some(p) => {
                    assert!((p.0 as usize) < i, "parents precede children");
                    let parent = &trace.spans[p.0 as usize];
                    assert!(s.start >= parent.start, "children start within the parent");
                    if !s.dark && parent.status != SpanStatus::TimedOut {
                        assert!(
                            s.end() <= parent.end(),
                            "synchronous child interval must nest (span {i})"
                        );
                    }
                }
            }
        }
        assert_eq!(trace.root().duration, response_time);
        assert_eq!(trace.response_time(), response_time);
    }

    #[test]
    fn timed_out_attempt_span_carries_perceived_wait() {
        let app = two_tier(0.0);
        let policy = CallPolicy {
            attempt_timeout: Some(SimDuration::from_millis(4)),
            max_retries: 0,
            ..CallPolicy::default()
        };
        let plan = crate::resilience::ResiliencePlan::with_default(policy);
        let mut state = crate::resilience::ResilienceState::new();
        let mut load = LoadTracker::new(&app);
        let mut rng = SplitMix64::new(3);
        let entry = app.service_id("a").unwrap();
        let result = execute_request(
            &app,
            &Router::new(),
            &mut load,
            &mut rng,
            UserId(1),
            entry,
            "entry",
            SimTime::from_secs(1),
            Some(TraceId(1)),
            None,
            Some(Resilience { plan: &plan, state: &mut state }),
            &FaultPlan::none(),
        )
        .unwrap();
        assert!(!result.ok);
        let trace = result.trace.unwrap();
        assert_span_invariants(&trace, result.response_time);
        assert_eq!(trace.spans.len(), 2);
        let b = &trace.spans[1];
        assert_eq!(b.status, SpanStatus::TimedOut);
        // The span records the caller-observed wait (the 4 ms deadline),
        // not b's real 10 ms of work.
        assert_eq!(b.duration.as_millis(), 4);
        assert_eq!(trace.root().status, SpanStatus::Failed);
    }

    #[test]
    fn shed_and_fallback_emit_event_spans() {
        let app = two_tier(1.0);
        let policy = CallPolicy {
            breaker: Some(crate::resilience::BreakerPolicy {
                error_threshold: 0.5,
                min_calls: 4,
                window: 8,
                cooldown: SimDuration::from_secs(60),
                half_open_probes: 1,
            }),
            fallback: true,
            fallback_latency: SimDuration::from_millis(1),
            ..CallPolicy::default()
        };
        let plan = crate::resilience::ResiliencePlan::with_default(policy);
        let mut state = crate::resilience::ResilienceState::new();
        let mut load = LoadTracker::new(&app);
        let mut rng = SplitMix64::new(21);
        let entry = app.service_id("a").unwrap();
        let b = app.version_id("b", "1").unwrap();
        let mut last = None;
        for i in 0..8u64 {
            let result = execute_request(
                &app,
                &Router::new(),
                &mut load,
                &mut rng,
                UserId(i),
                entry,
                "entry",
                SimTime::from_secs(1 + i),
                Some(TraceId(i)),
                None,
                Some(Resilience { plan: &plan, state: &mut state }),
                &FaultPlan::none(),
            )
            .unwrap();
            assert!(result.ok, "fallback keeps requests successful");
            let trace = result.trace.unwrap();
            assert_span_invariants(&trace, result.response_time);
            last = Some(trace);
        }
        // After the breaker opened, a request is root + shed event +
        // fallback event — no executed b endpoint at all.
        let trace = last.unwrap();
        assert!(trace.ok(), "fallback-served root counts as ok");
        let shed = trace.spans.iter().find(|s| s.status == SpanStatus::Shed).unwrap();
        assert_eq!(shed.version, b);
        assert_eq!(shed.duration, SimDuration::ZERO);
        let fb = trace.spans.iter().find(|s| s.status == SpanStatus::Fallback).unwrap();
        assert_eq!(fb.version, b);
        assert_eq!(fb.duration.as_millis(), 1);
        assert!(
            !trace.spans.iter().any(|s| s.status == SpanStatus::Failed),
            "shed request never executed b"
        );
    }

    #[test]
    fn span_tree_invariants_hold_under_stress() {
        use crate::faults::{Fault, FaultKind};
        // A three-tier app with jittered latencies, an error-prone middle
        // tier, a slow dark-launched mirror, and a resilience policy with
        // timeouts, retries, a breaker, and fallbacks: every span shape
        // the executor can produce shows up here.
        let mut builder = Application::builder();
        builder.version(
            VersionSpec::new("a", "1").endpoint(
                EndpointDef::new("entry", LatencyModel::Constant { ms: 5.0 })
                    .call(CallDef::always("b", "mid")),
            ),
        );
        builder.version(
            VersionSpec::new("b", "1").endpoint(
                EndpointDef::new("mid", LatencyModel::Uniform { lo: 2.0, hi: 12.0 })
                    .error_rate(0.2)
                    .call(CallDef::always("c", "leaf")),
            ),
        );
        builder.version(
            VersionSpec::new("c", "1")
                .endpoint(EndpointDef::new("leaf", LatencyModel::Uniform { lo: 1.0, hi: 6.0 })),
        );
        let mut app = builder.build().unwrap();
        app.deploy(
            VersionSpec::new("b", "2").endpoint(
                EndpointDef::new("mid", LatencyModel::Constant { ms: 100.0 })
                    .call(CallDef::always("c", "leaf")),
            ),
        )
        .unwrap();
        let b_svc = app.service_id("b").unwrap();
        let dark = app.version_id("b", "2").unwrap();
        let mut router = Router::new();
        router.add_mirror(&app, b_svc, dark).unwrap();

        let policy = CallPolicy {
            attempt_timeout: Some(SimDuration::from_millis(9)),
            max_retries: 2,
            backoff_base: SimDuration::from_millis(2),
            backoff_multiplier: 2.0,
            breaker: Some(crate::resilience::BreakerPolicy {
                error_threshold: 0.4,
                min_calls: 8,
                window: 16,
                cooldown: SimDuration::from_millis(100),
                half_open_probes: 1,
            }),
            fallback: true,
            fallback_latency: SimDuration::from_millis(1),
            ..CallPolicy::default()
        };
        let plan = crate::resilience::ResiliencePlan::with_default(policy);
        let b_fault = app.version_id("b", "1").unwrap();
        let mut faults = FaultPlan::none();
        faults.inject(Fault {
            version: b_fault,
            kind: FaultKind::ErrorBurst { extra_error_rate: 0.5 },
            from: SimTime::from_millis(2_000),
            until: SimTime::from_millis(3_000),
        });

        let entry = app.service_id("a").unwrap();
        let mut statuses = std::collections::BTreeSet::new();
        let mut saw_retry = false;
        let mut saw_dark = false;
        for seed in [4242u64, 7, 99] {
            let mut state = crate::resilience::ResilienceState::new();
            let mut load = LoadTracker::new(&app);
            let mut rng = SplitMix64::new(seed);
            for i in 0..200u64 {
                let result = execute_request(
                    &app,
                    &router,
                    &mut load,
                    &mut rng,
                    UserId(i),
                    entry,
                    "entry",
                    SimTime::from_millis(i * 20),
                    Some(TraceId(seed * 1_000 + i)),
                    None,
                    Some(Resilience { plan: &plan, state: &mut state }),
                    &faults,
                )
                .unwrap();
                let trace = result.trace.unwrap();
                assert_span_invariants(&trace, result.response_time);
                for s in &trace.spans {
                    statuses.insert(s.status.name());
                    saw_retry |= s.attempt > 0;
                    saw_dark |= s.dark;
                }
            }
        }
        assert!(saw_retry, "retry attempts appear as numbered sibling spans");
        assert!(saw_dark, "dark mirror work is traced");
        for want in ["ok", "failed", "timed_out", "shed", "fallback"] {
            assert!(statuses.contains(want), "stress run must produce a `{want}` span");
        }
    }

    #[test]
    fn unknown_entry_endpoint_errors() {
        let app = chain_app();
        let mut load = LoadTracker::new(&app);
        let mut rng = SplitMix64::new(1);
        let entry = app.service_id("a").unwrap();
        let err = execute_request(
            &app,
            &Router::new(),
            &mut load,
            &mut rng,
            UserId(1),
            entry,
            "nope",
            SimTime::ZERO,
            None,
            None,
            None,
            &FaultPlan::none(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::UnknownEndpoint { .. }));
    }
}
