//! Scheduling a release train with Fenrir, including mid-horizon
//! reevaluation.
//!
//! A platform team has 20 experiments queued for the next four weeks —
//! canaries, dark launches, A/B tests of varying sample-size demands —
//! competing for the same finite user traffic. Fenrir finds a valid
//! schedule; a week later reality intervenes (experiments finish early,
//! get canceled, new ones arrive) and the schedule is reevaluated with
//! the existing plan as the search seed.
//!
//! Run with `cargo run --example release_train`.

use cex_core::experiment::ExperimentId;
use continuous_experimentation::fenrir::ga::GeneticAlgorithm;
use continuous_experimentation::fenrir::gantt::{self, GanttOptions};
use continuous_experimentation::fenrir::generator::{ProblemGenerator, SampleSizeTier};
use continuous_experimentation::fenrir::problem::ExperimentRequest;
use continuous_experimentation::fenrir::reevaluate::{reevaluate, ScheduleUpdate};
use continuous_experimentation::fenrir::runner::{Budget, Scheduler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 20 experiments, medium sample sizes, four-week hourly horizon.
    let problem = ProblemGenerator::new(20, SampleSizeTier::Medium).generate(314);
    println!(
        "scheduling {} experiments over {} hourly slots ({} user groups, {:.1}M interactions)…",
        problem.len(),
        problem.horizon(),
        problem.population().len(),
        problem.traffic().total() / 1e6
    );

    let ga = GeneticAlgorithm::default();
    let result = ga.schedule(&problem, Budget::evaluations(8_000), 1);
    println!(
        "schedule found: fitness {:.3}, valid: {}, makespan {} slots\n",
        result.best_report.raw,
        result.best_report.is_valid(),
        result.best.makespan()
    );
    print!("{}", gantt::render(&problem, &result.best, GanttOptions { width: 68, details: false }));
    println!("\n{:<8} {:>12} plan", "exp", "samples");
    for i in 0..problem.len() {
        let id = ExperimentId(i);
        println!(
            "{:<8} {:>12.0} {}",
            problem.experiment(id).name,
            result.best.samples_collected(&problem, id),
            result.best.plan(id)
        );
    }

    // One week later: two finished, one canceled, three new requests.
    println!("\n--- one week later: reevaluating ---");
    let mut added = Vec::new();
    for (i, service) in ["checkout-v2", "search-ranker", "push-opt"].iter().enumerate() {
        let mut request = ExperimentRequest::new(format!("new-{service}"), *service, 45_000.0);
        request.min_duration_slots = 12;
        request.max_duration_slots = 120;
        request.earliest_start_slot = 7 * 24 + i * 6;
        added.push(request);
    }
    let update = ScheduleUpdate {
        now_slot: 7 * 24,
        finished: vec![ExperimentId(1), ExperimentId(6)],
        canceled: vec![ExperimentId(3)],
        added,
    };
    let re = reevaluate(&problem, &result.best, &update, 9)?;
    let warm = ga.schedule_from(
        &re.problem,
        Budget::evaluations(6_000),
        2,
        Some(re.seed_schedule.clone()),
    );
    println!(
        "reevaluated {} experiments: fitness {:.3}, valid: {}",
        re.problem.len(),
        warm.best_report.raw,
        warm.best_report.is_valid()
    );
    // Running experiments may keep their plans (the seed) or be adjusted
    // and restarted — but never moved before their actual start.
    let mut kept = 0;
    let mut running = 0;
    for (old, new) in re.mapping.iter().enumerate() {
        if let Some(new_id) = new {
            let old_plan = result.best.plan(ExperimentId(old));
            if old_plan.start_slot < update.now_slot {
                running += 1;
                let new_plan = warm.best.plan(*new_id);
                assert!(
                    new_plan.start_slot >= old_plan.start_slot,
                    "a running experiment cannot retroactively start earlier"
                );
                if new_plan.start_slot == old_plan.start_slot {
                    kept += 1;
                }
            }
        }
    }
    println!("{kept}/{running} already-running experiments kept their start slots");
    Ok(())
}
