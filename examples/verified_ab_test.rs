//! Pre-launch verification and a statistically rigorous A/B test.
//!
//! Business-driven experiments are "characterized through rigorous
//! hypothesis testing on selected metrics" (Table 2.5). This example:
//!
//! 1. writes an A/B strategy whose success criterion is a **Welch t-test**
//!    (`significant_vs_baseline`) on the conversion rate,
//! 2. runs the strategy set through the **pre-launch verifier**
//!    (the dissertation's §1.6.4 future work) and fixes what it flags,
//! 3. executes the test twice: once with a genuinely better candidate
//!    (significant → promoted) and once with an identical-performing
//!    candidate (not significant → rolled back — the null effect is
//!    correctly *not* shipped).
//!
//! Run with `cargo run --release --example verified_ab_test`.

use continuous_experimentation::bifrost::dsl;
use continuous_experimentation::bifrost::engine::{Engine, StrategyStatus};
use continuous_experimentation::bifrost::verify::{is_launchable, verify};
use continuous_experimentation::core::simtime::SimDuration;
use continuous_experimentation::microsim::app::{Application, EndpointDef, VersionSpec};
use continuous_experimentation::microsim::latency::LatencyModel;
use continuous_experimentation::microsim::sim::Simulation;
use continuous_experimentation::microsim::workload::Workload;

const STRATEGY: &str = r#"
strategy "checkout-cta" {
  service "checkout"
  baseline "1.0.0"
  candidate "2.0.0"

  phase "ab" ab_test 50% for 30m {
    # Ship only if the uplift is statistically significant at alpha = 0.05.
    check conversion_rate significant_vs_baseline > 0.05 over 25m every 2m min_samples 400
    check error_rate < 0.05 over 5m every 1m min_samples 50
    on success complete
    on failure rollback
    on inconclusive retry
  }
}
"#;

fn app(candidate_conversion: f64) -> Application {
    let mut b = Application::builder();
    b.version(
        VersionSpec::new("checkout", "1.0.0")
            .capacity(10_000.0)
            .conversion_rate(0.02)
            .endpoint(EndpointDef::new("pay", LatencyModel::web(15.0))),
    );
    b.version(
        VersionSpec::new("checkout", "2.0.0")
            .capacity(10_000.0)
            .conversion_rate(candidate_conversion)
            .endpoint(EndpointDef::new("pay", LatencyModel::web(15.0))),
    );
    b.build().expect("static app is valid")
}

fn run(label: &str, candidate_conversion: f64) -> Result<(), Box<dyn std::error::Error>> {
    let app = app(candidate_conversion);
    let strategy = dsl::parse(STRATEGY)?;

    // Pre-launch verification.
    let issues = verify(&app, std::slice::from_ref(&strategy));
    for issue in &issues {
        println!("  verifier: [{:?}] {issue}", issue.severity());
    }
    assert!(is_launchable(&issues), "verifier must not find errors");

    let wl = Workload::simple(app.service_id("checkout")?, "pay", 40.0);
    let mut sim = Simulation::new(app, 77);
    let report =
        Engine::default().execute(&mut sim, &[strategy], &wl, SimDuration::from_hours(4))?;
    let status = &report.statuses[0].1;
    println!(
        "  {label}: candidate converts at {:.1}% vs baseline 2.0% -> {:?} \
         ({} check evaluations)",
        candidate_conversion * 100.0,
        status,
        report.check_evaluations
    );
    match (label, status) {
        ("uplift", StrategyStatus::Completed) => println!("  ✓ real uplift shipped\n"),
        ("null effect", StrategyStatus::RolledBack) => {
            println!("  ✓ statistical noise correctly NOT shipped\n")
        }
        other => println!("  unexpected outcome {other:?}\n"),
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("A/B test gated on Welch's t-test (alpha = 0.05):\n");
    run("uplift", 0.05)?;
    run("null effect", 0.02)?;

    // Show the verifier catching a real planning mistake: two experiments
    // on the same service.
    let app = app(0.05);
    let a = dsl::parse(STRATEGY)?;
    let mut b = a.clone();
    b.name = "checkout-cta-conflicting".into();
    let issues = verify(&app, &[a, b]);
    println!("conflicting launch attempt:");
    for issue in &issues {
        println!("  verifier: [{:?}] {issue}", issue.severity());
    }
    assert!(!is_launchable(&issues));
    println!("  ✓ conflicting strategies blocked before launch");
    Ok(())
}
