//! Topology-aware health assessment of a breaking release.
//!
//! A frontend release drops its reviews dependency and pulls in a brand
//! new (and unhealthy) `promos` service, while shipping also got a
//! harmless version bump. The example builds the interaction graphs of
//! both variants from distributed traces, computes the topological
//! difference, classifies every change, and shows how the six heuristic
//! variations rank them — the release engineer's drill-down view
//! (Figure 1.3 of the dissertation).
//!
//! Run with `cargo run --example topology_drilldown`.

use continuous_experimentation::topology::changes::ChangeType;
use continuous_experimentation::topology::diff::Status;
use continuous_experimentation::topology::heuristics;
use continuous_experimentation::topology::rank::{ndcg_at, rank};
use continuous_experimentation::topology::scenarios::scenario_2;

fn main() {
    let scenario = scenario_2(true, 2026);
    println!("scenario: {}\n", scenario.name);

    // The topological difference, colour-coded as the prototype UI would.
    println!(
        "topological difference: {} nodes, {} edges ({}% changed)",
        scenario.diff.nodes.len(),
        scenario.diff.edges.len(),
        (scenario.diff.change_fraction() * 100.0).round()
    );
    for (label, status) in [("added   (green)", Status::Added), ("removed  (red)", Status::Removed)]
    {
        let nodes: Vec<String> =
            scenario.diff.nodes_with(status).map(|(_, n)| n.key.to_string()).collect();
        println!("  {label}: {}", if nodes.is_empty() { "—".into() } else { nodes.join(", ") });
    }

    // Classified changes, grouped by fundamental vs composed.
    println!("\nidentified changes ({}):", scenario.changes.len());
    for change in &scenario.changes {
        let family = if change.kind.is_fundamental() { "fundamental" } else { "composed" };
        println!("  [{family:>11}] {change}  (uncertainty {})", change.kind.uncertainty());
    }
    assert!(scenario.changes.iter().any(|c| c.kind == ChangeType::CallingNewEndpoint));
    assert!(scenario.changes.iter().any(|c| c.kind == ChangeType::RemovingServiceCall));

    // All six heuristics rank the changes; nDCG@5 vs injected ground truth.
    println!("\nrankings (top 3) and nDCG@5:");
    for heuristic in heuristics::all_variants() {
        let ranking = rank(heuristic.as_ref(), &scenario.analysis(), &scenario.changes);
        let ndcg = ndcg_at(&ranking, &scenario.relevance, 5);
        println!("  {} (nDCG@5 = {ndcg:.3})", heuristic.name());
        for (pos, idx) in ranking.top(3).iter().enumerate() {
            println!("    {}. {}", pos + 1, scenario.changes[*idx]);
        }
    }
    println!("\nThe broken `promos` dependency should top the behaviour-aware rankings.");
}
