//! A decentralized experiment fleet: many teams, one engine.
//!
//! The dissertation's setting is "decentralized microservice teams
//! independently running experiments". Here 24 teams each canary their own
//! service with a templated strategy; the fleet is verified as a whole
//! before launch (catching one team's mistake), executed in parallel, and
//! summarized from the engine's transition log.
//!
//! Run with `cargo run --release --example fleet`.

use continuous_experimentation::bifrost::engine::{Engine, StrategyStatus};
use continuous_experimentation::bifrost::machine::State;
use continuous_experimentation::bifrost::templates::{canary_then_rollout, HealthCriteria};
use continuous_experimentation::bifrost::verify::{is_launchable, verify, Severity};
use continuous_experimentation::core::simtime::SimDuration;
use continuous_experimentation::core::users::Population;
use continuous_experimentation::microsim::app::{Application, EndpointDef, VersionSpec};
use continuous_experimentation::microsim::latency::LatencyModel;
use continuous_experimentation::microsim::sim::Simulation;
use continuous_experimentation::microsim::workload::{EntryPoint, Workload};

const TEAMS: usize = 24;

fn fleet_app() -> Application {
    let mut b = Application::builder();
    for i in 0..TEAMS {
        b.version(
            VersionSpec::new(format!("team{i:02}-svc"), "1.0.0")
                .capacity(5_000.0)
                .endpoint(EndpointDef::new("api", LatencyModel::web(10.0))),
        );
        // Team 7 shipped a slow, flaky build.
        let candidate = if i == 7 {
            VersionSpec::new(format!("team{i:02}-svc"), "1.1.0")
                .capacity(5_000.0)
                .endpoint(EndpointDef::new("api", LatencyModel::web(40.0)).error_rate(0.2))
        } else {
            VersionSpec::new(format!("team{i:02}-svc"), "1.1.0")
                .capacity(5_000.0)
                .endpoint(EndpointDef::new("api", LatencyModel::web(9.0)))
        };
        b.version(candidate);
    }
    b.build().expect("fleet app is valid")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = fleet_app();

    // Each team instantiates the same vetted template.
    let mut strategies: Vec<_> = (0..TEAMS)
        .map(|i| {
            canary_then_rollout(
                format!("team{i:02}-canary"),
                format!("team{i:02}-svc"),
                "1.0.0",
                "1.1.0",
                HealthCriteria { min_samples: 10, ..Default::default() },
            )
        })
        .collect();

    // Team 3 accidentally targets team 2's service — verification catches
    // the collision before anything is enacted.
    strategies[3].service = "team02-svc".into();
    let issues = verify(&app, &strategies);
    for issue in issues.iter().filter(|i| i.severity() == Severity::Error) {
        println!("verifier blocked launch: {issue}");
    }
    assert!(!is_launchable(&issues));
    strategies[3].service = "team03-svc".into();
    assert!(is_launchable(&verify(&app, &strategies)), "fixed fleet verifies");
    println!("fleet of {TEAMS} strategies verified\n");

    // One workload spanning every team's service.
    let entries = (0..TEAMS)
        .map(|i| EntryPoint {
            service: app.service_id(&format!("team{i:02}-svc")).expect("exists"),
            endpoint: "api".into(),
            weight: 1.0,
        })
        .collect();
    let workload = Workload {
        population: Population::single("all", 200_000),
        rate_rps: (TEAMS * 12) as f64,
        entries,
        profile: microsim::workload::RateProfile::Constant,
    };

    let mut sim = Simulation::new(app, 2026);
    let report =
        Engine::default().execute(&mut sim, &strategies, &workload, SimDuration::from_hours(2))?;

    let completed = report.statuses.iter().filter(|(_, s)| *s == StrategyStatus::Completed).count();
    let rolled_back: Vec<&str> = report
        .statuses
        .iter()
        .filter(|(_, s)| *s == StrategyStatus::RolledBack)
        .map(|(n, _)| n.as_str())
        .collect();
    println!(
        "executed {} strategies in parallel: {completed} completed, {} rolled back",
        TEAMS,
        rolled_back.len()
    );
    println!("rolled back: {rolled_back:?}");
    assert!(rolled_back.contains(&"team07-canary"), "the flaky build must be caught");

    // Transition-log summary: how long did each rollback take to trigger?
    for (name, _) in report.statuses.iter().filter(|(_, s)| *s == StrategyStatus::RolledBack) {
        let t = report
            .transitions
            .iter()
            .find(|t| &t.strategy == name && t.to == State::RolledBack)
            .expect("rollback recorded");
        println!("  {name}: rolled back after {}s of experiment time", t.time.as_secs());
    }
    println!(
        "\nengine cost: {:.2}% CPU, mean tick processing {:?}",
        report.cpu_utilization() * 100.0,
        report.mean_tick_processing
    );
    Ok(())
}
