//! The AB Inc motivating example (Chapter 1 of the dissertation).
//!
//! AB Inc's release engineer wants to ship a recommendation feature with
//! manageable risk: confirm scalability first, then measure user
//! acceptance. That is exactly a **multi-phase strategy**:
//!
//! canary (5%) → dark launch (scalability) → A/B test (two
//! implementations, business metrics) → gradual rollout of the winner.
//!
//! The example runs the strategy twice: once with a healthy candidate
//! (completes and promotes), once with a broken candidate (the canary
//! checks trip and Bifrost rolls everyone back to the stable version).
//!
//! Run with `cargo run --example ab_inc_recommendation`.

use continuous_experimentation::bifrost::dsl;
use continuous_experimentation::bifrost::engine::{Engine, StrategyStatus};
use continuous_experimentation::core::metrics::MetricKind;
use continuous_experimentation::core::simtime::{SimDuration, SimTime};
use continuous_experimentation::core::users::Population;
use continuous_experimentation::microsim::app::{CallDef, EndpointDef, VersionSpec};
use continuous_experimentation::microsim::latency::LatencyModel;
use continuous_experimentation::microsim::sim::Simulation;
use continuous_experimentation::microsim::topologies;
use continuous_experimentation::microsim::workload::{EntryPoint, Workload};

const STRATEGY: &str = r#"
strategy "ab-inc-recommendation" {
  service "recommendation"
  baseline "1.0.0"
  candidate "1.1.0"
  variant_b "1.1.0-alt"

  # Keep the blast radius small while confirming basic health.
  phase "canary" canary 5% for 4m {
    check error_rate < 0.05 over 1m every 30s min_samples 10
    on success goto "dark"
    on failure rollback
  }
  # Scalability under production-shaped load, invisible to users.
  phase "dark" dark_launch for 4m {
    check response_time vs_baseline < 2.5 over 1m every 30s min_samples 10
    on success goto "ab"
    on failure rollback
  }
  # Two alternative implementations, judged on business metrics.
  phase "ab" ab_test 25% for 8m {
    check conversion_rate > 0.001 over 4m every 1m min_samples 30
    on success goto "rollout"
    on failure rollback
  }
  # Expose the winner step-wise to everyone.
  phase "rollout" gradual_rollout from 25% to 100% step 25% every 2m for 12m {
    check error_rate < 0.05 over 1m every 30s min_samples 10
    on success complete
    on failure rollback
  }
}
"#;

fn run(broken: bool) -> Result<(), Box<dyn std::error::Error>> {
    let mut sim = Simulation::new(topologies::case_study_app(), 99);
    // Variant A: the regular candidate (or the broken build).
    if broken {
        let mut spec = topologies::recommendation_broken();
        spec.version = "1.1.0".into();
        sim.deploy(spec)?;
    } else {
        sim.deploy(topologies::recommendation_candidate())?;
    }
    // Variant B: a lighter implementation with a better conversion rate.
    sim.deploy(
        VersionSpec::new("recommendation", "1.1.0-alt")
            .capacity(250.0)
            .conversion_rate(0.03)
            .endpoint(
                EndpointDef::new("recommend", LatencyModel::web(9.0))
                    .call(CallDef::always("profile-store", "get")),
            ),
    )?;

    let frontend = sim.app().service_id("frontend")?;
    let workload = Workload {
        population: Population::single("customers", 40_000),
        rate_rps: 50.0,
        entries: vec![
            EntryPoint { service: frontend, endpoint: "home".into(), weight: 4.0 },
            EntryPoint { service: frontend, endpoint: "product".into(), weight: 3.0 },
            EntryPoint { service: frontend, endpoint: "checkout".into(), weight: 1.0 },
        ],
        profile: microsim::workload::RateProfile::Constant,
    };

    let strategy = dsl::parse(STRATEGY)?;
    println!(
        "running '{}' with a {} candidate…",
        strategy.name,
        if broken { "BROKEN" } else { "healthy" }
    );
    let report =
        Engine::default().execute(&mut sim, &[strategy], &workload, SimDuration::from_mins(40))?;
    let status = &report.statuses[0].1;
    println!(
        "  outcome: {:?} after {} ticks, {} check evaluations",
        status, report.ticks, report.check_evaluations
    );

    // Where did traffic end up?
    let candidate_rt = sim.store().summary_between(
        "recommendation@1.1.0",
        MetricKind::ResponseTime,
        SimTime::ZERO,
        sim.now(),
    );
    let baseline_rt = sim.store().summary_between(
        "recommendation@1.0.0",
        MetricKind::ResponseTime,
        SimTime::ZERO,
        sim.now(),
    );
    println!(
        "  hops served: candidate {} (mean {:.1} ms), baseline {} (mean {:.1} ms)",
        candidate_rt.count, candidate_rt.mean, baseline_rt.count, baseline_rt.mean
    );
    match status {
        StrategyStatus::Completed => println!("  candidate promoted to all users\n"),
        StrategyStatus::RolledBack => println!("  users safely back on the stable version\n"),
        StrategyStatus::Running => println!("  still running at the horizon\n"),
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    run(false)?;
    run(true)?;
    Ok(())
}
