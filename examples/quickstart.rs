//! Quickstart: one continuous experiment end to end.
//!
//! Plan → execute → assess, on the case-study e-commerce application:
//!
//! 1. **Plan** (Fenrir): find a slot for a recommendation canary among
//!    other pending experiments.
//! 2. **Execute** (Bifrost): run a canary-then-rollout strategy, written
//!    in the DSL, against the simulated application.
//! 3. **Assess** (topology): diff the baseline and experimental
//!    interaction graphs and rank the identified changes.
//!
//! Run with `cargo run --example quickstart`.

use cex_core::experiment::ExperimentId;
use continuous_experimentation::bifrost::dsl;
use continuous_experimentation::bifrost::engine::Engine;
use continuous_experimentation::core::simtime::SimDuration;
use continuous_experimentation::core::users::Population;
use continuous_experimentation::fenrir::ga::GeneticAlgorithm;
use continuous_experimentation::fenrir::generator::{ProblemGenerator, SampleSizeTier};
use continuous_experimentation::fenrir::runner::{Budget, Scheduler};
use continuous_experimentation::microsim::sim::Simulation;
use continuous_experimentation::microsim::topologies;
use continuous_experimentation::microsim::workload::{EntryPoint, Workload};
use continuous_experimentation::topology::build::{build_graph, BuildOptions};
use continuous_experimentation::topology::changes::classify;
use continuous_experimentation::topology::diff::TopologicalDiff;
use continuous_experimentation::topology::heuristics::{self, AnalysisContext};
use continuous_experimentation::topology::rank::rank;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. Plan: schedule 8 pending experiments; ours is experiment 0.
    // ------------------------------------------------------------------
    println!("1/3 planning (Fenrir)…");
    let problem = ProblemGenerator::new(8, SampleSizeTier::Low).generate(2026);
    let schedule = GeneticAlgorithm::default().schedule(&problem, Budget::evaluations(4_000), 1);
    let plan = schedule.best.plan(ExperimentId(0));
    println!(
        "   schedule fitness {:.2} (valid: {}); our experiment runs {plan}",
        schedule.best_report.raw,
        schedule.best_report.is_valid(),
    );

    // ------------------------------------------------------------------
    // 2. Execute: canary the new recommendation version, then roll out.
    // ------------------------------------------------------------------
    println!("2/3 executing (Bifrost)…");
    let mut sim = Simulation::new(topologies::case_study_app(), 7);
    sim.set_trace_sampling(1.0);
    sim.deploy(topologies::recommendation_candidate())?;
    let frontend = sim.app().service_id("frontend")?;
    let workload = Workload {
        population: Population::single("all", 25_000),
        rate_rps: 40.0,
        entries: vec![
            EntryPoint { service: frontend, endpoint: "home".into(), weight: 3.0 },
            EntryPoint { service: frontend, endpoint: "product".into(), weight: 2.0 },
        ],
        profile: microsim::workload::RateProfile::Constant,
    };

    // Collect a baseline graph before the experiment touches routing.
    sim.run_with(SimDuration::from_mins(2), &workload);
    let baseline_traces = sim.drain_traces();

    let strategy = dsl::parse(
        r#"strategy "recommendation-canary" {
            service "recommendation"
            baseline "1.0.0"
            candidate "1.1.0"
            phase "canary" canary 10% for 4m {
              check error_rate < 0.05 over 1m every 30s min_samples 10
              on success goto "rollout"
              on failure rollback
            }
            phase "rollout" gradual_rollout from 25% to 100% step 25% every 1m for 8m {
              check error_rate < 0.05 over 1m every 30s min_samples 10
              on success complete
              on failure rollback
            }
        }"#,
    )?;
    let report =
        Engine::default().execute(&mut sim, &[strategy], &workload, SimDuration::from_mins(20))?;
    println!(
        "   strategy '{}' finished: {:?} ({} checks evaluated)",
        report.statuses[0].0, report.statuses[0].1, report.check_evaluations
    );

    // ------------------------------------------------------------------
    // 3. Assess: what changed, topologically, and what matters most?
    // ------------------------------------------------------------------
    println!("3/3 assessing (topology)…");
    let experimental_traces = sim.drain_traces();
    let book = sim.span_book();
    let baseline = build_graph(&baseline_traces, &book, BuildOptions::default());
    let experimental = build_graph(&experimental_traces, &book, BuildOptions::default());
    let diff = TopologicalDiff::compute(&baseline, &experimental);
    let changes = classify(&diff);
    let ctx = AnalysisContext { baseline: &baseline, experimental: &experimental, diff: &diff };
    let heuristic = heuristics::hybrid_default();
    let ranking = rank(heuristic.as_ref(), &ctx, &changes);
    println!("   {} topological changes; top ranked by {}:", changes.len(), heuristic.name());
    for (pos, idx) in ranking.top(5).iter().enumerate() {
        println!("   {}. {}", pos + 1, changes[*idx]);
    }
    Ok(())
}
