//! Facade crate bundling the continuous-experimentation framework
//! (Schermann, Middleware 2017): planning (`fenrir`), execution
//! (`bifrost`) and analysis (`topology`) models over a shared domain
//! model (`cex_core`) and microservice simulator (`microsim`), plus the
//! empirical-study pipeline (`study`).

pub use bifrost;
pub use cex_core as core;
pub use fenrir;
pub use microsim;
pub use study;
pub use topology;
