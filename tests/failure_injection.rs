//! Integration: failure injection against running experiments.
//!
//! The execution model's core safety promise is the fallback state: "in
//! case of spotted irregularities" users are automatically reassigned to
//! the stable version. These tests inject faults *mid-experiment* and
//! verify the engine's reaction end to end.

use bifrost::dsl;
use bifrost::engine::{Engine, StrategyStatus};
use bifrost::machine::State;
use cex_core::simtime::{SimDuration, SimTime};
use microsim::app::{Application, EndpointDef, VersionSpec};
use microsim::faults::{Fault, FaultKind};
use microsim::latency::LatencyModel;
use microsim::sim::Simulation;
use microsim::workload::Workload;

fn app() -> Application {
    let mut b = Application::builder();
    b.version(
        VersionSpec::new("svc", "1.0.0")
            .capacity(10_000.0)
            .endpoint(EndpointDef::new("api", LatencyModel::Constant { ms: 20.0 })),
    );
    b.version(
        VersionSpec::new("svc", "2.0.0")
            .capacity(10_000.0)
            .endpoint(EndpointDef::new("api", LatencyModel::Constant { ms: 18.0 })),
    );
    b.build().unwrap()
}

fn rollout_strategy() -> bifrost::Strategy {
    dsl::parse(
        r#"strategy "rollout" {
            service "svc" baseline "1.0.0" candidate "2.0.0"
            phase "rollout" gradual_rollout from 10% to 100% step 10% every 1m for 15m {
              check error_rate < 0.05 over 1m every 30s min_samples 10
              on success complete
              on failure rollback
            }
        }"#,
    )
    .unwrap()
}

#[test]
fn error_burst_mid_rollout_triggers_rollback() {
    let app = app();
    let wl = Workload::simple(app.service_id("svc").unwrap(), "api", 30.0);
    let mut sim = Simulation::new(app, 1);
    let candidate = sim.app().version_id("svc", "2.0.0").unwrap();
    // The candidate starts failing five minutes into the rollout.
    sim.inject_fault(Fault {
        version: candidate,
        kind: FaultKind::ErrorBurst { extra_error_rate: 0.6 },
        from: SimTime::from_mins(5),
        until: SimTime::from_mins(60),
    });
    let report = Engine::default()
        .execute(&mut sim, &[rollout_strategy()], &wl, SimDuration::from_mins(30))
        .unwrap();
    assert_eq!(report.statuses[0].1, StrategyStatus::RolledBack);
    // The rollback happened *after* the fault struck, not at the start.
    let rollback = report
        .transitions
        .iter()
        .find(|t| t.to == State::RolledBack)
        .expect("rollback transition recorded");
    assert!(rollback.time >= SimTime::from_mins(5));
    // And the application is healthy again afterwards.
    let after = sim.run(SimDuration::from_mins(2), 30.0);
    assert_eq!(after.failures, 0);
    assert!((after.response_time.mean - 20.0).abs() < 1.0, "baseline serves everyone");
}

#[test]
fn fault_outside_the_window_does_not_disturb() {
    let app = app();
    let wl = Workload::simple(app.service_id("svc").unwrap(), "api", 30.0);
    let mut sim = Simulation::new(app, 2);
    let candidate = sim.app().version_id("svc", "2.0.0").unwrap();
    // Fault scheduled long after the rollout will be done.
    sim.inject_fault(Fault {
        version: candidate,
        kind: FaultKind::Outage,
        from: SimTime::from_hours(5),
        until: SimTime::from_hours(6),
    });
    let report = Engine::default()
        .execute(&mut sim, &[rollout_strategy()], &wl, SimDuration::from_mins(30))
        .unwrap();
    assert_eq!(report.statuses[0].1, StrategyStatus::Completed);
}

#[test]
fn latency_spike_fails_relative_checks() {
    let app = app();
    let wl = Workload::simple(app.service_id("svc").unwrap(), "api", 30.0);
    let mut sim = Simulation::new(app, 3);
    let candidate = sim.app().version_id("svc", "2.0.0").unwrap();
    sim.inject_fault(Fault {
        version: candidate,
        kind: FaultKind::LatencySpike { multiplier: 4.0 },
        from: SimTime::from_mins(3),
        until: SimTime::from_mins(60),
    });
    let strategy = dsl::parse(
        r#"strategy "relative" {
            service "svc" baseline "1.0.0" candidate "2.0.0"
            phase "canary" canary 30% for 10m {
              check response_time vs_baseline < 1.5 over 1m every 30s min_samples 10
              on success complete
              on failure rollback
            }
        }"#,
    )
    .unwrap();
    let report =
        Engine::default().execute(&mut sim, &[strategy], &wl, SimDuration::from_mins(30)).unwrap();
    assert_eq!(report.statuses[0].1, StrategyStatus::RolledBack);
}

#[test]
fn fault_on_baseline_rolls_the_candidate_forward_legitimately() {
    // A fault on the *baseline* must not abort the candidate: absolute
    // candidate checks keep passing and the rollout completes, which is
    // the desired behaviour (the candidate is the way out of the broken
    // baseline).
    let app = app();
    let wl = Workload::simple(app.service_id("svc").unwrap(), "api", 30.0);
    let mut sim = Simulation::new(app, 4);
    let baseline = sim.app().version_id("svc", "1.0.0").unwrap();
    sim.inject_fault(Fault {
        version: baseline,
        kind: FaultKind::LatencySpike { multiplier: 3.0 },
        from: SimTime::from_mins(2),
        until: SimTime::from_hours(2),
    });
    let report = Engine::default()
        .execute(&mut sim, &[rollout_strategy()], &wl, SimDuration::from_mins(30))
        .unwrap();
    assert_eq!(report.statuses[0].1, StrategyStatus::Completed);
}
