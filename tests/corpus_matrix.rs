//! The corpus-wide robustness matrix: every (topology family × workload
//! shape × fault scenario × strategy) cell must satisfy three properties:
//!
//! 1. **Localization** — comparing a healthy trace window against the
//!    faulted one, the corpus localizer ranks an edge into the faulted
//!    version (or faulted zone) first (`microsim::corpus::localize`).
//! 2. **Containment** — with the standard resilience policy guarding
//!    every edge, the app-level error rate over the fault window stays
//!    under the chaos-recovery bound and the strategy completes.
//! 3. **Determinism** — the execution journal is byte-identical when the
//!    simulation core runs with 1 vs 2 workers.
//!
//! The sweep is split into one test per topology family so the four
//! quarters of the matrix run in parallel under `cargo test`.

use bifrost::dsl;
use bifrost::engine::{Engine, EngineConfig, StrategyStatus};
use cex_core::metrics::MetricKind;
use cex_core::simtime::{SimDuration, SimTime};
use microsim::corpus::{
    self, BlameAccumulator, FaultScenario, Scenario, TopologyFamily, WorkloadKind, FAULTS,
    WORKLOADS,
};
use microsim::resilience::{BreakerPolicy, CallPolicy};
use microsim::sim::APP_SCOPE;
use microsim::Simulation;

/// App-level error-rate ceiling over the fault window — the containment
/// bound every chaos-recovery cell must respect.
const CONTAINMENT_BOUND: f64 = 0.08;

/// Strategy kinds swept per cell (the DSL phase declaration).
const STRATEGIES: [(&str, &str); 3] = [
    ("canary", "canary 25%"),
    ("ab_test", "ab_test 50%"),
    ("gradual", "gradual_rollout from 20% to 80% step 30% every 40s"),
];

/// The fault window inside each strategy phase: `[20s, 70s)`.
const FAULT_FROM: SimTime = SimTime::from_secs(20);
const FAULT_UNTIL: SimTime = SimTime::from_secs(70);

fn matrix_policy() -> CallPolicy {
    CallPolicy {
        max_retries: 1,
        backoff_base: SimDuration::from_millis(20),
        jitter: 0.5,
        breaker: Some(BreakerPolicy {
            error_threshold: 0.5,
            min_calls: 10,
            window: 40,
            cooldown: SimDuration::from_secs(5),
            half_open_probes: 3,
        }),
        fallback: true,
        fallback_latency: SimDuration::from_millis(1),
        ..CallPolicy::default()
    }
}

/// The DSL inject clause realising one corpus fault scenario.
fn inject_clause(scenario: &Scenario, fault: FaultScenario) -> String {
    match fault {
        FaultScenario::CandidateOutage => "inject outage on candidate after 20s for 50s".into(),
        FaultScenario::CandidateErrorBurst => {
            "inject error_burst 0.85 on candidate after 20s for 50s".into()
        }
        FaultScenario::CandidateLatencySpike => {
            "inject latency_spike 6 on candidate after 20s for 50s".into()
        }
        FaultScenario::ZoneOutage => {
            format!("inject zone_outage \"{}\" after 20s for 50s", scenario.fault_zone)
        }
        FaultScenario::LatencyStorm => {
            format!("inject latency_storm 6 on zone \"{}\" after 20s for 50s", scenario.fault_zone)
        }
    }
}

fn strategy_src(scenario: &Scenario, phase_decl: &str, fault: FaultScenario) -> String {
    let service = scenario.app.service_name(scenario.experiment_service);
    format!(
        r#"strategy "cell" {{
            service "{service}" baseline "1.0.0" candidate "2.0.0"
            phase "run" {phase_decl} for 120s {{
              {inject}
              check error_rate app < {CONTAINMENT_BOUND} over 40s every 20s min_samples 8
              on success complete
              on failure rollback
            }}
        }}"#,
        inject = inject_clause(scenario, fault),
    )
}

/// One engine execution of a cell: returns the terminal status, the
/// serialized journal and the app error rate over the fault window.
fn run_cell(
    scenario: &Scenario,
    kind: WorkloadKind,
    src: &str,
    workers: usize,
) -> (StrategyStatus, String, f64) {
    let wl = corpus::workload_for(scenario, kind, 8.0);
    let mut sim = Simulation::new(scenario.app.clone(), 4242);
    sim.set_call_policy(matrix_policy());
    let strategy = dsl::parse(src).expect("cell strategy parses");
    let engine = Engine::new(EngineConfig { parallel_threshold: 1, workers, ..Default::default() });
    let (report, journal) = engine
        .execute_journaled(&mut sim, &[strategy], &wl, SimDuration::from_secs(180))
        .expect("cell executes");
    let summary =
        sim.store().summary_between(APP_SCOPE, MetricKind::ErrorRate, FAULT_FROM, FAULT_UNTIL);
    (report.statuses[0].1.clone(), journal.to_jsonl(), summary.mean)
}

/// Property 1: the localizer pins the fault. Healthy window, then the
/// fault scenario's windows, then a faulted window; the top-ranked edge
/// must terminate at a faulted version.
fn assert_localizes(scenario: &Scenario, kind: WorkloadKind, fault: FaultScenario, label: &str) {
    let mut sim = Simulation::new(scenario.app.clone(), 777);
    sim.set_trace_sampling(1.0);
    scenario.canary_split(&mut sim, 0.3).expect("canary split");
    let wl = corpus::workload_for(scenario, kind, 12.0);
    let window = SimDuration::from_secs(40);

    sim.run_with(window, &wl);
    let mut healthy = BlameAccumulator::new();
    for trace in sim.drain_traces() {
        healthy.observe_trace(&trace);
    }

    for fault_window in corpus::faults_for(scenario, fault, sim.now(), sim.now() + window) {
        sim.inject_fault(fault_window);
    }
    sim.run_with(window, &wl);
    let mut faulted = BlameAccumulator::new();
    for trace in sim.drain_traces() {
        faulted.observe_trace(&trace);
    }

    let ranked = corpus::localize(&healthy, &faulted);
    let top = ranked.first().unwrap_or_else(|| panic!("{label}: no edges ranked"));
    assert!(top.1 > 0.0, "{label}: top-ranked edge shows no degradation");
    let victims = corpus::fault_victims(scenario, fault);
    assert!(
        victims.contains(&top.0.callee),
        "{label}: localizer blamed {} (score {:.1}), expected one of {:?}",
        scenario.app.version_label(top.0.callee),
        top.1,
        victims.iter().map(|v| scenario.app.version_label(*v)).collect::<Vec<_>>(),
    );
}

/// Sweeps one family's quarter of the matrix: 4 workloads × 5 faults ×
/// 3 strategies = 60 cells (localization is per workload × fault — the
/// mini-sim is strategy-independent — containment and journal identity
/// are per cell).
fn sweep_family(family: TopologyFamily) {
    let scenario = corpus::generate(family, 41);
    let mut cells = 0usize;
    for kind in WORKLOADS {
        for fault in FAULTS {
            let label = format!("{}/{}/{}", family.name(), kind.name(), fault.name());
            assert_localizes(&scenario, kind, fault, &label);
            for (strategy_name, phase_decl) in STRATEGIES {
                let label = format!("{label}/{strategy_name}");
                let src = strategy_src(&scenario, phase_decl, fault);
                let (status, journal_1, fault_err) = run_cell(&scenario, kind, &src, 1);
                assert_eq!(
                    status,
                    StrategyStatus::Completed,
                    "{label}: resilience must carry the experiment through the fault",
                );
                assert!(
                    fault_err < CONTAINMENT_BOUND,
                    "{label}: app error rate {fault_err:.4} over the fault window breaches \
                     the containment bound {CONTAINMENT_BOUND}",
                );
                let (_, journal_2, _) = run_cell(&scenario, kind, &src, 2);
                assert_eq!(
                    journal_1, journal_2,
                    "{label}: journal must be byte-identical for 1 vs 2 sim workers",
                );
                cells += 1;
            }
        }
    }
    assert_eq!(cells, WORKLOADS.len() * FAULTS.len() * STRATEGIES.len());
}

#[test]
fn deep_chain_quarter_of_the_matrix_holds() {
    sweep_family(TopologyFamily::DeepChain);
}

#[test]
fn wide_fanout_quarter_of_the_matrix_holds() {
    sweep_family(TopologyFamily::WideFanout);
}

#[test]
fn hub_and_spoke_quarter_of_the_matrix_holds() {
    sweep_family(TopologyFamily::HubAndSpoke);
}

#[test]
fn cell_partition_quarter_of_the_matrix_holds() {
    sweep_family(TopologyFamily::CellPartition);
}
