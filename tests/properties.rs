//! Property-based tests of cross-crate invariants.
//!
//! The container builds fully offline, so instead of the `proptest` crate
//! these properties run on a hand-rolled harness: every case is generated
//! from a [`SplitMix64`] stream, so failures reproduce bit-for-bit from the
//! case index printed in the assertion message.

use bifrost::dsl;
use bifrost::machine::{PhaseOutcome, State, StateMachine};
use bifrost::model::{Action, ChaosSpec, Check, Comparator, Phase, PhaseKind, Strategy};
use cex_core::experiment::ExperimentId;
use cex_core::metrics::MetricKind;
use cex_core::rng::SplitMix64;
use cex_core::simtime::SimDuration;
use fenrir::constraints;
use fenrir::encoding::{self, CrossoverKind};
use fenrir::fitness::{self, Weights};
use fenrir::generator::{ProblemGenerator, SampleSizeTier};

/// Runs `body` for `cases` deterministic cases, handing each its own rng.
fn for_cases(cases: u64, master_seed: u64, mut body: impl FnMut(u64, &mut SplitMix64)) {
    for case in 0..cases {
        let mut rng = SplitMix64::new(cex_core::rng::sub_seed(master_seed, case));
        body(case, &mut rng);
    }
}

// ---------------------------------------------------------------------------
// Fenrir invariants
// ---------------------------------------------------------------------------

/// Whatever the GA operators do, raw fitness stays in [0, 1] and the
/// score ordering puts every valid schedule above every invalid one.
#[test]
fn fitness_bounds_hold_under_operators() {
    for_cases(24, 0xF00D, |case, rng| {
        let n = 2 + rng.next_index(6);
        let problem = ProblemGenerator::new(n, SampleSizeTier::Low).generate(rng.next_u64());
        let mut a = encoding::random_schedule(&problem, rng);
        let b = encoding::random_schedule(&problem, rng);
        for _ in 0..5 {
            encoding::mutate(&problem, &mut a, rng);
        }
        let (c1, c2) = encoding::crossover(&a, &b, CrossoverKind::OnePoint, rng);
        for schedule in [&a, &b, &c1, &c2] {
            let report = fitness::evaluate(&problem, schedule, &Weights::default());
            assert!((0.0..=1.0).contains(&report.raw), "case {case}: raw {}", report.raw);
            if report.violations == 0 {
                assert!(report.score() >= 1.0, "case {case}");
            } else {
                assert!(report.score() < 1.0, "case {case}");
            }
        }
    });
}

/// Repair never increases the number of violations.
#[test]
fn repair_is_monotone() {
    for_cases(24, 0xBEEF, |case, rng| {
        let n = 2 + rng.next_index(6);
        let problem = ProblemGenerator::new(n, SampleSizeTier::Medium).generate(rng.next_u64());
        let mut schedule = encoding::random_schedule(&problem, rng);
        let before = constraints::check(&problem, &schedule).len();
        encoding::repair(&problem, &mut schedule, rng);
        let after = constraints::check(&problem, &schedule).len();
        assert!(after <= before, "case {case}: repair worsened {before} -> {after}");
    });
}

/// Crossover children only contain genes from their parents.
#[test]
fn crossover_preserves_genes() {
    for_cases(24, 0xC0FE, |case, rng| {
        let n = 2 + rng.next_index(8);
        let problem = ProblemGenerator::new(n, SampleSizeTier::Low).generate(rng.next_u64());
        let a = encoding::random_schedule(&problem, rng);
        let b = encoding::random_schedule(&problem, rng);
        for kind in [CrossoverKind::OnePoint, CrossoverKind::Uniform] {
            let (c1, c2) = encoding::crossover(&a, &b, kind, rng);
            for i in 0..n {
                let id = ExperimentId(i);
                assert!(
                    c1.plan(id) == a.plan(id) || c1.plan(id) == b.plan(id),
                    "case {case} kind {kind:?}"
                );
                assert!(
                    c2.plan(id) == a.plan(id) || c2.plan(id) == b.plan(id),
                    "case {case} kind {kind:?}"
                );
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Bifrost invariants
// ---------------------------------------------------------------------------

fn random_action(phases: usize, rng: &mut SplitMix64) -> Action {
    match rng.next_index(4) {
        0 => Action::Complete,
        1 => Action::Rollback,
        2 => Action::Retry,
        _ => Action::Goto(format!("p{}", rng.next_index(phases))),
    }
}

fn random_chaos(rng: &mut SplitMix64) -> Option<ChaosSpec> {
    use bifrost::model::{ChaosKind, ChaosTarget};
    if rng.next_index(2) == 0 {
        return None;
    }
    // Lexer-friendly magnitudes (plain decimal, no exponent) so the
    // pretty-printed form re-parses exactly.
    let kind = match rng.next_index(3) {
        0 => ChaosKind::Outage,
        1 => ChaosKind::LatencySpike { multiplier: 1.0 + rng.next_index(12) as f64 * 0.25 },
        _ => ChaosKind::ErrorBurst { extra_error_rate: rng.next_index(16) as f64 / 16.0 },
    };
    let target =
        if rng.next_index(2) == 0 { ChaosTarget::Candidate } else { ChaosTarget::Baseline };
    Some(ChaosSpec {
        kind,
        target,
        start_after: SimDuration::from_millis(rng.next_index(30_000) as u64),
        duration: SimDuration::from_millis(1 + rng.next_index(30_000) as u64),
    })
}

fn random_strategy(rng: &mut SplitMix64) -> Strategy {
    let phases = 1 + rng.next_index(4);
    Strategy {
        name: "generated".into(),
        service: "svc".into(),
        baseline: "1.0.0".into(),
        candidate: "2.0.0".into(),
        variant_b: None,
        phases: (0..phases)
            .map(|i| Phase {
                name: format!("p{i}"),
                kind: PhaseKind::Canary { traffic_percent: 10.0 + i as f64 },
                duration: SimDuration::from_mins(1 + i as u64),
                checks: vec![Check::candidate(MetricKind::ErrorRate, Comparator::Lt, 0.1)],
                chaos: random_chaos(rng),
                on_success: random_action(phases, rng),
                on_failure: random_action(phases, rng),
                on_inconclusive: random_action(phases, rng),
            })
            .collect(),
    }
}

/// Every structurally valid strategy round-trips through the DSL.
#[test]
fn dsl_roundtrip() {
    let mut checked = 0;
    for_cases(96, 0xD51, |case, rng| {
        let strategy = random_strategy(rng);
        if strategy.validate().is_err() {
            return;
        }
        checked += 1;
        let source = dsl::to_source(&strategy);
        let reparsed = dsl::parse(&source).expect("pretty-printed source parses");
        assert_eq!(strategy, reparsed, "case {case}");
    });
    assert!(checked >= 24, "only {checked} generated strategies were valid");
}

/// The compiled state machine is total: from every reachable phase, every
/// outcome leads to a valid state, and the start phase is reachable.
#[test]
fn state_machine_totality() {
    let mut checked = 0;
    for_cases(96, 0x57A7E, |case, rng| {
        let strategy = random_strategy(rng);
        if strategy.validate().is_err() {
            return;
        }
        checked += 1;
        let machine = StateMachine::compile(&strategy).expect("valid strategies compile");
        for i in 0..machine.phase_count() {
            for outcome in PhaseOutcome::all() {
                let next = machine.next(State::Phase(i), outcome);
                if let State::Phase(j) = next {
                    assert!(j < machine.phase_count(), "case {case}");
                }
            }
        }
        let reachable = machine.reachable();
        assert!(reachable.contains(&State::Phase(0)), "case {case}");
    });
    assert!(checked >= 24, "only {checked} generated strategies were valid");
}

// ---------------------------------------------------------------------------
// Topology invariants
// ---------------------------------------------------------------------------

use topology::changes::classify;
use topology::diff::{Status, TopologicalDiff};
use topology::perf::{generate_pair, PerfParams};

/// Diff statuses partition the union and classification covers every
/// changed edge exactly once.
#[test]
fn diff_partition_and_classification_cover() {
    for_cases(16, 0xD1FF, |case, rng| {
        let change_fraction = 0.6 * rng.next_f64();
        let seed = rng.next_below(1_000);
        let params = PerfParams { endpoints: 120, change_fraction, ..Default::default() };
        let (baseline, experimental) = generate_pair(&params, seed);
        let diff = TopologicalDiff::compute(&baseline, &experimental);

        let common = diff.nodes_with(Status::Common).count();
        let removed = diff.nodes_with(Status::Removed).count();
        let added = diff.nodes_with(Status::Added).count();
        assert_eq!(common + removed, baseline.node_count(), "case {case}");
        assert_eq!(common + added, experimental.node_count(), "case {case}");

        // Every changed edge maps to exactly one change: composed changes
        // consume one added + one removed edge, fundamental ones a single
        // edge.
        let changes = classify(&diff);
        let added_edges = diff.edges_with(Status::Added).count();
        let removed_edges = diff.edges_with(Status::Removed).count();
        let composed = changes.iter().filter(|c| !c.kind.is_fundamental()).count();
        let fundamental = changes.iter().filter(|c| c.kind.is_fundamental()).count();
        assert_eq!(2 * composed + fundamental, added_edges + removed_edges, "case {case}");
    });
}

/// nDCG of any heuristic ranking stays within [0, 1].
#[test]
fn ndcg_bounds() {
    use topology::heuristics::{self, AnalysisContext};
    use topology::rank::{ndcg_at, rank};
    for_cases(16, 0xDC6, |case, rng| {
        let seed = rng.next_below(1_000);
        let params = PerfParams { endpoints: 120, change_fraction: 0.3, ..Default::default() };
        let (baseline, experimental) = generate_pair(&params, seed);
        let diff = TopologicalDiff::compute(&baseline, &experimental);
        let changes = classify(&diff);
        if changes.is_empty() {
            return;
        }
        let relevance: Vec<f64> = changes.iter().enumerate().map(|(i, _)| (i % 4) as f64).collect();
        let ctx = AnalysisContext { baseline: &baseline, experimental: &experimental, diff: &diff };
        for heuristic in heuristics::all_variants() {
            let ranking = rank(heuristic.as_ref(), &ctx, &changes);
            let ndcg = ndcg_at(&ranking, &relevance, 5);
            assert!(
                (0.0..=1.0 + 1e-9).contains(&ndcg),
                "case {case}: {} -> {ndcg}",
                heuristic.name()
            );
        }
    });
}

// ---------------------------------------------------------------------------
// Microsim invariants
// ---------------------------------------------------------------------------

use microsim::app::{Application, EndpointDef, VersionSpec};
use microsim::latency::LatencyModel;
use microsim::routing::{Router, UserId};

fn split_app(versions: usize) -> Application {
    let mut b = Application::builder();
    for v in 0..versions {
        b.version(
            VersionSpec::new("svc", format!("v{v}"))
                .endpoint(EndpointDef::new("api", LatencyModel::default())),
        );
    }
    b.build().unwrap()
}

/// For any valid weighted split, the empirically observed version shares
/// converge to the configured weights (routing conserves traffic: nothing
/// is dropped or duplicated).
#[test]
fn routing_weights_are_conserved() {
    for_cases(24, 0x4071, |case, rng| {
        let k = 2 + rng.next_index(3);
        let raw: Vec<f64> = (0..k).map(|_| 0.05 + 0.95 * rng.next_f64()).collect();
        let total: f64 = raw.iter().sum();
        let weights: Vec<f64> = raw.iter().map(|w| w / total).collect();
        let app = split_app(weights.len());
        let svc = app.service_id("svc").unwrap();
        let splits: Vec<_> = weights
            .iter()
            .enumerate()
            .map(|(i, w)| (app.version_id("svc", &format!("v{i}")).unwrap(), *w))
            .collect();
        let mut router = Router::new();
        router.set_split(&app, svc, splits.clone()).unwrap();
        let n = 40_000u64;
        let mut counts = vec![0u64; weights.len()];
        for u in 0..n {
            let v = router.resolve(&app, svc, UserId(u));
            let idx = splits.iter().position(|(s, _)| *s == v).expect("resolved inside split");
            counts[idx] += 1;
        }
        assert_eq!(counts.iter().sum::<u64>(), n, "case {case}: every user routed exactly once");
        for (count, weight) in counts.iter().zip(&weights) {
            let share = *count as f64 / n as f64;
            assert!((share - weight).abs() < 0.02, "case {case}: share {share} vs weight {weight}");
        }
    });
}

/// Monitor window algebra: the summary over [a, c) equals the merge of
/// [a, b) and [b, c) in count and mean.
#[test]
fn monitor_windows_compose() {
    use cex_core::simtime::SimTime;
    use microsim::monitor::MetricStore;
    for_cases(24, 0x3014, |case, rng| {
        let len = 3 + rng.next_index(57);
        let values: Vec<f64> = (0..len).map(|_| 100.0 * rng.next_f64()).collect();
        let cut = (1 + rng.next_index(49)).min(values.len());
        let store = MetricStore::new();
        for (i, v) in values.iter().enumerate() {
            store.record_value("s", MetricKind::Throughput, SimTime::from_millis(i as u64), *v);
        }
        let t = |i: usize| SimTime::from_millis(i as u64);
        let whole = store.summary_between("s", MetricKind::Throughput, t(0), t(values.len()));
        let left = store.summary_between("s", MetricKind::Throughput, t(0), t(cut));
        let right = store.summary_between("s", MetricKind::Throughput, t(cut), t(values.len()));
        assert_eq!(whole.count, left.count + right.count, "case {case}");
        let merged_mean =
            (left.mean * left.count as f64 + right.mean * right.count as f64) / whole.count as f64;
        assert!((whole.mean - merged_mean).abs() < 1e-9, "case {case}");
    });
}

// ---------------------------------------------------------------------------
// Statistics invariants
// ---------------------------------------------------------------------------

/// The Student-t CDF is a CDF: monotone, symmetric, bounded.
#[test]
fn t_cdf_is_a_cdf() {
    use cex_core::stats::student_t_cdf;
    for_cases(48, 0x7CDF, |case, rng| {
        let df = 1.0 + 199.0 * rng.next_f64();
        let a = -6.0 + 12.0 * rng.next_f64();
        let b = -6.0 + 12.0 * rng.next_f64();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let cl = student_t_cdf(lo, df);
        let ch = student_t_cdf(hi, df);
        assert!((0.0..=1.0).contains(&cl), "case {case}");
        assert!((0.0..=1.0).contains(&ch), "case {case}");
        assert!(cl <= ch + 1e-12, "case {case}: monotone F({lo})={cl} F({hi})={ch}");
        let sym = student_t_cdf(lo, df) + student_t_cdf(-lo, df);
        assert!((sym - 1.0).abs() < 1e-9, "case {case}: symmetry at {lo}: {sym}");
    });
}

/// Welch p-values are complementary and bounded for any sane summaries.
#[test]
fn welch_p_values_bounded() {
    use cex_core::metrics::Summary;
    use cex_core::stats::welch_test;
    for_cases(48, 0x3E1C, |case, rng| {
        let m1 = -100.0 + 200.0 * rng.next_f64();
        let m2 = -100.0 + 200.0 * rng.next_f64();
        let s1 = 0.01 + 49.99 * rng.next_f64();
        let s2 = 0.01 + 49.99 * rng.next_f64();
        let n1 = 2 + rng.next_below(4_998);
        let n2 = 2 + rng.next_below(4_998);
        let a = Summary { count: n1, mean: m1, std_dev: s1, min: m1 - s1, max: m1 + s1 };
        let b = Summary { count: n2, mean: m2, std_dev: s2, min: m2 - s2, max: m2 + s2 };
        let test = welch_test(&a, &b).expect("n >= 2 on both sides");
        assert!((0.0..=1.0).contains(&test.p_greater), "case {case}");
        assert!((0.0..=1.0).contains(&test.p_less), "case {case}");
        assert!((test.p_greater + test.p_less - 1.0).abs() < 1e-9, "case {case}");
        assert!(test.df >= 1.0, "case {case}");
        if m1 > m2 {
            assert!(test.t > 0.0, "case {case}");
        }
    });
}

// ---------------------------------------------------------------------------
// Greedy scheduling invariants
// ---------------------------------------------------------------------------

/// Greedy construction is valid on low-tier instances of any size.
#[test]
fn greedy_valid_on_low_tier() {
    use fenrir::greedy::greedy_schedule;
    for_cases(12, 0x62EE, |case, rng| {
        let n = 2 + rng.next_index(18);
        let seed = rng.next_below(500);
        let problem = ProblemGenerator::new(n, SampleSizeTier::Low).generate(seed);
        let schedule = greedy_schedule(&problem);
        let violations = constraints::check(&problem, &schedule);
        assert!(violations.is_empty(), "case {case}: {violations:?}");
    });
}
