//! Property-based tests of cross-crate invariants (proptest).

use bifrost::dsl;
use bifrost::machine::{PhaseOutcome, State, StateMachine};
use bifrost::model::{Action, Check, Comparator, Phase, PhaseKind, Strategy};
use cex_core::experiment::ExperimentId;
use cex_core::metrics::MetricKind;
use cex_core::rng::SplitMix64;
use cex_core::simtime::SimDuration;
use fenrir::constraints;
use fenrir::encoding::{self, CrossoverKind};
use fenrir::fitness::{self, Weights};
use fenrir::generator::{ProblemGenerator, SampleSizeTier};
use proptest::prelude::*;
// `bifrost::model::Strategy` shadows proptest's `Strategy` trait from the
// prelude glob; re-import the trait anonymously so its methods resolve.
use proptest::strategy::Strategy as _;

// ---------------------------------------------------------------------------
// Fenrir invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the GA operators do, raw fitness stays in [0, 1] and the
    /// score ordering puts every valid schedule above every invalid one.
    #[test]
    fn fitness_bounds_hold_under_operators(seed in 0u64..10_000, n in 2usize..8) {
        let problem = ProblemGenerator::new(n, SampleSizeTier::Low).generate(seed);
        let mut rng = SplitMix64::new(seed ^ 0xF00D);
        let mut a = encoding::random_schedule(&problem, &mut rng);
        let b = encoding::random_schedule(&problem, &mut rng);
        for _ in 0..5 {
            encoding::mutate(&problem, &mut a, &mut rng);
        }
        let (c1, c2) = encoding::crossover(&a, &b, CrossoverKind::OnePoint, &mut rng);
        for schedule in [&a, &b, &c1, &c2] {
            let report = fitness::evaluate(&problem, schedule, &Weights::default());
            prop_assert!((0.0..=1.0).contains(&report.raw));
            if report.violations == 0 {
                prop_assert!(report.score() >= 1.0);
            } else {
                prop_assert!(report.score() < 1.0);
            }
        }
    }

    /// Repair never increases the number of violations.
    #[test]
    fn repair_is_monotone(seed in 0u64..10_000, n in 2usize..8) {
        let problem = ProblemGenerator::new(n, SampleSizeTier::Medium).generate(seed);
        let mut rng = SplitMix64::new(seed ^ 0xBEEF);
        let mut schedule = encoding::random_schedule(&problem, &mut rng);
        let before = constraints::check(&problem, &schedule).len();
        encoding::repair(&problem, &mut schedule, &mut rng);
        let after = constraints::check(&problem, &schedule).len();
        prop_assert!(after <= before, "repair worsened {before} -> {after}");
    }

    /// Crossover children only contain genes from their parents.
    #[test]
    fn crossover_preserves_genes(seed in 0u64..10_000, n in 2usize..10) {
        let problem = ProblemGenerator::new(n, SampleSizeTier::Low).generate(seed);
        let mut rng = SplitMix64::new(seed);
        let a = encoding::random_schedule(&problem, &mut rng);
        let b = encoding::random_schedule(&problem, &mut rng);
        for kind in [CrossoverKind::OnePoint, CrossoverKind::Uniform] {
            let (c1, c2) = encoding::crossover(&a, &b, kind, &mut rng);
            for i in 0..n {
                let id = ExperimentId(i);
                prop_assert!(c1.plan(id) == a.plan(id) || c1.plan(id) == b.plan(id));
                prop_assert!(c2.plan(id) == a.plan(id) || c2.plan(id) == b.plan(id));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Bifrost invariants
// ---------------------------------------------------------------------------

fn arb_action_boxed(phases: usize) -> proptest::strategy::BoxedStrategy<Action> {
    prop_oneof![
        Just(Action::Complete),
        Just(Action::Rollback),
        Just(Action::Retry),
        (0..phases).prop_map(|i| Action::Goto(format!("p{i}"))),
    ]
    .boxed()
}

fn arb_strategy() -> impl proptest::strategy::Strategy<Value = Strategy> {
    (1usize..5).prop_flat_map(|phases| {
        let actions = proptest::collection::vec(
            (arb_action_boxed(phases), arb_action_boxed(phases), arb_action_boxed(phases)),
            phases,
        );
        actions.prop_map(move |actions| Strategy {
            name: "generated".into(),
            service: "svc".into(),
            baseline: "1.0.0".into(),
            candidate: "2.0.0".into(),
            variant_b: None,
            phases: actions
                .into_iter()
                .enumerate()
                .map(|(i, (s, f, inc))| Phase {
                    name: format!("p{i}"),
                    kind: PhaseKind::Canary { traffic_percent: 10.0 + i as f64 },
                    duration: SimDuration::from_mins(1 + i as u64),
                    checks: vec![Check::candidate(
                        MetricKind::ErrorRate,
                        Comparator::Lt,
                        0.1,
                    )],
                    on_success: s,
                    on_failure: f,
                    on_inconclusive: inc,
                })
                .collect(),
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every structurally valid strategy round-trips through the DSL.
    #[test]
    fn dsl_roundtrip(strategy in arb_strategy()) {
        prop_assume!(strategy.validate().is_ok());
        let source = dsl::to_source(&strategy);
        let reparsed = dsl::parse(&source).expect("pretty-printed source parses");
        prop_assert_eq!(strategy, reparsed);
    }

    /// The compiled state machine is total: from every reachable phase,
    /// every outcome leads to a valid state, and terminal states are
    /// reachable only through actions that name them.
    #[test]
    fn state_machine_totality(strategy in arb_strategy()) {
        prop_assume!(strategy.validate().is_ok());
        let machine = StateMachine::compile(&strategy).expect("valid strategies compile");
        for i in 0..machine.phase_count() {
            for outcome in PhaseOutcome::all() {
                let next = machine.next(State::Phase(i), outcome);
                if let State::Phase(j) = next {
                    prop_assert!(j < machine.phase_count());
                }
            }
        }
        // Reachability analysis never panics and includes the start.
        let reachable = machine.reachable();
        prop_assert!(reachable.contains(&State::Phase(0)));
    }
}

// ---------------------------------------------------------------------------
// Topology invariants
// ---------------------------------------------------------------------------

use topology::changes::classify;
use topology::diff::{Status, TopologicalDiff};
use topology::perf::{generate_pair, PerfParams};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Diff statuses partition the union and classification covers every
    /// changed edge exactly once.
    #[test]
    fn diff_partition_and_classification_cover(
        seed in 0u64..1_000,
        change_fraction in 0.0f64..0.6,
    ) {
        let params = PerfParams { endpoints: 120, change_fraction, ..Default::default() };
        let (baseline, experimental) = generate_pair(&params, seed);
        let diff = TopologicalDiff::compute(&baseline, &experimental);

        // Node counts: common + removed = baseline nodes; common + added =
        // experimental nodes.
        let common = diff.nodes_with(Status::Common).count();
        let removed = diff.nodes_with(Status::Removed).count();
        let added = diff.nodes_with(Status::Added).count();
        prop_assert_eq!(common + removed, baseline.node_count());
        prop_assert_eq!(common + added, experimental.node_count());

        // Every changed edge maps to exactly one change: composed changes
        // consume one added + one removed edge, fundamental ones a single
        // edge.
        let changes = classify(&diff);
        let added_edges = diff.edges_with(Status::Added).count();
        let removed_edges = diff.edges_with(Status::Removed).count();
        let composed = changes.iter().filter(|c| !c.kind.is_fundamental()).count();
        let fundamental = changes.iter().filter(|c| c.kind.is_fundamental()).count();
        prop_assert_eq!(2 * composed + fundamental, added_edges + removed_edges);
    }

    /// nDCG of any heuristic ranking stays within [0, 1].
    #[test]
    fn ndcg_bounds(seed in 0u64..1_000) {
        use topology::heuristics::{self, AnalysisContext};
        use topology::rank::{ndcg_at, rank};
        let params = PerfParams { endpoints: 120, change_fraction: 0.3, ..Default::default() };
        let (baseline, experimental) = generate_pair(&params, seed);
        let diff = TopologicalDiff::compute(&baseline, &experimental);
        let changes = classify(&diff);
        prop_assume!(!changes.is_empty());
        let relevance: Vec<f64> =
            changes.iter().enumerate().map(|(i, _)| (i % 4) as f64).collect();
        let ctx = AnalysisContext { baseline: &baseline, experimental: &experimental, diff: &diff };
        for heuristic in heuristics::all_variants() {
            let ranking = rank(heuristic.as_ref(), &ctx, &changes);
            let ndcg = ndcg_at(&ranking, &relevance, 5);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&ndcg), "{} -> {ndcg}", heuristic.name());
        }
    }
}

// ---------------------------------------------------------------------------
// Microsim invariants
// ---------------------------------------------------------------------------

use microsim::app::{Application, EndpointDef, VersionSpec};
use microsim::latency::LatencyModel;
use microsim::routing::{Router, UserId};

fn split_app(versions: usize) -> Application {
    let mut b = Application::builder();
    for v in 0..versions {
        b.version(
            VersionSpec::new("svc", format!("v{v}"))
                .endpoint(EndpointDef::new("api", LatencyModel::default())),
        );
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any valid weighted split, the empirically observed version
    /// shares converge to the configured weights (routing conserves
    /// traffic: nothing is dropped or duplicated).
    #[test]
    fn routing_weights_are_conserved(raw in proptest::collection::vec(0.05f64..1.0, 2..5)) {
        let total: f64 = raw.iter().sum();
        let weights: Vec<f64> = raw.iter().map(|w| w / total).collect();
        let app = split_app(weights.len());
        let svc = app.service_id("svc").unwrap();
        let splits: Vec<_> = weights
            .iter()
            .enumerate()
            .map(|(i, w)| (app.version_id("svc", &format!("v{i}")).unwrap(), *w))
            .collect();
        let mut router = Router::new();
        router.set_split(&app, svc, splits.clone()).unwrap();
        let n = 40_000u64;
        let mut counts = vec![0u64; weights.len()];
        for u in 0..n {
            let v = router.resolve(&app, svc, UserId(u));
            let idx = splits.iter().position(|(s, _)| *s == v).expect("resolved inside split");
            counts[idx] += 1;
        }
        prop_assert_eq!(counts.iter().sum::<u64>(), n, "every user routed exactly once");
        for (count, weight) in counts.iter().zip(&weights) {
            let share = *count as f64 / n as f64;
            prop_assert!((share - weight).abs() < 0.02, "share {share} vs weight {weight}");
        }
    }

    /// Monitor window algebra: the summary over [a, c) equals the merge of
    /// [a, b) and [b, c) in count and mean.
    #[test]
    fn monitor_windows_compose(values in proptest::collection::vec(0.0f64..100.0, 3..60), cut in 1usize..50) {
        use cex_core::metrics::MetricKind;
        use cex_core::simtime::SimTime;
        use microsim::monitor::MetricStore;
        let store = MetricStore::new();
        for (i, v) in values.iter().enumerate() {
            store.record_value("s", MetricKind::Throughput, SimTime::from_millis(i as u64), *v);
        }
        let cut = cut.min(values.len());
        let t = |i: usize| SimTime::from_millis(i as u64);
        let whole = store.summary_between("s", MetricKind::Throughput, t(0), t(values.len()));
        let left = store.summary_between("s", MetricKind::Throughput, t(0), t(cut));
        let right = store.summary_between("s", MetricKind::Throughput, t(cut), t(values.len()));
        prop_assert_eq!(whole.count, left.count + right.count);
        let merged_mean = (left.mean * left.count as f64 + right.mean * right.count as f64)
            / whole.count as f64;
        prop_assert!((whole.mean - merged_mean).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Statistics invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The Student-t CDF is a CDF: monotone, symmetric, bounded.
    #[test]
    fn t_cdf_is_a_cdf(df in 1.0f64..200.0, a in -6.0f64..6.0, b in -6.0f64..6.0) {
        use cex_core::stats::student_t_cdf;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let cl = student_t_cdf(lo, df);
        let ch = student_t_cdf(hi, df);
        prop_assert!((0.0..=1.0).contains(&cl));
        prop_assert!((0.0..=1.0).contains(&ch));
        prop_assert!(cl <= ch + 1e-12, "monotone: F({lo})={cl} F({hi})={ch}");
        let sym = student_t_cdf(lo, df) + student_t_cdf(-lo, df);
        prop_assert!((sym - 1.0).abs() < 1e-9, "symmetry at {lo}: {sym}");
    }

    /// Welch p-values are complementary and bounded for any sane summaries.
    #[test]
    fn welch_p_values_bounded(
        m1 in -100.0f64..100.0, m2 in -100.0f64..100.0,
        s1 in 0.01f64..50.0, s2 in 0.01f64..50.0,
        n1 in 2u64..5_000, n2 in 2u64..5_000,
    ) {
        use cex_core::metrics::Summary;
        use cex_core::stats::welch_test;
        let a = Summary { count: n1, mean: m1, std_dev: s1, min: m1 - s1, max: m1 + s1 };
        let b = Summary { count: n2, mean: m2, std_dev: s2, min: m2 - s2, max: m2 + s2 };
        let test = welch_test(&a, &b).expect("n >= 2 on both sides");
        prop_assert!((0.0..=1.0).contains(&test.p_greater));
        prop_assert!((0.0..=1.0).contains(&test.p_less));
        prop_assert!((test.p_greater + test.p_less - 1.0).abs() < 1e-9);
        prop_assert!(test.df >= 1.0);
        if m1 > m2 {
            prop_assert!(test.t > 0.0);
        }
    }
}

// ---------------------------------------------------------------------------
// Greedy scheduling invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Greedy construction is valid on low-tier instances of any size.
    #[test]
    fn greedy_valid_on_low_tier(n in 2usize..20, seed in 0u64..500) {
        use fenrir::greedy::greedy_schedule;
        let problem = ProblemGenerator::new(n, SampleSizeTier::Low).generate(seed);
        let schedule = greedy_schedule(&problem);
        let violations = constraints::check(&problem, &schedule);
        prop_assert!(violations.is_empty(), "{violations:?}");
    }
}
