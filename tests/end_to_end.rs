//! Integration: the full experiment life cycle across crates —
//! plan (fenrir) → execute (bifrost over microsim) → assess (topology).

use bifrost::dsl;
use bifrost::engine::{Engine, StrategyStatus};
use cex_core::experiment::ExperimentId;
use cex_core::simtime::SimDuration;
use cex_core::users::Population;
use fenrir::ga::GeneticAlgorithm;
use fenrir::generator::{ProblemGenerator, SampleSizeTier};
use fenrir::runner::{Budget, Scheduler};
use microsim::sim::Simulation;
use microsim::topologies;
use microsim::workload::{EntryPoint, Workload};
use topology::build::{build_graph, BuildOptions};
use topology::changes::classify;
use topology::diff::TopologicalDiff;
use topology::heuristics::{self, AnalysisContext};
use topology::rank::rank;

fn workload(sim: &Simulation) -> Workload {
    let frontend = sim.app().service_id("frontend").unwrap();
    Workload {
        population: Population::single("all", 20_000),
        rate_rps: 30.0,
        entries: vec![
            EntryPoint { service: frontend, endpoint: "home".into(), weight: 3.0 },
            EntryPoint { service: frontend, endpoint: "product".into(), weight: 2.0 },
        ],
        profile: microsim::workload::RateProfile::Constant,
    }
}

#[test]
fn plan_execute_assess_pipeline() {
    // --- Plan -----------------------------------------------------------
    let problem = ProblemGenerator::new(6, SampleSizeTier::Low).generate(1);
    let planned = GeneticAlgorithm::default().schedule(&problem, Budget::evaluations(3_000), 1);
    assert!(planned.best_report.is_valid(), "planning must yield a valid schedule");
    for i in 0..problem.len() {
        let id = ExperimentId(i);
        assert!(
            planned.best.samples_collected(&problem, id)
                >= problem.experiment(id).required_sample_size
        );
    }

    // --- Execute ---------------------------------------------------------
    let mut sim = Simulation::new(topologies::case_study_app(), 5);
    sim.set_trace_sampling(1.0);
    sim.deploy(topologies::recommendation_candidate()).unwrap();
    let wl = workload(&sim);
    sim.run_with(SimDuration::from_mins(1), &wl);
    let baseline_traces = sim.drain_traces();
    assert!(!baseline_traces.is_empty());

    let strategy = dsl::parse(
        r#"strategy "canary" {
            service "recommendation" baseline "1.0.0" candidate "1.1.0"
            phase "canary" canary 50% for 3m {
              check error_rate < 0.1 over 1m every 30s min_samples 5
              on success complete
              on failure rollback
            }
        }"#,
    )
    .unwrap();
    let report =
        Engine::default().execute(&mut sim, &[strategy], &wl, SimDuration::from_mins(15)).unwrap();
    assert_eq!(report.statuses[0].1, StrategyStatus::Completed);

    // --- Assess ----------------------------------------------------------
    let experimental_traces = sim.drain_traces();
    let book = sim.span_book();
    let baseline = build_graph(&baseline_traces, &book, BuildOptions::default());
    let experimental = build_graph(&experimental_traces, &book, BuildOptions::default());
    let diff = TopologicalDiff::compute(&baseline, &experimental);
    assert!(!diff.is_unchanged(), "the canary must be visible in the topology");
    let changes = classify(&diff);
    assert!(!changes.is_empty());
    assert!(
        changes
            .iter()
            .any(|c| c.callee.service == "recommendation" || c.caller.service == "recommendation"),
        "the recommendation change must be identified: {changes:?}"
    );
    let ctx = AnalysisContext { baseline: &baseline, experimental: &experimental, diff: &diff };
    for heuristic in heuristics::all_variants() {
        let ranking = rank(heuristic.as_ref(), &ctx, &changes);
        assert_eq!(ranking.order.len(), changes.len());
    }
}

#[test]
fn broken_candidate_rolls_back_and_topology_flags_it() {
    let mut sim = Simulation::new(topologies::case_study_app(), 9);
    sim.deploy(topologies::recommendation_broken()).unwrap();
    let wl = workload(&sim);
    let strategy = dsl::parse(
        r#"strategy "bad-canary" {
            service "recommendation" baseline "1.0.0" candidate "1.1.1"
            phase "canary" canary 30% for 5m {
              check error_rate < 0.03 over 1m every 30s min_samples 10
              on success complete
              on failure rollback
            }
        }"#,
    )
    .unwrap();
    let report =
        Engine::default().execute(&mut sim, &[strategy], &wl, SimDuration::from_mins(20)).unwrap();
    assert_eq!(report.statuses[0].1, StrategyStatus::RolledBack);

    // After rollback nobody is routed to the broken version any more.
    let before =
        sim.store().count("recommendation@1.1.1", cex_core::metrics::MetricKind::ResponseTime);
    sim.run_with(SimDuration::from_mins(1), &wl);
    let after =
        sim.store().count("recommendation@1.1.1", cex_core::metrics::MetricKind::ResponseTime);
    assert_eq!(before, after, "no new traffic on the rolled-back version");
}

#[test]
fn scheduled_experiments_feed_the_engine() {
    // The planning model's output (a plan with a traffic share) matches
    // the execution model's input (a canary percentage).
    let problem = ProblemGenerator::new(4, SampleSizeTier::Low).generate(3);
    let planned = GeneticAlgorithm::default().schedule(&problem, Budget::evaluations(2_000), 2);
    let plan = planned.best.plan(ExperimentId(0));
    let percent = (plan.traffic_share * 100.0).clamp(1.0, 100.0);

    let mut sim = Simulation::new(topologies::case_study_app(), 6);
    sim.deploy(topologies::recommendation_candidate()).unwrap();
    let wl = workload(&sim);
    let strategy = dsl::parse(&format!(
        r#"strategy "from-schedule" {{
            service "recommendation" baseline "1.0.0" candidate "1.1.0"
            phase "canary" canary {percent:.0}% for 2m {{
              check error_rate < 0.2 over 1m every 30s min_samples 5
              on success complete
              on failure rollback
            }}
        }}"#
    ))
    .unwrap();
    let report =
        Engine::default().execute(&mut sim, &[strategy], &wl, SimDuration::from_mins(10)).unwrap();
    assert!(report.all_terminal());
}
